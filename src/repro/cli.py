"""Command-line interface.

Everything the library does, scriptable from a shell::

    python -m repro xmlgl rule.xgl data.xml            # run a query
    python -m repro xmlgl rule.xgl a.xml --source b=c.xml
    python -m repro run rule.xgl data.xml --trace      # run + span tree
    python -m repro run rule.xgl data.xml --timeout 50 --on-limit partial
    python -m repro explain rule.xgl                   # EXPLAIN ANALYZE
    python -m repro wglog rules.wgl data.xml --apply   # generative semantics
    python -m repro lint rule.xgl --format json        # static analysis
    python -m repro rewrite rule.xgl                   # static query rewriting
    python -m repro render rule.xgl -o figure.svg      # draw the query
    python -m repro validate data.xml --dtd schema.dtd
    python -m repro compare --entries 30               # TAB-1 + FIG-Q* report

Rule files hold the textual DSLs of :mod:`repro.xmlgl.dsl` /
:mod:`repro.wglog.dsl`; exit status is non-zero on errors and on failed
validation, so the commands compose in shell pipelines.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .errors import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for the tests and for --help docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Graphical query languages for semi-structured data "
        "(XML-GL and WG-Log).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    xmlgl = commands.add_parser("xmlgl", help="run an XML-GL rule or program")
    xmlgl.add_argument("rule", help="rule/program file (XML-GL DSL)")
    xmlgl.add_argument("document", nargs="?", help="input XML document")
    xmlgl.add_argument(
        "--source",
        action="append",
        default=[],
        metavar="NAME=FILE",
        help="named source document (repeatable)",
    )
    xmlgl.add_argument("--compact", action="store_true", help="no pretty printing")
    xmlgl.add_argument(
        "--stats", action="store_true",
        help="print evaluation counters (EvalStats) to stderr",
    )

    run = commands.add_parser(
        "run", help="run an XML-GL rule with observability (tracing/EXPLAIN)"
    )
    run.add_argument("rule", help="rule/program file (XML-GL DSL)")
    run.add_argument("document", nargs="?", help="input XML document")
    run.add_argument(
        "--source",
        action="append",
        default=[],
        metavar="NAME=FILE",
        help="named source document (repeatable)",
    )
    run.add_argument("--compact", action="store_true", help="no pretty printing")
    run.add_argument(
        "--trace", action="store_true",
        help="record spans and print the span tree to stderr after the result",
    )
    run.add_argument(
        "--explain", action="store_true",
        help="print the EXPLAIN report instead of the result document",
    )
    run.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="EXPLAIN output format (with --explain)",
    )
    run.add_argument(
        "--no-rewrite", action="store_true",
        help="evaluate the drawn query verbatim, skipping the static "
        "rewrite layer (canonicalization, minimization, pruning)",
    )
    run.add_argument(
        "--metrics", action="store_true",
        help="print the process metrics snapshot (JSON) to stderr afterwards",
    )
    run.add_argument(
        "--timeout", type=float, metavar="MS",
        help="query deadline in milliseconds (QueryBudget.deadline_ms)",
    )
    run.add_argument(
        "--max-work", type=int, metavar="UNITS",
        help="cap on matcher work units (QueryBudget.max_work)",
    )
    run.add_argument(
        "--on-limit", choices=("raise", "partial"), default="raise",
        help="on a tripped budget: fail (exit 4) or return a truncated "
        "result flagged in the stats (default: raise)",
    )
    run.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="shard the input document by top-level subtree across N "
        "worker processes and merge the per-shard results (collect-style "
        "constructs only; budgets apply per shard; incompatible with "
        "--trace/--explain)",
    )

    explain = commands.add_parser(
        "explain",
        help="EXPLAIN ANALYZE an XML-GL rule: join forest, engine decisions, "
        "semi-join pool sizes",
    )
    explain.add_argument("rule", help="rule file (XML-GL DSL)")
    explain.add_argument(
        "document", nargs="?",
        help="input XML document (default: built-in synthetic bibliography)",
    )
    explain.add_argument(
        "--source",
        action="append",
        default=[],
        metavar="NAME=FILE",
        help="named source document (repeatable)",
    )
    explain.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report output format",
    )
    explain.add_argument(
        "--engine",
        choices=("adaptive", "pipeline", "backtracking", "naive"),
        default=None,
        help="force an evaluation engine (default: adaptive cost-based)",
    )
    explain.add_argument(
        "--no-rewrite", action="store_true",
        help="explain the drawn query verbatim, skipping the static "
        "rewrite layer",
    )

    wglog = commands.add_parser("wglog", help="run WG-Log rules over bridged XML")
    wglog.add_argument("rules", help="rules file (WG-Log DSL, optional schema block)")
    wglog.add_argument("document", help="input XML document (bridged to a graph)")
    wglog.add_argument(
        "--apply", action="store_true",
        help="apply rules generatively (fixpoint) and print the instance",
    )
    wglog.add_argument(
        "--no-schema-check", action="store_true",
        help="skip checking rules against the file's schema block",
    )

    lint = commands.add_parser(
        "lint", help="statically analyse a rule file (no evaluation)"
    )
    lint.add_argument("rule", help="rule/program file (either DSL)")
    lint.add_argument(
        "--lang", choices=("xmlgl", "wglog"), default="xmlgl",
        help="which language the file is written in",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="diagnostic output format",
    )
    lint.add_argument(
        "--schema",
        help="schema to lint against: a DTD file for xmlgl "
        "(wglog uses the rule file's own schema block)",
    )

    rewrite = commands.add_parser(
        "rewrite",
        help="statically rewrite a rule file: canonicalization, "
        "containment-based minimization, condition simplification",
    )
    rewrite.add_argument("rule", help="rule/program file (either DSL)")
    rewrite.add_argument(
        "--lang", choices=("xmlgl", "wglog"), default="xmlgl",
        help="which language the file is written in",
    )
    rewrite.add_argument(
        "--schema",
        help="DTD file enabling schema-informed pruning (xmlgl only); "
        "the rewrites then assume documents conform to it",
    )
    rewrite.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report output format",
    )

    render = commands.add_parser("render", help="render a rule as SVG/ASCII")
    render.add_argument("rule", help="rule file (either DSL)")
    render.add_argument(
        "--lang", choices=("xmlgl", "wglog"), default="xmlgl",
        help="which language the file is written in",
    )
    render.add_argument("-o", "--output", help="SVG output path (default: stdout ASCII)")

    validate = commands.add_parser("validate", help="validate XML against a DTD")
    validate.add_argument("document", help="input XML document")
    validate.add_argument("--dtd", required=True, help="DTD file")
    validate.add_argument(
        "--as-xmlgl", action="store_true",
        help="translate the DTD to an XML-GL schema graph and validate with it",
    )

    compare = commands.add_parser(
        "compare", help="print TAB-1 and the paired-query agreement report"
    )
    compare.add_argument("--entries", type=int, default=30, help="dataset size")
    compare.add_argument("--seed", type=int, default=3, help="dataset seed")

    fmt = commands.add_parser(
        "fmt", help="reprint a rule file in canonical DSL form"
    )
    fmt.add_argument("rule", help="rule/program file")
    fmt.add_argument(
        "--lang", choices=("xmlgl", "wglog"), default="xmlgl",
        help="which language the file is written in",
    )

    infer = commands.add_parser(
        "infer", help="infer a schema from XML documents (DataGuide-style)"
    )
    infer.add_argument("documents", nargs="+", help="sample XML documents")
    infer.add_argument(
        "--dtd", action="store_true",
        help="emit DTD text instead of the XML-GL schema description",
    )
    infer.add_argument(
        "--wglog", action="store_true",
        help="bridge the first document to a graph and infer a WG-Log schema",
    )

    serve = commands.add_parser(
        "serve", help="run the async multi-tenant query service"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8601,
        help="bind port (0 picks an ephemeral port, printed at startup)",
    )
    serve.add_argument(
        "--document", action="append", default=[], metavar="NAME=FILE",
        help="load an XML document into the store at startup (repeatable)",
    )
    serve.add_argument(
        "--tenant", action="append", default=[], metavar="SPEC",
        help=(
            "tenant spec NAME[,key=value]... — keys: max_concurrency, "
            "max_queue, deadline_ms, max_work, max_bindings, "
            "max_result_nodes, max_hashjoin_rows, on_limit (repeatable)"
        ),
    )
    serve.add_argument(
        "--max-workers", type=int, default=8,
        help="evaluation executor threads",
    )

    watch = commands.add_parser(
        "watch",
        help="run a continuous query over a mutating document",
        description=(
            "Subscribe a rule to a document, replay a JSON edit script "
            "batch by batch, and print the binding deltas each commit "
            "produces.  The edit script is a JSON list of batches; each "
            "batch is a list of op objects in the mutation wire form "
            "(see repro.engine.mutate.ops_from_spec)."
        ),
    )
    watch.add_argument("rule", help="file containing one XML-GL rule")
    watch.add_argument("document", help="XML document to mutate and watch")
    watch.add_argument(
        "--edits", required=True, metavar="FILE",
        help="JSON edit script: a list of batches of op objects",
    )
    watch.add_argument(
        "--stats", action="store_true",
        help="print subscription eval/skip counters to stderr",
    )

    return parser


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _load_document(path: str):
    from .ssd import parse_document

    return parse_document(_read(path))


def _gather_sources(args: argparse.Namespace):
    """Sources from positional ``document`` + repeatable ``--source NAME=FILE``.

    Returns ``None`` when the arguments were malformed (an error has been
    printed) and the sentinel ``{}`` when no document at all was named —
    callers decide whether that is an error or means "use a default".
    """
    sources: dict = {}
    for spec in args.source:
        name, _, path = spec.partition("=")
        if not path:
            print(f"--source expects NAME=FILE, got {spec!r}", file=sys.stderr)
            return None
        sources[name] = _load_document(path)
    if args.document:
        if sources:
            sources.setdefault("input", _load_document(args.document))
        else:
            return _load_document(args.document)
    return sources


def _cmd_xmlgl(args: argparse.Namespace, out) -> int:
    from .engine.stats import EvalStats
    from .ssd import pretty, serialize
    from .xmlgl import evaluate_program
    from .xmlgl.dsl import parse_program

    program = parse_program(_read(args.rule))
    sources = _gather_sources(args)
    if sources is None:
        return 2
    if not sources:
        print("no input document given", file=sys.stderr)
        return 2
    stats = EvalStats()
    result = evaluate_program(program, sources, stats=stats)
    print(serialize(result) if args.compact else pretty(result), file=out)
    if args.stats:
        for counter, amount in stats.as_dict().items():
            shown = f"{amount:.6f}" if counter == "seconds" else str(amount)
            print(f"# {counter}: {shown}", file=sys.stderr)
    return 0


def _cmd_run(args: argparse.Namespace, out) -> int:
    import time

    from .engine.limits import QueryBudget
    from .engine.metrics import global_registry
    from .engine.stats import EvalStats
    from .engine.trace import Tracer
    from .errors import BudgetExceeded, QueryCancelled
    from .ssd import pretty, serialize
    from .xmlgl import evaluate_program
    from .xmlgl.dsl import parse_program

    program = parse_program(_read(args.rule))
    sources = _gather_sources(args)
    if sources is None:
        return 2
    budget = None
    if args.timeout is not None or args.max_work is not None:
        budget = QueryBudget(
            deadline_ms=args.timeout,
            max_work=args.max_work,
            on_limit=args.on_limit,
        )
    options = None
    if args.no_rewrite:
        from .engine.options import MatchOptions

        options = MatchOptions(rewrite=False)
    if args.explain:
        from .explain import explain

        if len(program.rules) > 1:
            print(
                "# note: explaining the first of "
                f"{len(program.rules)} rules",
                file=sys.stderr,
            )
        report = explain(
            program.rules[0], sources if sources else None, options=options
        )
        print(report.render(args.format), file=out)
        if args.metrics:
            print(global_registry.to_json(), file=sys.stderr)
        return 0
    if not sources:
        print("no input document given", file=sys.stderr)
        return 2
    if args.workers and args.workers > 1:
        return _run_sharded(args, program, sources, budget, options, out)
    stats = EvalStats()
    if args.trace:
        stats.trace = Tracer()
    started = time.perf_counter()
    try:
        result = evaluate_program(
            program, sources, options=options, budget=budget, stats=stats
        )
    except (BudgetExceeded, QueryCancelled) as error:
        elapsed = time.perf_counter() - started
        global_registry.record(stats, seconds=elapsed, query=args.rule, error=True)
        print(f"error: {error}", file=sys.stderr)
        if args.trace and stats.trace is not None:
            print(stats.trace.render_text(), file=sys.stderr)
        if args.metrics:
            print(global_registry.to_json(), file=sys.stderr)
        return 4
    elapsed = time.perf_counter() - started
    global_registry.record(stats, seconds=elapsed, query=args.rule)
    print(serialize(result) if args.compact else pretty(result), file=out)
    if stats.extra.get("truncated"):
        cause = next(
            (
                key[len("truncated_by_"):]
                for key in stats.extra
                if key.startswith("truncated_by_")
            ),
            "?",
        )
        print(
            f"# truncated: budget limit {cause} reached (partial result)",
            file=sys.stderr,
        )
    if args.trace:
        print(stats.trace.render_text(), file=sys.stderr)
    if args.metrics:
        print(global_registry.to_json(), file=sys.stderr)
    return 0


def _run_sharded(args: argparse.Namespace, program, sources, budget, options, out) -> int:
    """The ``repro run --workers N`` arm: document sharding + merge.

    Splits the (single, unnamed) input document by top-level subtree,
    evaluates the program's first rule per shard on a process pool, and
    merges the per-shard result documents in document order.  Sound for
    collect-style constructs whose matches stay inside one top-level
    subtree; global aggregations must run single-process.
    """
    from .engine.metrics import global_registry
    from .engine.shard import ShardedExecutor, merge_shard_results, shard_document
    from .errors import BudgetExceeded, QueryCancelled
    from .ssd import pretty, serialize
    from .ssd.model import Document
    from .xmlgl.unparse import unparse_rule

    if args.trace:
        print("error: --trace is incompatible with --workers", file=sys.stderr)
        return 2
    if not isinstance(sources, Document):
        print(
            "error: --workers requires a single positional input document",
            file=sys.stderr,
        )
        return 2
    if len(program.rules) > 1:
        print(
            f"# note: running the first of {len(program.rules)} rules",
            file=sys.stderr,
        )
    query = unparse_rule(program.rules[0])
    pieces = shard_document(sources, args.workers)
    executor = ShardedExecutor(max_workers=args.workers)
    # One single-document corpus entry per shard: outcomes come back in
    # shard (= document) order with merged stats and typed errors.
    run = executor.map_corpus(
        query,
        {f"shard{position}": piece for position, piece in enumerate(pieces)},
        shards=len(pieces),
        options=options,
        budget=budget,
    )
    failed = next((error for error in run.errors if error is not None), None)
    if failed is not None:
        global_registry.record(run.stats, query=args.rule, error=True)
        print(f"error: {failed}", file=sys.stderr)
        return 4 if isinstance(failed, (BudgetExceeded, QueryCancelled)) else 2
    global_registry.record(run.stats, query=args.rule)
    result = merge_shard_results([doc for doc in run.results if doc is not None])
    print(serialize(result) if args.compact else pretty(result), file=out)
    print(
        f"# sharded: {len(pieces)} shard(s) across up to {args.workers} "
        "worker process(es)",
        file=sys.stderr,
    )
    if args.metrics:
        print(global_registry.to_json(), file=sys.stderr)
    return 0


def _cmd_explain(args: argparse.Namespace, out) -> int:
    from .explain import explain
    from .xmlgl.dsl import parse_program

    program = parse_program(_read(args.rule))
    sources = _gather_sources(args)
    if sources is None:
        return 2
    if len(program.rules) > 1:
        print(
            f"# note: explaining the first of {len(program.rules)} rules",
            file=sys.stderr,
        )
    options = None
    if args.engine is not None or args.no_rewrite:
        from .engine.options import MatchOptions

        options = MatchOptions(
            engine=args.engine if args.engine is not None else "adaptive",
            rewrite=not args.no_rewrite,
        )
    report = explain(
        program.rules[0], sources if sources else None, options=options
    )
    print(report.render(args.format), file=out)
    return 0


def _cmd_wglog(args: argparse.Namespace, out) -> int:
    from .wglog import apply_program, document_to_instance, query
    from .wglog.dsl import parse_wglog

    schema, rules = parse_wglog(_read(args.rules))
    if args.no_schema_check:
        schema = None
    instance, _ = document_to_instance(_load_document(args.document))
    if args.apply:
        added = apply_program(instance, rules, schema=schema)
        print(f"# additions: {added}", file=out)
        print(instance.describe(), file=out)
        return 0
    for rule in rules:
        bindings = query(rule, instance, schema=schema)
        print(f"# rule {rule.name or '?'}: {len(bindings)} matches", file=out)
        for binding in bindings:
            row = ", ".join(f"{k}={binding[k]}" for k in sorted(binding))
            print(f"  {row}", file=out)
    return 0


def _cmd_lint(args: argparse.Namespace, out) -> int:
    from .analysis import (
        AnalysisContext,
        analyze_program,
        analyze_rule,
        has_errors,
        render_json,
        render_text,
    )

    source = _read(args.rule)
    if args.lang == "xmlgl":
        from .xmlgl.dsl import parse_program

        xml_schema = None
        if args.schema:
            from .ssd import parse_dtd
            from .xmlgl.schema import dtd_to_schema

            dtd = parse_dtd(_read(args.schema))
            if not dtd.elements:
                print("error: the DTD declares no elements", file=sys.stderr)
                return 2
            root = next(iter(dtd.elements))
            xml_schema, _ = dtd_to_schema(dtd, root)
        context = AnalysisContext(xml_schema=xml_schema)
        findings = []
        for rule in parse_program(source).rules:
            findings.extend(analyze_rule(rule, context))
    else:
        from .wglog.dsl import parse_wglog

        wg_schema, rules = parse_wglog(source)
        context = AnalysisContext(wg_schema=wg_schema)
        findings = analyze_program(rules, context)
    print(
        render_json(findings) if args.format == "json" else render_text(findings),
        file=out,
    )
    return 1 if has_errors(findings) else 0


def _cmd_rewrite(args: argparse.Namespace, out) -> int:
    import json

    from .analysis import render_text
    from .analysis.rewrite import rewrite_rule, rewrite_rulegraph

    source = _read(args.rule)
    reports = []  # (name, rewritten_text, RewriteReport)
    if args.lang == "xmlgl":
        from .xmlgl.dsl import parse_program
        from .xmlgl.unparse import unparse_rule

        xml_schema = None
        if args.schema:
            from .ssd import parse_dtd
            from .xmlgl.schema import dtd_to_schema

            dtd = parse_dtd(_read(args.schema))
            if not dtd.elements:
                print("error: the DTD declares no elements", file=sys.stderr)
                return 2
            root = next(iter(dtd.elements))
            xml_schema, _ = dtd_to_schema(dtd, root)
        for position, rule in enumerate(parse_program(source).rules):
            rewritten, report = rewrite_rule(rule, schema=xml_schema)
            name = rule.name or f"rule {position}"
            reports.append((name, unparse_rule(rewritten), report))
    else:
        if args.schema:
            print(
                "error: --schema applies to xmlgl only (wglog uses the "
                "rule file's own schema block)",
                file=sys.stderr,
            )
            return 2
        from .wglog.dsl import parse_wglog
        from .wglog.unparse import unparse_rule as unparse_wg_rule

        _, rules = parse_wglog(source)
        for position, rule in enumerate(rules):
            rewritten, report = rewrite_rulegraph(rule)
            name = rule.name or f"rule {position}"
            reports.append((name, unparse_wg_rule(rewritten), report))
    if args.format == "json":
        print(
            json.dumps(
                [
                    {"rule": name, "rewritten": text, **report.as_dict()}
                    for name, text, report in reports
                ],
                indent=2,
                sort_keys=True,
            ),
            file=out,
        )
    else:
        for name, text, report in reports:
            print(f"# {name}: rewrites: {report.describe()}", file=out)
            if report.diagnostics:
                print(render_text(report.diagnostics), file=out)
            print(text, file=out)
    # a statically-false query is a warning-level outcome, not a failure
    return 0


def _cmd_render(args: argparse.Namespace, out) -> int:
    from .visual import (
        render_ascii,
        render_svg,
        wglog_rule_diagram,
        xmlgl_rule_diagram,
    )

    if args.lang == "xmlgl":
        from .xmlgl.dsl import parse_rule

        diagram = xmlgl_rule_diagram(parse_rule(_read(args.rule)))
    else:
        from .wglog.dsl import parse_wglog

        _, rules = parse_wglog(_read(args.rule))
        diagram = wglog_rule_diagram(rules[0])
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(render_svg(diagram))
        print(f"wrote {args.output}", file=out)
    else:
        print(render_ascii(diagram), file=out)
    return 0


def _cmd_validate(args: argparse.Namespace, out) -> int:
    from .ssd import parse_dtd, validate

    document = _load_document(args.document)
    dtd = parse_dtd(_read(args.dtd))
    if args.as_xmlgl:
        from .xmlgl.schema import dtd_to_schema

        root = document.root.tag if document.root is not None else ""
        schema, notes = dtd_to_schema(dtd, root)
        for note in notes:
            print(f"# note: {note}", file=out)
        violations = schema.validate(document)
    else:
        violations = validate(document, dtd)
    for violation in violations:
        print(violation, file=out)
    print(f"# {len(violations)} violation(s)", file=out)
    return 1 if violations else 0


def _cmd_compare(args: argparse.Namespace, out) -> int:
    from .compare import compare_catalog, render_matrix, report
    from .workloads import bibliography

    print(render_matrix(), file=out)
    print(file=out)
    results = compare_catalog(bibliography(args.entries, seed=args.seed))
    print(report(results), file=out)
    disagreements = [r for r in results if r.comparable and not r.agree]
    return 1 if disagreements else 0


def _cmd_fmt(args: argparse.Namespace, out) -> int:
    if args.lang == "xmlgl":
        from .xmlgl.dsl import parse_program
        from .xmlgl.unparse import unparse_program

        print(unparse_program(parse_program(_read(args.rule))), file=out)
    else:
        from .wglog.dsl import parse_wglog
        from .wglog.unparse import unparse_wglog

        schema, rules = parse_wglog(_read(args.rule))
        print(unparse_wglog(schema, rules), file=out)
    return 0


def _cmd_infer(args: argparse.Namespace, out) -> int:
    if args.wglog:
        from .wglog import document_to_instance
        from .wglog.schema import infer_wg_schema

        instance, _ = document_to_instance(_load_document(args.documents[0]))
        print(infer_wg_schema(instance).describe(), file=out)
        return 0
    from .ssd import infer_schema

    schema = infer_schema([_load_document(path) for path in args.documents])
    if args.dtd:
        from .xmlgl.schema import schema_to_dtd

        text, notes = schema_to_dtd(schema)
        for note in notes:
            print(f"# note: {note}", file=out)
        print(text, file=out)
    else:
        print(schema.describe(), file=out)
    return 0


def _cmd_serve(args: argparse.Namespace, out) -> int:
    from .server import DocumentStore, ServerConfig, TenantConfig, run_forever

    store = DocumentStore()
    for spec in args.document:
        name, _, path = spec.partition("=")
        if not path:
            print(f"--document expects NAME=FILE, got {spec!r}", file=sys.stderr)
            return 2
        store.add(name, _load_document(path))
    try:
        tenants = tuple(TenantConfig.from_spec(spec) for spec in args.tenant)
        config = ServerConfig(
            host=args.host,
            port=args.port,
            max_workers=args.max_workers,
            tenants=tenants,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    def announce(service) -> None:
        # The "listening on" line is the startup contract: the smoke job
        # and subprocess tests parse the (possibly ephemeral) port off it.
        print(
            f"repro serve listening on {config.host}:{service.port} "
            f"({len(store)} documents, "
            f"{len(service.gates)} tenants)",
            file=out,
            flush=True,
        )

    run_forever(config, store=store, on_ready=announce)
    return 0


def _cmd_watch(args: argparse.Namespace, out) -> int:
    import json

    from .engine.cache import DocumentIndexCache
    from .engine.mutate import ops_from_spec
    from .session import QuerySession
    from .ssd import serialize
    from .ssd.model import Element

    def show(binding) -> str:
        parts = []
        for variable in sorted(binding):
            value = binding[variable]
            rendered = serialize(value) if isinstance(value, Element) else str(value)
            parts.append(f"{variable}={rendered}")
        return " ".join(parts)

    document = _load_document(args.document)
    with open(args.edits, encoding="utf-8") as handle:
        script = json.load(handle)
    if not isinstance(script, list):
        print("--edits file must hold a JSON list of batches", file=sys.stderr)
        return 2
    # A private index cache: the watched document mutates, and nothing
    # else in the process should share its maintained index.
    session = QuerySession(document, indexes=DocumentIndexCache())
    subscription = session.subscribe(_read(args.rule))
    print(f"# initial rows: {len(subscription.rows())}", file=out)
    for position, batch_spec in enumerate(script):
        batch = ops_from_spec(document, batch_spec)
        result = session.mutate(batch)
        deltas = subscription.poll()
        for delta in deltas:
            print(f"# {delta.describe()}", file=out)
            for binding in delta.added:
                print(f"+ {show(binding)}", file=out)
            for binding in delta.removed:
                print(f"- {show(binding)}", file=out)
        if not deltas and args.stats:
            print(
                f"# batch {position}: rev {result.doc_revision} (no delta)",
                file=sys.stderr,
            )
    print(f"# final rows: {len(subscription.rows())}", file=out)
    if args.stats:
        print(f"# {subscription.describe()}", file=sys.stderr)
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """Entry point; returns the exit status."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "xmlgl": _cmd_xmlgl,
        "run": _cmd_run,
        "explain": _cmd_explain,
        "wglog": _cmd_wglog,
        "lint": _cmd_lint,
        "rewrite": _cmd_rewrite,
        "render": _cmd_render,
        "validate": _cmd_validate,
        "compare": _cmd_compare,
        "infer": _cmd_infer,
        "fmt": _cmd_fmt,
        "serve": _cmd_serve,
        "watch": _cmd_watch,
    }
    try:
        return handlers[args.command](args, out)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout closed early (e.g. piped into `head`): not an error
        return 0
