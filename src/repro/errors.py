"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch one base class.  Parsing errors carry source positions; semantic
errors carry the offending construct where that helps diagnosis.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all library errors."""


class XmlSyntaxError(ReproError):
    """Raised by the XML lexer/parser on malformed input.

    Attributes:
        line: 1-based line of the offending token.
        column: 1-based column of the offending token.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class DtdError(ReproError):
    """Raised on malformed DTD declarations or ambiguous content models."""


class ValidationError(ReproError):
    """Raised (or collected) when an instance violates a schema or DTD."""


class QuerySyntaxError(ReproError):
    """Raised by the XML-GL / WG-Log textual DSL parsers."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class QueryStructureError(ReproError):
    """Raised when a query graph is structurally ill-formed.

    Examples: a construction triangle with no source, a crossed edge in a
    construct part, a WG-Log green node with no red anchor, cyclic containment.
    """


class SchemaError(ReproError):
    """Raised when a schema graph itself is ill-formed."""


class EvaluationError(ReproError):
    """Raised when query evaluation cannot proceed (bad condition types, etc.)."""


class UnboundConstructVariable(EvaluationError):
    """Raised when a construct part reads a variable that is bound nowhere.

    Attributes:
        variable: the unresolved query-variable name.
        where: path of the construct node doing the read (e.g.
            ``result/entry[0]``), or ``None`` when unavailable.

    The static analyser reports the same situation ahead of time as
    XGL020/XGL024.
    """

    def __init__(self, variable: str, where: "str | None" = None) -> None:
        self.variable = variable
        self.where = where
        location = f" (at construct node {where})" if where else ""
        super().__init__(
            f"variable {variable!r} is unbound in this context{location}"
        )


class BudgetExceeded(EvaluationError):
    """Raised when a query exceeds a :class:`~repro.engine.limits.QueryBudget`.

    Attributes:
        limit: name of the budget field that tripped (``max_work``,
            ``max_bindings``, ``max_hashjoin_rows``, ``max_result_nodes``,
            or ``deadline_ms`` via :class:`DeadlineExceeded`).
        allowed: the configured limit value.
        spent: the amount actually consumed when the check fired.
        stats: the partial :class:`~repro.engine.stats.EvalStats` of the
            evaluation up to the point of interruption, or ``None`` when the
            budget was armed without stats.

    Under ``QueryBudget(on_limit="partial")`` the engines catch this
    internally and return a truncated-but-well-formed result instead
    (flagged ``stats.extra["truncated"]``); under the default
    ``on_limit="raise"`` it propagates to the caller.
    """

    def __init__(
        self,
        limit: str,
        allowed: "float | int",
        spent: "float | int",
        stats: "object | None" = None,
    ) -> None:
        self.limit = limit
        self.allowed = allowed
        self.spent = spent
        self.stats = stats
        super().__init__(
            f"query budget exceeded: {limit} (allowed {allowed}, spent {spent})"
        )


class DeadlineExceeded(BudgetExceeded):
    """Raised when a query runs past its wall-clock deadline.

    A :class:`BudgetExceeded` subclass, so ``except BudgetExceeded`` catches
    both; ``limit`` is always ``"deadline_ms"`` and ``allowed``/``spent``
    are milliseconds.
    """


class QueryCancelled(EvaluationError):
    """Raised when a :class:`~repro.engine.limits.CancelToken` is triggered.

    Cooperative: the evaluation notices the token at its next budget check
    site.  Carries the partial ``stats`` like :class:`BudgetExceeded`, but
    is *not* a budget error — ``on_limit="partial"`` never converts a
    cancellation into a truncated result.
    """

    def __init__(self, stats: "object | None" = None) -> None:
        self.stats = stats
        super().__init__("query cancelled")


class MutationError(ReproError):
    """Raised when a :class:`~repro.engine.mutate.MutationBatch` is invalid.

    Batches are validated in full before any op applies, so this error
    means the document was left untouched.
    """


class DiagramError(ReproError):
    """Raised by the visual layer: unknown shapes, dangling connectors, etc."""


class BridgeError(ReproError):
    """Raised when XML <-> G-Log bridging meets unsupported constructs."""
