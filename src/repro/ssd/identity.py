"""ID/IDREF overlay: the graph view of a document.

XML documents are trees, but ID/IDREF(S) attributes (and by extension XLink
style references) induce a *graph* — this is what makes the data model
"semi-structured" in the sense of the paper, and what XML-GL join edges and
WG-Log instance graphs traverse.

:class:`IdentityIndex` resolves the overlay once per document: it maps ID
values to elements and enumerates reference edges.  By default any attribute
named ``id`` defines an identifier and any attribute named ``idref`` /
``idrefs`` / ``ref`` refers to one; explicit attribute-name sets can be given
(e.g. taken from a DTD's ATTLIST declarations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from ..errors import ValidationError
from .model import Document, Element

__all__ = ["ReferenceEdge", "IdentityIndex"]

_DEFAULT_ID_ATTRS = frozenset({"id"})
_DEFAULT_IDREF_ATTRS = frozenset({"idref", "ref"})
_DEFAULT_IDREFS_ATTRS = frozenset({"idrefs", "refs"})


@dataclass(frozen=True)
class ReferenceEdge:
    """One resolved IDREF edge ``source --attribute--> target``."""

    source: Element
    attribute: str
    target: Element


class IdentityIndex:
    """Resolved ID/IDREF structure of one document.

    Args:
        document: the document to index.
        id_attributes: attribute names treated as ID declarations.
        idref_attributes: attribute names holding a single reference.
        idrefs_attributes: attribute names holding whitespace-separated
            reference lists.
        strict: when true, duplicate IDs and dangling references raise
            :class:`~repro.errors.ValidationError`; otherwise they are
            recorded in :attr:`duplicate_ids` / :attr:`dangling_refs`.
    """

    def __init__(
        self,
        document: Document,
        id_attributes: Iterable[str] = _DEFAULT_ID_ATTRS,
        idref_attributes: Iterable[str] = _DEFAULT_IDREF_ATTRS,
        idrefs_attributes: Iterable[str] = _DEFAULT_IDREFS_ATTRS,
        strict: bool = False,
    ) -> None:
        self._by_id: dict[str, Element] = {}
        self._edges: list[ReferenceEdge] = []
        self.duplicate_ids: list[str] = []
        self.dangling_refs: list[tuple[Element, str, str]] = []
        id_attrs = frozenset(id_attributes)
        ref_attrs = frozenset(idref_attributes)
        refs_attrs = frozenset(idrefs_attributes)

        for element in document.iter():
            for name, value in element.attributes.items():
                if name in id_attrs:
                    if value in self._by_id:
                        if strict:
                            raise ValidationError(f"duplicate ID {value!r}")
                        self.duplicate_ids.append(value)
                    else:
                        self._by_id[value] = element

        for element in document.iter():
            for name, value in element.attributes.items():
                if name in ref_attrs:
                    self._resolve(element, name, value, strict)
                elif name in refs_attrs:
                    for token in value.split():
                        self._resolve(element, name, token, strict)

    def _resolve(self, element: Element, attr: str, value: str, strict: bool) -> None:
        target = self._by_id.get(value)
        if target is None:
            if strict:
                raise ValidationError(f"dangling IDREF {value!r} on <{element.tag}>")
            self.dangling_refs.append((element, attr, value))
            return
        self._edges.append(ReferenceEdge(element, attr, target))

    # -- queries ------------------------------------------------------------

    def element_by_id(self, identifier: str) -> Optional[Element]:
        """The element declaring ``identifier``, or ``None``."""
        return self._by_id.get(identifier)

    def ids(self) -> Iterator[str]:
        """All declared identifiers."""
        return iter(self._by_id)

    def edges(self) -> list[ReferenceEdge]:
        """All resolved reference edges, document order of their sources."""
        return list(self._edges)

    def references_from(self, element: Element) -> list[ReferenceEdge]:
        """Outgoing reference edges of ``element``."""
        return [e for e in self._edges if e.source is element]

    def references_to(self, element: Element) -> list[ReferenceEdge]:
        """Incoming reference edges of ``element``."""
        return [e for e in self._edges if e.target is element]
