"""Serialization of documents back to XML text.

Two modes are provided:

* :func:`serialize` — compact, loss-free round trip of the node model;
* :func:`pretty` — indented output for humans (whitespace-only text nodes
  are re-flowed, so ``parse(pretty(doc))`` is equal modulo whitespace).
"""

from __future__ import annotations

from .model import (
    Comment,
    Document,
    Element,
    Node,
    ProcessingInstruction,
    Text,
)

__all__ = ["serialize", "pretty", "escape_text", "escape_attribute"]


def escape_text(data: str) -> str:
    """Escape character data for element content."""
    return data.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(data: str) -> str:
    """Escape character data for a double-quoted attribute value.

    Whitespace characters become character references so they survive the
    parser's XML 1.0 attribute-value normalisation on the way back in.
    """
    return (
        data.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace('"', "&quot;")
        .replace("\t", "&#9;")
        .replace("\n", "&#10;")
        .replace("\r", "&#13;")
    )


def serialize(node: Node) -> str:
    """Serialize any node (or document) compactly."""
    parts: list[str] = []
    _write(node, parts)
    return "".join(parts)


def _write(node: Node, parts: list[str]) -> None:
    if isinstance(node, Document):
        if node.doctype_name:
            if node.doctype_internal:
                parts.append(
                    f"<!DOCTYPE {node.doctype_name} [{node.doctype_internal}]>"
                )
            else:
                parts.append(f"<!DOCTYPE {node.doctype_name}>")
        for child in node.children:
            _write(child, parts)
    elif isinstance(node, Element):
        parts.append(f"<{node.tag}")
        for name, value in node.attributes.items():
            parts.append(f' {name}="{escape_attribute(value)}"')
        if node.children:
            parts.append(">")
            for child in node.children:
                _write(child, parts)
            parts.append(f"</{node.tag}>")
        else:
            parts.append("/>")
    elif isinstance(node, Text):
        if node.is_cdata:
            parts.append(f"<![CDATA[{node.data}]]>")
        else:
            parts.append(escape_text(node.data))
    elif isinstance(node, Comment):
        parts.append(f"<!--{node.data}-->")
    elif isinstance(node, ProcessingInstruction):
        data = f" {node.data}" if node.data else ""
        parts.append(f"<?{node.target}{data}?>")
    else:  # pragma: no cover - defensive
        raise TypeError(f"cannot serialize {type(node).__name__}")


def pretty(node: Node, indent: str = "  ") -> str:
    """Serialize with indentation for human inspection."""
    parts: list[str] = []
    _write_pretty(node, parts, indent, 0)
    return "\n".join(parts)


def _is_inline(element: Element) -> bool:
    """Elements whose children are only text render on a single line."""
    return all(isinstance(c, Text) for c in element.children)


def _write_pretty(node: Node, lines: list[str], indent: str, depth: int) -> None:
    pad = indent * depth
    if isinstance(node, Document):
        if node.doctype_name:
            lines.append(f"<!DOCTYPE {node.doctype_name}>")
        for child in node.children:
            _write_pretty(child, lines, indent, depth)
    elif isinstance(node, Element):
        attrs = "".join(
            f' {n}="{escape_attribute(v)}"' for n, v in node.attributes.items()
        )
        if not node.children:
            lines.append(f"{pad}<{node.tag}{attrs}/>")
        elif _is_inline(node):
            text = escape_text(node.immediate_text())
            lines.append(f"{pad}<{node.tag}{attrs}>{text}</{node.tag}>")
        else:
            lines.append(f"{pad}<{node.tag}{attrs}>")
            for child in node.children:
                if isinstance(child, Text) and not child.data.strip():
                    continue
                _write_pretty(child, lines, indent, depth + 1)
            lines.append(f"{pad}</{node.tag}>")
    elif isinstance(node, Text):
        stripped = node.data.strip()
        if stripped:
            lines.append(f"{pad}{escape_text(stripped)}")
    elif isinstance(node, Comment):
        lines.append(f"{pad}<!--{node.data}-->")
    elif isinstance(node, ProcessingInstruction):
        data = f" {node.data}" if node.data else ""
        lines.append(f"{pad}<?{node.target}{data}?>")
