"""Schema inference from instances (DataGuide-style).

Semi-structured data is "schema-last": structure is discovered from the
data rather than declared up front.  This module infers, from one or more
sample documents, an XML-GL schema graph that *accepts exactly the
structural patterns seen* (generalised to unbounded upper multiplicities
where repetition occurs) — the summarisation step the semi-structured
literature calls a DataGuide, here landing directly in the paper's own
schema formalism.

Inference rules, per element tag across all its occurrences:

* a child tag seen under every occurrence gets ``min=1``; otherwise
  ``min=0``;
* a child tag seen more than once under some occurrence gets ``max=None``
  (unbounded), otherwise ``max=1``;
* attributes present on every occurrence are required; values drawn from
  a small set (≤ ``enum_limit`` distinct values, every value repeated)
  become enumerations;
* non-whitespace text anywhere under a tag allows PCDATA there.

The result always validates the documents it was inferred from
(property-tested), so ``infer → validate`` is a safe pipeline for data
exploration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..errors import SchemaError
from .model import Document, Element, Text

__all__ = ["infer_schema"]


@dataclass
class _TagStats:
    occurrences: int = 0
    child_counts: dict[str, list[int]] = field(default_factory=dict)
    attribute_counts: dict[str, int] = field(default_factory=dict)
    attribute_values: dict[str, set[str]] = field(default_factory=dict)
    has_text: bool = False


def infer_schema(documents: Iterable[Document] | Document, enum_limit: int = 4):
    """Infer an XML-GL :class:`~repro.xmlgl.schema.SchemaGraph`.

    Accepts one document or an iterable; all must share a root tag.
    """
    from ..xmlgl.schema import SchemaGraph

    if isinstance(documents, Document):
        documents = [documents]
    documents = list(documents)
    if not documents:
        raise SchemaError("cannot infer a schema from no documents")
    roots = {d.root.tag for d in documents if d.root is not None}
    if len(roots) != 1:
        raise SchemaError(f"documents disagree on the root tag: {sorted(roots)}")

    stats: dict[str, _TagStats] = {}
    for document in documents:
        for element in document.iter():
            _collect(element, stats)

    root_tag = next(iter(roots))
    schema = SchemaGraph(root=root_tag)
    for tag in stats:
        schema.add_element(tag)
    for tag, tag_stats in stats.items():
        for child_tag, counts in tag_stats.child_counts.items():
            present_everywhere = len(counts) == tag_stats.occurrences
            low = 1 if present_everywhere and min(counts) >= 1 else 0
            high = None if max(counts) > 1 else 1
            schema.contain(tag, child_tag, min=low, max=high)
        for name, count in tag_stats.attribute_counts.items():
            values = tag_stats.attribute_values[name]
            enum = ()
            if len(values) <= enum_limit and count > len(values):
                enum = tuple(sorted(values))
            schema.add_attribute(
                tag, name,
                required=count == tag_stats.occurrences,
                values=enum,
            )
        if tag_stats.has_text:
            schema.add_text(tag)
    schema.check()
    return schema


def _collect(element: Element, stats: dict[str, _TagStats]) -> None:
    tag_stats = stats.setdefault(element.tag, _TagStats())
    tag_stats.occurrences += 1
    counts: dict[str, int] = {}
    for child in element.children:
        if isinstance(child, Element):
            counts[child.tag] = counts.get(child.tag, 0) + 1
        elif isinstance(child, Text) and child.data.strip():
            tag_stats.has_text = True
    for child_tag, count in counts.items():
        tag_stats.child_counts.setdefault(child_tag, []).append(count)
    for name, value in element.attributes.items():
        tag_stats.attribute_counts[name] = tag_stats.attribute_counts.get(name, 0) + 1
        tag_stats.attribute_values.setdefault(name, set()).add(value)
