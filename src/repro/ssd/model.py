"""Node model for semi-structured (XML) data.

This is the substrate both graphical languages query.  Documents are ordered
trees of :class:`Element`, :class:`Text`, :class:`Comment` and
:class:`ProcessingInstruction` nodes rooted in a :class:`Document`.  The
ID/IDREF overlay that turns a tree into a graph (the "semi-structured" part)
lives in :mod:`repro.ssd.identity`.

Design notes
------------
* Children are kept in a plain list; document order is the list order of a
  depth-first, left-to-right traversal.
* Attributes are name -> string mappings preserving declaration order (Python
  dicts are ordered).
* Nodes know their parent so navigation axes (:mod:`repro.ssd.navigation`)
  can walk upward and sideways.
* Equality (:meth:`Node.equals`) is *structural*: two elements are equal when
  their tags, attributes and child sequences are recursively equal.  Identity
  comparison (``is``) remains available for binding semantics.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

__all__ = [
    "Node",
    "Element",
    "Text",
    "Comment",
    "ProcessingInstruction",
    "Document",
    "strip_whitespace",
]


class Node:
    """Abstract base of all document nodes."""

    # ``__weakref__`` lets caches (repro.engine.cache) key entries by a
    # weak reference to the document without pinning detached trees.
    __slots__ = ("parent", "__weakref__")

    def __init__(self) -> None:
        self.parent: Optional[Element | Document] = None

    # -- tree structure -----------------------------------------------------

    @property
    def document(self) -> Optional[Document]:
        """The owning :class:`Document`, or ``None`` for detached nodes."""
        node: Optional[Node] = self
        while node is not None:
            if isinstance(node, Document):
                return node
            node = node.parent
        return None

    def ancestors(self) -> Iterator[Element]:
        """Yield proper ancestors, nearest first (excludes the document)."""
        node = self.parent
        while isinstance(node, Element):
            yield node
            node = node.parent

    def root_element(self) -> Optional[Element]:
        """The topmost element above (or equal to) this node."""
        last: Optional[Element] = self if isinstance(self, Element) else None
        for anc in self.ancestors():
            last = anc
        return last

    # -- content ------------------------------------------------------------

    def text_content(self) -> str:
        """Concatenated text of this node and all descendants."""
        return ""

    def equals(self, other: object) -> bool:
        """Structural equality; subclasses override."""
        raise NotImplementedError

    def copy(self) -> "Node":
        """Deep, detached copy of this node."""
        raise NotImplementedError


class Text(Node):
    """A text node.  ``is_cdata`` records CDATA-section origin."""

    __slots__ = ("data", "is_cdata")

    def __init__(self, data: str, is_cdata: bool = False) -> None:
        super().__init__()
        self.data = data
        self.is_cdata = is_cdata

    def text_content(self) -> str:
        return self.data

    def equals(self, other: object) -> bool:
        return isinstance(other, Text) and other.data == self.data

    def copy(self) -> "Text":
        return Text(self.data, self.is_cdata)

    def __repr__(self) -> str:
        preview = self.data if len(self.data) <= 24 else self.data[:21] + "..."
        return f"Text({preview!r})"


class Comment(Node):
    """An XML comment (``<!-- ... -->``)."""

    __slots__ = ("data",)

    def __init__(self, data: str) -> None:
        super().__init__()
        self.data = data

    def equals(self, other: object) -> bool:
        return isinstance(other, Comment) and other.data == self.data

    def copy(self) -> "Comment":
        return Comment(self.data)

    def __repr__(self) -> str:
        return f"Comment({self.data!r})"


class ProcessingInstruction(Node):
    """A processing instruction (``<?target data?>``)."""

    __slots__ = ("target", "data")

    def __init__(self, target: str, data: str = "") -> None:
        super().__init__()
        self.target = target
        self.data = data

    def equals(self, other: object) -> bool:
        return (
            isinstance(other, ProcessingInstruction)
            and other.target == self.target
            and other.data == self.data
        )

    def copy(self) -> "ProcessingInstruction":
        return ProcessingInstruction(self.target, self.data)

    def __repr__(self) -> str:
        return f"PI({self.target!r}, {self.data!r})"


class Element(Node):
    """An XML element: tag name, attributes, and an ordered child list."""

    __slots__ = ("tag", "attributes", "children")

    def __init__(
        self,
        tag: str,
        attributes: Optional[dict[str, str]] = None,
        children: Optional[Iterable[Node | str]] = None,
    ) -> None:
        super().__init__()
        if not tag:
            raise ValueError("element tag must be a non-empty string")
        self.tag = tag
        self.attributes: dict[str, str] = dict(attributes or {})
        self.children: list[Node] = []
        for child in children or ():
            self.append(child)

    # -- mutation -----------------------------------------------------------

    def append(self, child: Node | str) -> Node:
        """Append ``child`` (a node, or a string shorthand for text)."""
        node = Text(child) if isinstance(child, str) else child
        if node.parent is not None:
            raise ValueError("node already has a parent; copy() it first")
        node.parent = self
        self.children.append(node)
        return node

    def insert(self, index: int, child: Node | str) -> Node:
        """Insert ``child`` at ``index`` in the child list."""
        node = Text(child) if isinstance(child, str) else child
        if node.parent is not None:
            raise ValueError("node already has a parent; copy() it first")
        node.parent = self
        self.children.insert(index, node)
        return node

    def remove(self, child: Node) -> None:
        """Detach ``child`` from this element."""
        self.children.remove(child)
        child.parent = None

    def set(self, name: str, value: str) -> None:
        """Set attribute ``name`` to ``value``."""
        self.attributes[name] = value

    # -- access -------------------------------------------------------------

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """Attribute value for ``name``, or ``default``."""
        return self.attributes.get(name, default)

    def child_elements(self) -> list["Element"]:
        """Direct element children, in document order."""
        return [c for c in self.children if isinstance(c, Element)]

    def find(self, tag: str) -> Optional["Element"]:
        """First direct child element with the given tag, or ``None``."""
        for child in self.children:
            if isinstance(child, Element) and child.tag == tag:
                return child
        return None

    def find_all(self, tag: str) -> list["Element"]:
        """All direct child elements with the given tag."""
        return [c for c in self.children if isinstance(c, Element) and c.tag == tag]

    def iter(self, tag: Optional[str] = None) -> Iterator["Element"]:
        """Yield this element and all descendant elements (document order).

        When ``tag`` is given, only matching elements are yielded.
        """
        if tag is None or self.tag == tag:
            yield self
        for child in self.children:
            if isinstance(child, Element):
                yield from child.iter(tag)

    def descendants(self) -> Iterator[Node]:
        """All descendant nodes of any type, document order, self excluded."""
        for child in self.children:
            yield child
            if isinstance(child, Element):
                yield from child.descendants()

    def text_content(self) -> str:
        return "".join(c.text_content() for c in self.children)

    def immediate_text(self) -> str:
        """Concatenated text of direct :class:`Text` children only."""
        return "".join(c.data for c in self.children if isinstance(c, Text))

    # -- structure ----------------------------------------------------------

    def equals(self, other: object) -> bool:
        if not isinstance(other, Element):
            return False
        if other.tag != self.tag or other.attributes != self.attributes:
            return False
        mine = [c for c in self.children if not isinstance(c, (Comment, ProcessingInstruction))]
        theirs = [c for c in other.children if not isinstance(c, (Comment, ProcessingInstruction))]
        if len(mine) != len(theirs):
            return False
        return all(a.equals(b) for a, b in zip(mine, theirs))

    def copy(self) -> "Element":
        clone = Element(self.tag, dict(self.attributes))
        for child in self.children:
            clone.append(child.copy())
        return clone

    def size(self) -> int:
        """Number of nodes in this subtree (self included)."""
        return 1 + sum(
            c.size() if isinstance(c, Element) else 1 for c in self.children
        )

    def __repr__(self) -> str:
        return f"Element({self.tag!r}, attrs={len(self.attributes)}, children={len(self.children)})"


class Document(Node):
    """A document: prolog nodes, exactly one root element, epilog nodes."""

    __slots__ = ("children", "doctype_name", "doctype_internal")

    def __init__(self, root: Optional[Element] = None) -> None:
        super().__init__()
        self.children: list[Node] = []
        #: Name from ``<!DOCTYPE name ...>``, if the document had one.
        self.doctype_name: Optional[str] = None
        #: Raw internal DTD subset text (between ``[`` and ``]``), if any.
        self.doctype_internal: Optional[str] = None
        if root is not None:
            self.append(root)

    @property
    def root(self) -> Optional[Element]:
        """The document's root element (``None`` while under construction)."""
        for child in self.children:
            if isinstance(child, Element):
                return child
        return None

    def append(self, child: Node) -> Node:
        """Append a prolog/epilog node or the root element."""
        if isinstance(child, Element) and self.root is not None:
            raise ValueError("document already has a root element")
        if isinstance(child, Text) and child.data.strip():
            raise ValueError("documents cannot contain non-whitespace text")
        if child.parent is not None:
            raise ValueError("node already has a parent; copy() it first")
        child.parent = self
        self.children.append(child)
        return child

    def iter(self, tag: Optional[str] = None) -> Iterator[Element]:
        """Iterate elements of the whole document (document order)."""
        if self.root is not None:
            yield from self.root.iter(tag)

    def text_content(self) -> str:
        return self.root.text_content() if self.root is not None else ""

    def equals(self, other: object) -> bool:
        if not isinstance(other, Document):
            return False
        a, b = self.root, other.root
        if a is None or b is None:
            return a is b
        return a.equals(b)

    def copy(self) -> "Document":
        doc = Document()
        doc.doctype_name = self.doctype_name
        doc.doctype_internal = self.doctype_internal
        for child in self.children:
            doc.append(child.copy())
        return doc

    def size(self) -> int:
        """Number of nodes below the document (root subtree size)."""
        return self.root.size() if self.root is not None else 0

    def __repr__(self) -> str:
        tag = self.root.tag if self.root is not None else None
        return f"Document(root={tag!r})"


def strip_whitespace(node: Node) -> Node:
    """Remove whitespace-only text nodes from a subtree, in place.

    Useful for comparing documents "modulo indentation", e.g. after
    :func:`~repro.ssd.serializer.pretty` round trips.  Returns ``node``.
    """
    if isinstance(node, (Element, Document)):
        kept: list[Node] = []
        for child in node.children:
            if isinstance(child, Text) and not child.data.strip():
                child.parent = None
                continue
            kept.append(strip_whitespace(child))
        node.children = kept
    return node
