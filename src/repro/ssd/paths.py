"""A small path-expression engine (XPath-flavoured subset).

The paper situates graphical languages against the navigational textual
languages (XPath/XSLT-style); this module implements the subset needed to
express tree-shaped XML-GL extraction graphs as path expressions:

* ``/a/b`` — child steps, ``//a`` — descendant steps, ``*`` wildcard;
* predicates ``[child]``, ``[@attr]``, ``[@attr='v']``, ``[text()='v']``,
  ``[not(child)]``;
* a leading ``/`` anchors at the document root; otherwise the expression
  starts from all elements.

Besides being a user-facing utility, the engine is the *differential
oracle* for the XML-GL matcher: tree-shaped query graphs translate to
path expressions (:mod:`repro.xmlgl.translate`) and both evaluators must
return the same element sets.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from ..errors import QuerySyntaxError
from .model import Document, Element

__all__ = ["Step", "PathExpression", "parse_path", "evaluate_path"]


@dataclass(frozen=True)
class Predicate:
    """One ``[...]`` filter on a step.

    ``kind`` is one of ``child`` / ``attr`` / ``text``; ``negated`` wraps
    the test in ``not(...)``; ``value`` (optional) adds an equality test.
    ``path`` (for ``child``) holds a nested relative path expression.
    """

    kind: str
    name: str = ""
    value: Optional[str] = None
    negated: bool = False
    path: Optional["PathExpression"] = None

    def holds(self, element: Element) -> bool:
        result = self._positive(element)
        return not result if self.negated else result

    def _positive(self, element: Element) -> bool:
        if self.kind == "attr":
            actual = element.get(self.name)
            if actual is None:
                return False
            return self.value is None or actual == self.value
        if self.kind == "text":
            text = element.immediate_text().strip()
            if not text:
                return False
            return self.value is None or text == self.value
        assert self.kind == "child"
        assert self.path is not None
        return bool(evaluate_path(self.path, element))


@dataclass(frozen=True)
class Step:
    """One location step: axis (child/descendant), node test, predicates."""

    axis: str                       # "child" | "descendant"
    tag: Optional[str]              # None = "*"
    predicates: tuple[Predicate, ...] = ()

    def candidates(self, context: Element) -> list[Element]:
        if self.axis == "child":
            pool = context.child_elements()
        else:
            pool = [e for e in context.iter() if e is not context]
        return [
            e
            for e in pool
            if (self.tag is None or e.tag == self.tag)
            and all(p.holds(e) for p in self.predicates)
        ]


@dataclass(frozen=True)
class PathExpression:
    """A parsed path: optional root anchor plus steps."""

    steps: tuple[Step, ...]
    absolute: bool = False

    def __str__(self) -> str:
        parts = []
        for index, step in enumerate(self.steps):
            sep = "//" if step.axis == "descendant" else "/"
            if index == 0 and not self.absolute and step.axis == "child":
                sep = ""
            preds = "".join(_render_predicate(p) for p in step.predicates)
            parts.append(f"{sep}{step.tag or '*'}{preds}")
        return "".join(parts)


def _render_predicate(predicate: Predicate) -> str:
    if predicate.kind == "attr":
        body = f"@{predicate.name}"
        if predicate.value is not None:
            body += f"='{predicate.value}'"
    elif predicate.kind == "text":
        body = "text()"
        if predicate.value is not None:
            body += f"='{predicate.value}'"
    else:
        body = str(predicate.path)
    if predicate.negated:
        body = f"not({body})"
    return f"[{body}]"


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

_NAME = re.compile(r"[A-Za-z_][A-Za-z0-9_\-.]*")


class _PathScanner:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return self.text[self.pos] if not self.eof() else ""

    def take(self, literal: str) -> bool:
        if self.text.startswith(literal, self.pos):
            self.pos += len(literal)
            return True
        return False

    def expect(self, literal: str) -> None:
        if not self.take(literal):
            raise QuerySyntaxError(
                f"expected {literal!r} at position {self.pos} in path"
            )

    def name(self) -> str:
        match = _NAME.match(self.text, self.pos)
        if not match:
            raise QuerySyntaxError(
                f"expected a name at position {self.pos} in path"
            )
        self.pos = match.end()
        return match.group()


def parse_path(text: str) -> PathExpression:
    """Parse a path expression string."""
    scanner = _PathScanner(text.strip())
    absolute = False
    steps: list[Step] = []
    first = True
    while not scanner.eof():
        if scanner.take("//"):
            axis = "descendant"
            if first:
                absolute = True
        elif scanner.take("/"):
            axis = "child"
            if first:
                absolute = True
        elif first:
            axis = "child"
        else:
            raise QuerySyntaxError(
                f"expected '/' at position {scanner.pos} in path"
            )
        first = False
        if scanner.take("*"):
            tag: Optional[str] = None
        else:
            tag = scanner.name()
        predicates = []
        while scanner.take("["):
            predicates.append(_parse_predicate(scanner))
        steps.append(Step(axis, tag, tuple(predicates)))
    if not steps:
        raise QuerySyntaxError("empty path expression")
    return PathExpression(tuple(steps), absolute=absolute)


def _parse_predicate(scanner: _PathScanner) -> Predicate:
    negated = scanner.take("not(")
    if scanner.take("@"):
        name = scanner.name()
        value = _maybe_value(scanner)
        predicate = Predicate("attr", name, value, negated)
    elif scanner.take("text()"):
        value = _maybe_value(scanner)
        predicate = Predicate("text", "", value, negated)
    else:
        depth = 0
        start = scanner.pos
        while not scanner.eof():
            ch = scanner.peek()
            if ch == "[":
                depth += 1
            elif ch == "]":
                if depth == 0:
                    break
                depth -= 1
            elif ch == ")" and negated and depth == 0:
                break
            scanner.pos += 1
        inner = scanner.text[start : scanner.pos]
        predicate = Predicate("child", negated=negated, path=parse_path(inner))
    if negated:
        scanner.expect(")")
    scanner.expect("]")
    return predicate


def _maybe_value(scanner: _PathScanner) -> Optional[str]:
    if not scanner.take("="):
        return None
    quote = scanner.peek()
    if quote not in ("'", '"'):
        raise QuerySyntaxError("predicate values must be quoted")
    scanner.pos += 1
    end = scanner.text.find(quote, scanner.pos)
    if end == -1:
        raise QuerySyntaxError("unterminated predicate value")
    value = scanner.text[scanner.pos : end]
    scanner.pos = end + 1
    return value


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------

def evaluate_path(
    path: PathExpression | str, context: Document | Element
) -> list[Element]:
    """Evaluate a path; returns matching elements in document order.

    Absolute paths start at the document/subtree root (the first step must
    match the root element itself when anchored at a document); relative
    paths start below ``context``.
    """
    if isinstance(path, str):
        path = parse_path(path)
    if isinstance(context, Document):
        root = context.root
        if root is None:
            return []
        if path.absolute:
            first, rest = path.steps[0], path.steps[1:]
            if first.axis == "child":
                matches = (
                    [root]
                    if (first.tag is None or root.tag == first.tag)
                    and all(p.holds(root) for p in first.predicates)
                    else []
                )
            else:
                matches = first.candidates(_fake_parent(root))
            current = matches
            for step in rest:
                current = _advance(current, step)
            return _document_order_unique(current)
        context = root
        current = [context]
        for step in path.steps:
            current = _advance(current, step)
        return _document_order_unique(current)
    current = [context]
    for step in path.steps:
        current = _advance(current, step)
    return _document_order_unique(current)


def _fake_parent(root: Element) -> Element:
    wrapper = Element("#document")
    # do not reparent: temporary shallow container for candidate generation
    wrapper.children = [root]
    return wrapper


def _advance(contexts: list[Element], step: Step) -> list[Element]:
    out: list[Element] = []
    for context in contexts:
        out.extend(step.candidates(context))
    return out


def _document_order_unique(elements: list[Element]) -> list[Element]:
    seen: set[int] = set()
    unique = []
    for element in elements:
        if id(element) not in seen:
            seen.add(id(element))
            unique.append(element)
    return unique
