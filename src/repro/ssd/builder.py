"""Fluent construction helpers for documents.

``E`` builds elements concisely in tests, examples and workload generators::

    doc = document(
        E("bib",
          E("book", {"year": "1999"},
            E("title", "Data on the Web"),
            E("author", E("last", "Abiteboul"), E("first", "Serge")))))
"""

from __future__ import annotations

from typing import Union

from .model import Comment, Document, Element, Node, ProcessingInstruction, Text

__all__ = ["E", "T", "C", "PI", "document"]

Child = Union[Node, str, dict]


def E(tag: str, *parts: Child) -> Element:
    """Build an :class:`Element`.

    Positional parts may be, in any order:

    * ``dict`` — merged into the element's attributes,
    * ``str`` — appended as a text child,
    * any :class:`~repro.ssd.model.Node` — appended as a child.
    """
    element = Element(tag)
    for part in parts:
        if isinstance(part, dict):
            element.attributes.update(part)
        elif isinstance(part, (Node, str)):
            element.append(part)
        else:
            raise TypeError(f"cannot build element content from {type(part).__name__}")
    return element


def T(data: str) -> Text:
    """Build a :class:`Text` node (rarely needed; strings auto-convert)."""
    return Text(data)


def C(data: str) -> Comment:
    """Build a :class:`Comment` node."""
    return Comment(data)


def PI(target: str, data: str = "") -> ProcessingInstruction:
    """Build a :class:`ProcessingInstruction` node."""
    return ProcessingInstruction(target, data)


def document(root: Element) -> Document:
    """Wrap ``root`` in a fresh :class:`Document`."""
    return Document(root)
