"""Semi-structured data substrate: node model, XML parser, DTDs, navigation.

This package is the data layer both graphical query languages operate on:
an ordered XML tree model with an ID/IDREF graph overlay, a from-scratch
parser/serializer pair, navigation axes and DTD validation.
"""

from .builder import C, E, PI, T, document
from .datatypes import Atomic, coerce, compare, equal_atoms
from .dtd import Dtd, parse_dtd, validate
from .identity import IdentityIndex, ReferenceEdge
from .infer import infer_schema
from .model import Comment, Document, Element, Node, ProcessingInstruction, Text
from .parser import parse_document, parse_fragment
from .paths import PathExpression, evaluate_path, parse_path
from .serializer import pretty, serialize

__all__ = [
    "Node", "Element", "Text", "Comment", "ProcessingInstruction", "Document",
    "E", "T", "C", "PI", "document",
    "parse_document", "parse_fragment",
    "PathExpression", "parse_path", "evaluate_path",
    "serialize", "pretty",
    "Dtd", "parse_dtd", "validate",
    "IdentityIndex", "ReferenceEdge",
    "infer_schema",
    "Atomic", "coerce", "compare", "equal_atoms",
]
