"""DTD parsing and validation.

The paper uses DTDs as the baseline schema formalism that XML-GL schema
graphs subsume (the BOOK DTD figure).  This module implements:

* a parser for ``<!ELEMENT ...>`` and ``<!ATTLIST ...>`` declarations,
  including full content models (``EMPTY``, ``ANY``, mixed
  ``(#PCDATA | a | b)*`` and regular content particles with ``,`` / ``|``
  and ``?`` / ``*`` / ``+``);
* compilation of content models to Glushkov position automata, giving
  linear-time validation without backtracking;
* document validation against a :class:`Dtd` (content models, required /
  fixed / enumerated attributes, ID uniqueness and IDREF resolution).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Optional, Sequence, Union

from ..errors import DtdError, ValidationError
from .model import Document, Element, Text

__all__ = [
    "ContentParticle",
    "NameParticle",
    "SequenceParticle",
    "ChoiceParticle",
    "Repetition",
    "ContentModel",
    "ElementDecl",
    "AttType",
    "AttDefault",
    "AttributeDecl",
    "Dtd",
    "parse_dtd",
    "GlushkovAutomaton",
    "validate",
]


# ---------------------------------------------------------------------------
# Content-model AST
# ---------------------------------------------------------------------------

class Repetition(Enum):
    """Occurrence indicator on a content particle."""

    ONE = ""
    OPTIONAL = "?"
    STAR = "*"
    PLUS = "+"


@dataclass(frozen=True)
class NameParticle:
    """A single element name in a content model."""

    name: str
    repetition: Repetition = Repetition.ONE

    def __str__(self) -> str:
        return f"{self.name}{self.repetition.value}"


@dataclass(frozen=True)
class SequenceParticle:
    """``(a, b, c)`` — ordered sequence."""

    items: tuple["ContentParticle", ...]
    repetition: Repetition = Repetition.ONE

    def __str__(self) -> str:
        inner = ",".join(str(i) for i in self.items)
        return f"({inner}){self.repetition.value}"


@dataclass(frozen=True)
class ChoiceParticle:
    """``(a | b | c)`` — alternatives."""

    items: tuple["ContentParticle", ...]
    repetition: Repetition = Repetition.ONE

    def __str__(self) -> str:
        inner = "|".join(str(i) for i in self.items)
        return f"({inner}){self.repetition.value}"


ContentParticle = Union[NameParticle, SequenceParticle, ChoiceParticle]


class ContentKind(Enum):
    """The four DTD content classes."""

    EMPTY = auto()
    ANY = auto()
    MIXED = auto()      # (#PCDATA | name | ...)*
    CHILDREN = auto()   # regular particle


@dataclass(frozen=True)
class ContentModel:
    """Declared content of one element type."""

    kind: ContentKind
    particle: Optional[ContentParticle] = None     # for CHILDREN
    mixed_names: tuple[str, ...] = ()              # for MIXED

    def __str__(self) -> str:
        if self.kind is ContentKind.EMPTY:
            return "EMPTY"
        if self.kind is ContentKind.ANY:
            return "ANY"
        if self.kind is ContentKind.MIXED:
            if self.mixed_names:
                return "(#PCDATA|" + "|".join(self.mixed_names) + ")*"
            return "(#PCDATA)"
        return str(self.particle)


# ---------------------------------------------------------------------------
# Attribute declarations
# ---------------------------------------------------------------------------

class AttType(Enum):
    """Attribute types relevant to validation."""

    CDATA = auto()
    ID = auto()
    IDREF = auto()
    IDREFS = auto()
    NMTOKEN = auto()
    NMTOKENS = auto()
    ENUMERATION = auto()


class AttDefault(Enum):
    """Attribute default kinds."""

    REQUIRED = auto()
    IMPLIED = auto()
    FIXED = auto()
    DEFAULT = auto()  # literal default value


@dataclass(frozen=True)
class AttributeDecl:
    """One attribute definition from an ATTLIST."""

    element: str
    name: str
    att_type: AttType
    default: AttDefault
    value: Optional[str] = None           # FIXED / DEFAULT literal
    enumeration: tuple[str, ...] = ()     # for ENUMERATION


@dataclass
class ElementDecl:
    """One ``<!ELEMENT>`` declaration plus its attributes.

    ``placeholder`` marks declarations synthesised by an ATTLIST that
    preceded the element's own ``<!ELEMENT>`` declaration.
    """

    name: str
    content: ContentModel
    attributes: dict[str, AttributeDecl] = field(default_factory=dict)
    placeholder: bool = False


@dataclass
class Dtd:
    """A parsed DTD: element declarations by name."""

    elements: dict[str, ElementDecl] = field(default_factory=dict)

    def declaration(self, name: str) -> Optional[ElementDecl]:
        """Declaration for element type ``name``, or ``None``."""
        return self.elements.get(name)

    def id_attribute_names(self) -> set[str]:
        """All attribute names declared with type ID anywhere in the DTD."""
        return {
            att.name
            for decl in self.elements.values()
            for att in decl.attributes.values()
            if att.att_type is AttType.ID
        }


# ---------------------------------------------------------------------------
# DTD text parser
# ---------------------------------------------------------------------------

class _DtdScanner:
    """Character scanner shared by the declaration parsers."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def skip_ws(self) -> None:
        while not self.eof():
            if self.peek() in " \t\r\n":
                self.pos += 1
            elif self.text.startswith("<!--", self.pos):
                end = self.text.find("-->", self.pos + 4)
                if end == -1:
                    raise DtdError("unterminated comment in DTD")
                self.pos = end + 3
            elif self.text.startswith("%", self.pos):
                # Parameter entities are not expanded; skip the reference.
                end = self.text.find(";", self.pos)
                if end == -1:
                    raise DtdError("unterminated parameter-entity reference")
                self.pos = end + 1
            else:
                return

    def expect(self, literal: str) -> None:
        if not self.text.startswith(literal, self.pos):
            context = self.text[self.pos : self.pos + 20]
            raise DtdError(f"expected {literal!r} at ...{context!r}")
        self.pos += len(literal)

    def name(self) -> str:
        start = self.pos
        while not self.eof() and (self.peek().isalnum() or self.peek() in "_-.:#"):
            self.pos += 1
        if start == self.pos:
            context = self.text[self.pos : self.pos + 20]
            raise DtdError(f"expected a name at ...{context!r}")
        return self.text[start : self.pos]

    def quoted(self) -> str:
        quote = self.peek()
        if quote not in ("'", '"'):
            raise DtdError("expected a quoted literal")
        self.pos += 1
        end = self.text.find(quote, self.pos)
        if end == -1:
            raise DtdError("unterminated literal in DTD")
        value = self.text[self.pos : end]
        self.pos = end + 1
        return value


def parse_dtd(text: str) -> Dtd:
    """Parse the declarations of an (internal-subset style) DTD string."""
    dtd = Dtd()
    scanner = _DtdScanner(text)
    while True:
        scanner.skip_ws()
        if scanner.eof():
            return dtd
        if scanner.text.startswith("<!ELEMENT", scanner.pos):
            _parse_element_decl(scanner, dtd)
        elif scanner.text.startswith("<!ATTLIST", scanner.pos):
            _parse_attlist_decl(scanner, dtd)
        elif scanner.text.startswith("<!ENTITY", scanner.pos) or scanner.text.startswith(
            "<!NOTATION", scanner.pos
        ):
            _skip_declaration(scanner)
        else:
            context = scanner.text[scanner.pos : scanner.pos + 30]
            raise DtdError(f"unrecognised DTD content at ...{context!r}")


def _skip_declaration(scanner: _DtdScanner) -> None:
    end = scanner.text.find(">", scanner.pos)
    if end == -1:
        raise DtdError("unterminated declaration")
    scanner.pos = end + 1


def _parse_element_decl(scanner: _DtdScanner, dtd: Dtd) -> None:
    scanner.expect("<!ELEMENT")
    scanner.skip_ws()
    name = scanner.name()
    scanner.skip_ws()
    content = _parse_content_model(scanner)
    scanner.skip_ws()
    scanner.expect(">")
    existing = dtd.elements.get(name)
    if existing is not None:
        if not existing.placeholder:
            raise DtdError(f"duplicate <!ELEMENT {name}> declaration")
        existing.content = content
        existing.placeholder = False
    else:
        dtd.elements[name] = ElementDecl(name, content)


def _parse_content_model(scanner: _DtdScanner) -> ContentModel:
    if scanner.text.startswith("EMPTY", scanner.pos):
        scanner.pos += len("EMPTY")
        return ContentModel(ContentKind.EMPTY)
    if scanner.text.startswith("ANY", scanner.pos):
        scanner.pos += len("ANY")
        return ContentModel(ContentKind.ANY)
    # Bare PCDATA keyword, tolerated for convenience (the paper's figures
    # write `<!ELEMENT title PCDATA>`).
    for keyword in ("#PCDATA", "PCDATA"):
        if scanner.text.startswith(keyword, scanner.pos):
            scanner.pos += len(keyword)
            return ContentModel(ContentKind.MIXED)
    scanner.expect("(")
    scanner.skip_ws()
    if scanner.text.startswith("#PCDATA", scanner.pos):
        return _parse_mixed(scanner)
    particle = _parse_particle_group(scanner, opened=True)
    return ContentModel(ContentKind.CHILDREN, particle=particle)


def _parse_mixed(scanner: _DtdScanner) -> ContentModel:
    scanner.expect("#PCDATA")
    names: list[str] = []
    while True:
        scanner.skip_ws()
        if scanner.peek() == "|":
            scanner.pos += 1
            scanner.skip_ws()
            names.append(scanner.name())
        elif scanner.peek() == ")":
            scanner.pos += 1
            if scanner.peek() == "*":
                scanner.pos += 1
            elif names:
                raise DtdError("mixed content with names must end in ')*'")
            return ContentModel(ContentKind.MIXED, mixed_names=tuple(names))
        else:
            raise DtdError("malformed mixed content model")


def _read_repetition(scanner: _DtdScanner) -> Repetition:
    ch = scanner.peek()
    if ch == "?":
        scanner.pos += 1
        return Repetition.OPTIONAL
    if ch == "*":
        scanner.pos += 1
        return Repetition.STAR
    if ch == "+":
        scanner.pos += 1
        return Repetition.PLUS
    return Repetition.ONE


def _parse_cp(scanner: _DtdScanner) -> ContentParticle:
    scanner.skip_ws()
    if scanner.peek() == "(":
        scanner.pos += 1
        return _parse_particle_group(scanner, opened=True)
    name = scanner.name()
    return NameParticle(name, _read_repetition(scanner))


def _parse_particle_group(scanner: _DtdScanner, opened: bool) -> ContentParticle:
    """Parse the inside of a ``( ... )`` group; ``(`` already consumed."""
    assert opened
    items = [_parse_cp(scanner)]
    separator: Optional[str] = None
    while True:
        scanner.skip_ws()
        ch = scanner.peek()
        if ch in (",", "|"):
            if separator is None:
                separator = ch
            elif separator != ch:
                raise DtdError("cannot mix ',' and '|' in one group")
            scanner.pos += 1
            items.append(_parse_cp(scanner))
        elif ch == ")":
            scanner.pos += 1
            repetition = _read_repetition(scanner)
            if separator == "|":
                return ChoiceParticle(tuple(items), repetition)
            if len(items) == 1 and repetition is Repetition.ONE:
                return items[0]
            return SequenceParticle(tuple(items), repetition)
        else:
            raise DtdError(f"malformed content model near {ch!r}")


_ATT_TYPES = {
    "CDATA": AttType.CDATA,
    "ID": AttType.ID,
    "IDREF": AttType.IDREF,
    "IDREFS": AttType.IDREFS,
    "NMTOKEN": AttType.NMTOKEN,
    "NMTOKENS": AttType.NMTOKENS,
}


def _parse_attlist_decl(scanner: _DtdScanner, dtd: Dtd) -> None:
    scanner.expect("<!ATTLIST")
    scanner.skip_ws()
    element_name = scanner.name()
    decl = dtd.elements.setdefault(
        element_name,
        ElementDecl(element_name, ContentModel(ContentKind.ANY), placeholder=True),
    )
    while True:
        scanner.skip_ws()
        if scanner.peek() == ">":
            scanner.pos += 1
            return
        att_name = scanner.name()
        scanner.skip_ws()
        enumeration: tuple[str, ...] = ()
        if scanner.peek() == "(":
            scanner.pos += 1
            values = []
            while True:
                scanner.skip_ws()
                values.append(scanner.name())
                scanner.skip_ws()
                if scanner.peek() == "|":
                    scanner.pos += 1
                elif scanner.peek() == ")":
                    scanner.pos += 1
                    break
                else:
                    raise DtdError("malformed attribute enumeration")
            att_type = AttType.ENUMERATION
            enumeration = tuple(values)
        else:
            keyword = scanner.name()
            if keyword not in _ATT_TYPES:
                raise DtdError(f"unsupported attribute type {keyword!r}")
            att_type = _ATT_TYPES[keyword]
        scanner.skip_ws()
        value: Optional[str] = None
        if scanner.peek() == "#":
            keyword = scanner.name()
            if keyword == "#REQUIRED":
                default = AttDefault.REQUIRED
            elif keyword == "#IMPLIED":
                default = AttDefault.IMPLIED
            elif keyword == "#FIXED":
                default = AttDefault.FIXED
                scanner.skip_ws()
                value = scanner.quoted()
            else:
                raise DtdError(f"unknown attribute default {keyword!r}")
        else:
            default = AttDefault.DEFAULT
            value = scanner.quoted()
        decl.attributes[att_name] = AttributeDecl(
            element_name, att_name, att_type, default, value, enumeration
        )


# ---------------------------------------------------------------------------
# Glushkov position automaton
# ---------------------------------------------------------------------------

class GlushkovAutomaton:
    """Position automaton of one content particle.

    States are particle *positions* (occurrences of element names); state 0 is
    the initial state.  Because XML requires deterministic content models, at
    most one successor exists per (state, symbol) — ambiguity is reported as a
    :class:`~repro.errors.DtdError` at build time, matching the XML 1.0
    determinism constraint.
    """

    def __init__(self, particle: ContentParticle) -> None:
        self._symbols: list[str] = []          # symbol of each position (1-based)
        first, last, nullable = self._analyse(particle)
        follow: dict[int, set[int]] = {i: set() for i in range(1, len(self._symbols) + 1)}
        self._fill_follow(particle, follow)
        self._transitions: list[dict[str, int]] = [dict() for _ in range(len(self._symbols) + 1)]
        for position in first:
            self._add_transition(0, position)
        for position, successors in follow.items():
            for successor in successors:
                self._add_transition(position, successor)
        self._accepting = set(last) | ({0} if nullable else set())

    # -- construction helpers ------------------------------------------------

    def _add_transition(self, state: int, position: int) -> None:
        symbol = self._symbols[position - 1]
        existing = self._transitions[state].get(symbol)
        if existing is not None and existing != position:
            raise DtdError(
                f"non-deterministic content model: two ways to match {symbol!r}"
            )
        self._transitions[state][symbol] = position

    def _analyse(
        self, particle: ContentParticle
    ) -> tuple[set[int], set[int], bool]:
        """Return (first, last, nullable) while numbering positions."""
        if isinstance(particle, NameParticle):
            self._symbols.append(particle.name)
            position = len(self._symbols)
            first, last = {position}, {position}
            nullable = particle.repetition in (Repetition.OPTIONAL, Repetition.STAR)
            return first, last, nullable
        firsts: list[set[int]] = []
        lasts: list[set[int]] = []
        nullables: list[bool] = []
        for item in particle.items:
            f, l, n = self._analyse(item)
            firsts.append(f)
            lasts.append(l)
            nullables.append(n)
        if isinstance(particle, ChoiceParticle):
            first = set().union(*firsts)
            last = set().union(*lasts)
            nullable = any(nullables)
        else:  # sequence
            first = set()
            for f, n in zip(firsts, nullables):
                first |= f
                if not n:
                    break
            last = set()
            for l, n in zip(reversed(lasts), reversed(nullables)):
                last |= l
                if not n:
                    break
            nullable = all(nullables)
        if particle.repetition in (Repetition.OPTIONAL, Repetition.STAR):
            nullable = True
        return first, last, nullable

    def _fill_follow(
        self, particle: ContentParticle, follow: dict[int, set[int]]
    ) -> tuple[set[int], set[int], bool, int]:
        """Second pass computing follow sets; returns (first, last, nullable, next_pos)."""
        # Re-walk the particle numbering positions identically to _analyse.
        counter = [0]

        def walk(p: ContentParticle) -> tuple[set[int], set[int], bool]:
            if isinstance(p, NameParticle):
                counter[0] += 1
                position = counter[0]
                nullable = p.repetition in (Repetition.OPTIONAL, Repetition.STAR)
                if p.repetition in (Repetition.STAR, Repetition.PLUS):
                    follow[position].add(position)
                return {position}, {position}, nullable
            results = [walk(item) for item in p.items]
            if isinstance(p, ChoiceParticle):
                first = set().union(*(r[0] for r in results))
                last = set().union(*(r[1] for r in results))
                nullable = any(r[2] for r in results)
            else:
                # follow(last of item i) += first of the next non-consumed items
                for index in range(len(results) - 1):
                    _, last_i, _ = results[index]
                    for later in results[index + 1 :]:
                        first_j, _, nullable_j = later
                        for pos in last_i:
                            follow[pos] |= first_j
                        if not nullable_j:
                            break
                first = set()
                for f, _, n in results:
                    first |= f
                    if not n:
                        break
                last = set()
                for f, l, n in reversed(results):
                    last |= l
                    if not n:
                        break
                nullable = all(r[2] for r in results)
            if p.repetition in (Repetition.STAR, Repetition.PLUS):
                for pos in last:
                    follow[pos] |= first
            if p.repetition in (Repetition.OPTIONAL, Repetition.STAR):
                nullable = True
            return first, last, nullable

        first, last, nullable = walk(particle)
        return first, last, nullable, counter[0]

    # -- execution ------------------------------------------------------------

    def accepts(self, sequence: Sequence[str]) -> bool:
        """True when the name sequence matches the content model."""
        state = 0
        for symbol in sequence:
            next_state = self._transitions[state].get(symbol)
            if next_state is None:
                return False
            state = next_state
        return state in self._accepting

    def expected_after(self, sequence: Sequence[str]) -> set[str]:
        """Symbols allowed after consuming ``sequence`` (for error messages)."""
        state = 0
        for symbol in sequence:
            next_state = self._transitions[state].get(symbol)
            if next_state is None:
                return set()
            state = next_state
        return set(self._transitions[state])


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------

def validate(document: Document, dtd: Dtd, collect: bool = True) -> list[str]:
    """Validate ``document`` against ``dtd``.

    Returns the list of violation messages (empty when valid).  With
    ``collect=False`` the first violation raises
    :class:`~repro.errors.ValidationError` instead.
    """
    violations: list[str] = []
    automata: dict[str, GlushkovAutomaton] = {}

    def report(message: str) -> None:
        if not collect:
            raise ValidationError(message)
        violations.append(message)

    root = document.root
    if root is None:
        report("document has no root element")
        return violations
    if document.doctype_name and document.doctype_name != root.tag:
        report(
            f"root element <{root.tag}> does not match DOCTYPE "
            f"{document.doctype_name!r}"
        )

    seen_ids: set[str] = set()
    pending_refs: list[tuple[Element, str]] = []

    for element in document.iter():
        decl = dtd.declaration(element.tag)
        if decl is None:
            report(f"undeclared element <{element.tag}>")
            continue
        _check_content(element, decl, automata, report)
        _check_attributes(element, decl, seen_ids, pending_refs, report)

    for element, ref in pending_refs:
        if ref not in seen_ids:
            report(f"IDREF {ref!r} on <{element.tag}> matches no ID")
    return violations


def _check_content(
    element: Element,
    decl: ElementDecl,
    automata: dict[str, GlushkovAutomaton],
    report,
) -> None:
    model = decl.content
    child_names = [c.tag for c in element.children if isinstance(c, Element)]
    has_text = any(
        isinstance(c, Text) and c.data.strip() for c in element.children
    )
    if model.kind is ContentKind.EMPTY:
        if child_names or has_text:
            report(f"<{element.tag}> is declared EMPTY but has content")
    elif model.kind is ContentKind.ANY:
        return
    elif model.kind is ContentKind.MIXED:
        allowed = set(model.mixed_names)
        for name in child_names:
            if name not in allowed:
                report(
                    f"<{name}> not allowed in mixed content of <{element.tag}>"
                )
    else:
        if has_text:
            report(f"<{element.tag}> has element content but contains text")
        automaton = automata.get(element.tag)
        if automaton is None:
            assert model.particle is not None
            automaton = GlushkovAutomaton(model.particle)
            automata[element.tag] = automaton
        if not automaton.accepts(child_names):
            expected = sorted(automaton.expected_after(child_names)) or ["(end)"]
            report(
                f"children of <{element.tag}> do not match {model}: "
                f"got {child_names}, expected one of {expected} next"
            )


def _check_attributes(
    element: Element,
    decl: ElementDecl,
    seen_ids: set[str],
    pending_refs: list[tuple[Element, str]],
    report,
) -> None:
    for name in element.attributes:
        if name not in decl.attributes:
            report(f"undeclared attribute {name!r} on <{element.tag}>")
    for att in decl.attributes.values():
        value = element.get(att.name)
        if value is None:
            if att.default is AttDefault.REQUIRED:
                report(f"missing required attribute {att.name!r} on <{element.tag}>")
            continue
        if att.default is AttDefault.FIXED and value != att.value:
            report(
                f"attribute {att.name!r} on <{element.tag}> must be fixed "
                f"to {att.value!r}"
            )
        if att.att_type is AttType.ENUMERATION and value not in att.enumeration:
            report(
                f"attribute {att.name!r} on <{element.tag}> must be one of "
                f"{att.enumeration}, got {value!r}"
            )
        if att.att_type is AttType.ID:
            if value in seen_ids:
                report(f"duplicate ID {value!r} on <{element.tag}>")
            seen_ids.add(value)
        elif att.att_type is AttType.IDREF:
            pending_refs.append((element, value))
        elif att.att_type is AttType.IDREFS:
            for token in value.split():
                pending_refs.append((element, token))
        elif att.att_type in (AttType.NMTOKEN, AttType.NMTOKENS):
            tokens = value.split() if att.att_type is AttType.NMTOKENS else [value]
            for token in tokens:
                if not token or not all(c.isalnum() or c in "-._:" for c in token):
                    report(
                        f"attribute {att.name!r} on <{element.tag}>: "
                        f"{token!r} is not a NMTOKEN"
                    )
