"""Navigation axes over the node model.

These are the tree axes the graphical languages compile to: children,
descendants (XML-GL's ``*`` starred edge), parent, ancestors, siblings and
document order.  They are plain generator functions so evaluation stays lazy.
"""

from __future__ import annotations

from typing import Iterator, Optional

from .model import Document, Element, Node

__all__ = [
    "children",
    "child_elements",
    "descendants",
    "descendant_elements",
    "descendant_or_self_elements",
    "parent_element",
    "ancestors",
    "following_siblings",
    "preceding_siblings",
    "document_order",
    "document_position",
    "depth",
]


def children(node: Node) -> Iterator[Node]:
    """Direct children of an element or document (document order)."""
    if isinstance(node, (Element, Document)):
        yield from node.children


def child_elements(node: Node) -> Iterator[Element]:
    """Direct element children."""
    for child in children(node):
        if isinstance(child, Element):
            yield child


def descendants(node: Node) -> Iterator[Node]:
    """All descendant nodes (self excluded), document order."""
    for child in children(node):
        yield child
        yield from descendants(child)


def descendant_elements(node: Node) -> Iterator[Element]:
    """All descendant elements (self excluded), document order."""
    for desc in descendants(node):
        if isinstance(desc, Element):
            yield desc


def descendant_or_self_elements(node: Node) -> Iterator[Element]:
    """Self (when an element) followed by descendant elements."""
    if isinstance(node, Element):
        yield node
    yield from descendant_elements(node)


def parent_element(node: Node) -> Optional[Element]:
    """The parent when it is an element, else ``None``."""
    return node.parent if isinstance(node.parent, Element) else None


def ancestors(node: Node) -> Iterator[Element]:
    """Proper element ancestors, nearest first."""
    yield from node.ancestors()


def _siblings(node: Node) -> list[Node]:
    if node.parent is None:
        return [node]
    return node.parent.children


def following_siblings(node: Node) -> Iterator[Node]:
    """Siblings after this node, document order."""
    sibs = _siblings(node)
    index = next(i for i, s in enumerate(sibs) if s is node)
    yield from sibs[index + 1 :]


def preceding_siblings(node: Node) -> Iterator[Node]:
    """Siblings before this node, reverse document order."""
    sibs = _siblings(node)
    index = next(i for i, s in enumerate(sibs) if s is node)
    yield from reversed(sibs[:index])


def document_order(root: Node) -> Iterator[Node]:
    """``root`` followed by all descendants in document order."""
    yield root
    yield from descendants(root)


def document_position(node: Node) -> int:
    """0-based position of ``node`` in its document's order.

    Detached nodes are positioned within their own subtree.
    """
    top: Node = node.document or node
    while top.parent is not None:  # detached subtree: walk to its top
        top = top.parent
    for index, candidate in enumerate(document_order(top)):
        if candidate is node:
            return index
    raise ValueError("node not reachable from its root")  # pragma: no cover


def depth(node: Node) -> int:
    """Number of element ancestors above ``node``."""
    return sum(1 for _ in node.ancestors())
