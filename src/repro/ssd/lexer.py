"""Tokenizer for the from-scratch XML parser.

The lexer turns a character stream into a flat stream of :class:`Token`
objects: start tags (with already-parsed attributes), end tags, character
data, CDATA sections, comments, processing instructions and the DOCTYPE
declaration.  Entity references in character data and attribute values are
resolved here (the five XML built-ins plus decimal/hex character references).

The split between lexer and parser keeps each half small: the lexer knows
about characters and escaping, the parser about well-formedness (matching
tags, a single root, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Iterator

from ..errors import XmlSyntaxError

__all__ = ["TokenType", "Token", "Lexer", "unescape", "NAME_START", "is_name"]


class TokenType(Enum):
    """Kinds of lexical tokens emitted by :class:`Lexer`."""

    START_TAG = auto()      # <name attr="v" ...>   (self_closing False)
    END_TAG = auto()        # </name>
    TEXT = auto()           # character data (entities resolved)
    CDATA = auto()          # <![CDATA[ ... ]]>
    COMMENT = auto()        # <!-- ... -->
    PI = auto()             # <?target data?>
    DOCTYPE = auto()        # <!DOCTYPE name [internal]>
    EOF = auto()


@dataclass
class Token:
    """One lexical token.

    ``value`` is the tag name, text data, comment body or PI target depending
    on ``type``.  Start tags carry ``attributes`` and ``self_closing``;
    DOCTYPE tokens carry the internal subset in ``data``.
    """

    type: TokenType
    value: str
    line: int
    column: int
    attributes: dict[str, str] = field(default_factory=dict)
    self_closing: bool = False
    data: str = ""


_BUILTIN_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

NAME_START = set("_:") | {chr(c) for c in range(ord("a"), ord("z") + 1)} | {
    chr(c) for c in range(ord("A"), ord("Z") + 1)
}
_NAME_CHARS = NAME_START | set("-.0123456789")


def is_name(text: str) -> bool:
    """True when ``text`` is a valid XML name (ASCII subset)."""
    if not text or text[0] not in NAME_START and not text[0].isalpha():
        return False
    return all(c in _NAME_CHARS or c.isalnum() for c in text)


def unescape(text: str, line: int = 0, column: int = 0) -> str:
    """Resolve entity and character references in ``text``."""
    if "&" not in text:
        return text
    out: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = text.find(";", i + 1)
        if end == -1:
            raise XmlSyntaxError("unterminated entity reference", line, column)
        name = text[i + 1 : end]
        if name.startswith("#x") or name.startswith("#X"):
            try:
                out.append(chr(int(name[2:], 16)))
            except ValueError:
                raise XmlSyntaxError(f"bad character reference &{name};", line, column)
        elif name.startswith("#"):
            try:
                out.append(chr(int(name[1:])))
            except ValueError:
                raise XmlSyntaxError(f"bad character reference &{name};", line, column)
        elif name in _BUILTIN_ENTITIES:
            out.append(_BUILTIN_ENTITIES[name])
        else:
            raise XmlSyntaxError(f"unknown entity &{name};", line, column)
        i = end + 1
    return "".join(out)


class Lexer:
    """Single-pass XML tokenizer over an in-memory string."""

    def __init__(self, source: str) -> None:
        self._src = source
        self._pos = 0
        self._line = 1
        self._col = 1

    # -- low-level cursor ---------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        return self._src[index] if index < len(self._src) else ""

    def _advance(self, count: int = 1) -> str:
        chunk = self._src[self._pos : self._pos + count]
        for ch in chunk:
            if ch == "\n":
                self._line += 1
                self._col = 1
            else:
                self._col += 1
        self._pos += count
        return chunk

    def _error(self, message: str) -> XmlSyntaxError:
        return XmlSyntaxError(message, self._line, self._col)

    def _expect(self, literal: str) -> None:
        if not self._src.startswith(literal, self._pos):
            raise self._error(f"expected {literal!r}")
        self._advance(len(literal))

    def _skip_whitespace(self) -> None:
        while self._peek() in " \t\r\n" and self._peek():
            self._advance()

    def _read_until(self, terminator: str, context: str) -> str:
        end = self._src.find(terminator, self._pos)
        if end == -1:
            raise self._error(f"unterminated {context}")
        text = self._src[self._pos : end]
        self._advance(len(text) + len(terminator))
        return text

    def _read_name(self) -> str:
        start = self._pos
        ch = self._peek()
        if not (ch in NAME_START or ch.isalpha()):
            raise self._error(f"expected a name, found {ch!r}")
        while True:
            ch = self._peek()
            if ch and (ch in _NAME_CHARS or ch.isalnum()):
                self._advance()
            else:
                break
        return self._src[start : self._pos]

    # -- token production ---------------------------------------------------

    def tokens(self) -> Iterator[Token]:
        """Yield all tokens, ending with a single EOF token."""
        while True:
            token = self.next_token()
            yield token
            if token.type is TokenType.EOF:
                return

    def next_token(self) -> Token:
        """Lex and return the next token."""
        if self._pos >= len(self._src):
            return Token(TokenType.EOF, "", self._line, self._col)
        line, col = self._line, self._col
        if self._peek() != "<":
            return self._lex_text(line, col)
        if self._peek(1) == "/":
            return self._lex_end_tag(line, col)
        if self._peek(1) == "?":
            return self._lex_pi(line, col)
        if self._peek(1) == "!":
            if self._src.startswith("<!--", self._pos):
                return self._lex_comment(line, col)
            if self._src.startswith("<![CDATA[", self._pos):
                return self._lex_cdata(line, col)
            if self._src.startswith("<!DOCTYPE", self._pos):
                return self._lex_doctype(line, col)
            raise self._error("unrecognised markup declaration")
        return self._lex_start_tag(line, col)

    def _lex_text(self, line: int, col: int) -> Token:
        start = self._pos
        next_lt = self._src.find("<", self._pos)
        end = next_lt if next_lt != -1 else len(self._src)
        raw = self._src[start:end]
        if "]]>" in raw:
            raise self._error("']]>' is not allowed in character data")
        self._advance(end - start)
        return Token(TokenType.TEXT, unescape(raw, line, col), line, col)

    def _lex_comment(self, line: int, col: int) -> Token:
        self._advance(4)  # <!--
        body = self._read_until("-->", "comment")
        if "--" in body:
            raise XmlSyntaxError("'--' is not allowed inside comments", line, col)
        return Token(TokenType.COMMENT, body, line, col)

    def _lex_cdata(self, line: int, col: int) -> Token:
        self._advance(9)  # <![CDATA[
        body = self._read_until("]]>", "CDATA section")
        return Token(TokenType.CDATA, body, line, col)

    def _lex_pi(self, line: int, col: int) -> Token:
        self._advance(2)  # <?
        target = self._read_name()
        self._skip_whitespace()
        data = self._read_until("?>", "processing instruction")
        return Token(TokenType.PI, target, line, col, data=data.rstrip())

    def _lex_doctype(self, line: int, col: int) -> Token:
        self._advance(len("<!DOCTYPE"))
        self._skip_whitespace()
        name = self._read_name()
        internal = ""
        # Scan to the closing '>', honouring an optional [internal subset].
        while True:
            ch = self._peek()
            if not ch:
                raise self._error("unterminated DOCTYPE declaration")
            if ch == "[":
                self._advance()
                internal = self._read_until("]", "DOCTYPE internal subset")
            elif ch == ">":
                self._advance()
                break
            else:
                self._advance()
        return Token(TokenType.DOCTYPE, name, line, col, data=internal)

    def _lex_end_tag(self, line: int, col: int) -> Token:
        self._advance(2)  # </
        name = self._read_name()
        self._skip_whitespace()
        self._expect(">")
        return Token(TokenType.END_TAG, name, line, col)

    def _lex_start_tag(self, line: int, col: int) -> Token:
        self._advance(1)  # <
        name = self._read_name()
        attributes: dict[str, str] = {}
        while True:
            self._skip_whitespace()
            ch = self._peek()
            if not ch:
                raise self._error(f"unterminated start tag <{name}")
            if ch == ">":
                self._advance()
                return Token(TokenType.START_TAG, name, line, col, attributes=attributes)
            if ch == "/":
                self._advance()
                self._expect(">")
                return Token(
                    TokenType.START_TAG, name, line, col,
                    attributes=attributes, self_closing=True,
                )
            attr_line, attr_col = self._line, self._col
            attr_name = self._read_name()
            self._skip_whitespace()
            self._expect("=")
            self._skip_whitespace()
            quote = self._peek()
            if quote not in ("'", '"'):
                raise self._error("attribute values must be quoted")
            self._advance()
            raw = self._read_until(quote, f"attribute {attr_name}")
            if "<" in raw:
                raise XmlSyntaxError(
                    "'<' is not allowed in attribute values", attr_line, attr_col
                )
            if attr_name in attributes:
                raise XmlSyntaxError(
                    f"duplicate attribute {attr_name!r}", attr_line, attr_col
                )
            # XML 1.0 attribute-value normalisation: literal whitespace
            # characters become spaces (character references keep theirs).
            normalised = raw.replace("\t", " ").replace("\n", " ").replace("\r", " ")
            attributes[attr_name] = unescape(normalised, attr_line, attr_col)
