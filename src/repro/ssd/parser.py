"""Well-formedness parser: token stream -> :class:`~repro.ssd.model.Document`.

The parser enforces the structural rules the lexer cannot: properly nested
and matching tags, exactly one root element, no character data outside the
root, and the XML declaration (treated as a PI with target ``xml``) only at
the very beginning.
"""

from __future__ import annotations

from typing import Optional

from ..errors import XmlSyntaxError
from .lexer import Lexer, Token, TokenType
from .model import Comment, Document, Element, ProcessingInstruction, Text

__all__ = ["parse_document", "parse_fragment"]


def parse_document(source: str) -> Document:
    """Parse a complete XML document from a string.

    Raises :class:`~repro.errors.XmlSyntaxError` on malformed input.
    Whitespace-only text between the document's prolog/epilog markup is
    dropped; all whitespace inside the root element is preserved.
    """
    document = Document()
    stack: list[Element] = []
    seen_root = False
    seen_any = False

    for token in Lexer(source).tokens():
        if token.type is TokenType.EOF:
            break
        if token.type is TokenType.PI and token.value == "xml":
            if seen_any:
                raise XmlSyntaxError(
                    "XML declaration only allowed at document start",
                    token.line, token.column,
                )
            seen_any = True
            continue
        seen_any = True
        if stack:
            _feed_content(stack, token)
            continue
        # -- at document level ------------------------------------------------
        if token.type is TokenType.TEXT:
            if token.value.strip():
                raise XmlSyntaxError(
                    "character data outside the root element",
                    token.line, token.column,
                )
        elif token.type is TokenType.COMMENT:
            document.append(Comment(token.value))
        elif token.type is TokenType.PI:
            document.append(ProcessingInstruction(token.value, token.data))
        elif token.type is TokenType.DOCTYPE:
            if seen_root:
                raise XmlSyntaxError(
                    "DOCTYPE must precede the root element", token.line, token.column
                )
            if document.doctype_name is not None:
                raise XmlSyntaxError("duplicate DOCTYPE", token.line, token.column)
            document.doctype_name = token.value
            document.doctype_internal = token.data or None
        elif token.type is TokenType.START_TAG:
            if seen_root:
                raise XmlSyntaxError(
                    f"multiple root elements (second: <{token.value}>)",
                    token.line, token.column,
                )
            seen_root = True
            element = Element(token.value, token.attributes)
            document.append(element)
            if not token.self_closing:
                stack.append(element)
        elif token.type is TokenType.CDATA:
            raise XmlSyntaxError(
                "CDATA section outside the root element", token.line, token.column
            )
        elif token.type is TokenType.END_TAG:
            raise XmlSyntaxError(
                f"unexpected end tag </{token.value}>", token.line, token.column
            )

    if stack:
        open_tag = stack[-1].tag
        raise XmlSyntaxError(f"unclosed element <{open_tag}>")
    if document.root is None:
        raise XmlSyntaxError("document has no root element")
    return document


def parse_fragment(source: str, wrapper_tag: str = "fragment") -> Element:
    """Parse an XML fragment (zero or more sibling nodes).

    The fragment is parsed inside a synthetic wrapper element whose tag is
    ``wrapper_tag``; the wrapper is returned, with the fragment's nodes as its
    children.  Useful in tests and for construction templates.
    """
    wrapped = f"<{wrapper_tag}>{source}</{wrapper_tag}>"
    return parse_document(wrapped).root  # type: ignore[return-value]


def _feed_content(stack: list[Element], token: Token) -> None:
    """Apply one token while inside the root element."""
    current = stack[-1]
    if token.type is TokenType.TEXT:
        current.append(Text(token.value))
    elif token.type is TokenType.CDATA:
        current.append(Text(token.value, is_cdata=True))
    elif token.type is TokenType.COMMENT:
        current.append(Comment(token.value))
    elif token.type is TokenType.PI:
        current.append(ProcessingInstruction(token.value, token.data))
    elif token.type is TokenType.START_TAG:
        element = Element(token.value, token.attributes)
        current.append(element)
        if not token.self_closing:
            stack.append(element)
    elif token.type is TokenType.END_TAG:
        if token.value != current.tag:
            raise XmlSyntaxError(
                f"mismatched end tag </{token.value}>, expected </{current.tag}>",
                token.line, token.column,
            )
        stack.pop()
    elif token.type is TokenType.DOCTYPE:
        raise XmlSyntaxError(
            "DOCTYPE inside the root element", token.line, token.column
        )


def try_parse(source: str) -> Optional[Document]:
    """Parse, returning ``None`` instead of raising on syntax errors."""
    try:
        return parse_document(source)
    except XmlSyntaxError:
        return None
