"""Typed atomic values for query conditions.

XML carries only strings, but conditions in graphical queries compare prices,
years and names.  :func:`coerce` maps a string to the most specific of
``int`` / ``float`` / ``bool`` / ``str`` and :func:`compare` implements the
comparison semantics used by both query engines: numeric when both sides
coerce to numbers, lexicographic otherwise.  Incomparable pairs (e.g. a
number against a non-numeric string with an ordering operator) raise
:class:`TypeError` so the condition evaluator can treat them as *false*
matches rather than crashes.
"""

from __future__ import annotations

import math
from typing import Union

__all__ = ["Atomic", "coerce", "compare", "equal_atoms"]

Atomic = Union[int, float, bool, str]

_TRUE_WORDS = {"true", "yes"}
_FALSE_WORDS = {"false", "no"}


def coerce(value: Atomic) -> Atomic:
    """Map a raw value to its most specific atomic type.

    Strings that read as integers become ``int``; decimal/scientific forms
    become ``float``; ``true/false/yes/no`` (case-insensitive) become
    ``bool``; everything else stays a (stripped) string.
    """
    if isinstance(value, bool) or not isinstance(value, str):
        return value
    text = value.strip()
    lowered = text.lower()
    if lowered in _TRUE_WORDS:
        return True
    if lowered in _FALSE_WORDS:
        return False
    # Numeric literals must start with a digit, sign or dot; anything else
    # can stay a string without paying for two raised ValueErrors (raised
    # exceptions are ~µs each, and identifier-like values hit both).  The
    # letter-leading forms float() *would* accept ("inf", "nan") are
    # non-finite and fall back to the string anyway.
    if not text or text[0] not in "+-.0123456789":
        return text
    try:
        return int(text)
    except ValueError:
        pass
    try:
        number = float(text)
    except ValueError:
        return text
    # "NaN"/"inf" stay strings: query comparisons need total ordering.
    return number if math.isfinite(number) else text


def _as_number(value: Atomic) -> Union[int, float, None]:
    coerced = coerce(value)
    if isinstance(coerced, bool):
        return int(coerced)
    if isinstance(coerced, (int, float)):
        return coerced
    return None


def equal_atoms(left: Atomic, right: Atomic) -> bool:
    """Equality with numeric coercion: ``"007" == 7`` but ``"abc" != 7``."""
    ln, rn = _as_number(left), _as_number(right)
    if ln is not None and rn is not None:
        return ln == rn
    return str(coerce(left)) == str(coerce(right))


def compare(left: Atomic, right: Atomic) -> int:
    """Three-way comparison: -1, 0 or +1.

    Numeric when both sides are numbers; lexicographic when both are
    non-numeric strings; raises :class:`TypeError` for mixed pairs, which the
    condition evaluator interprets as "condition not satisfied".
    """
    ln, rn = _as_number(left), _as_number(right)
    if ln is not None and rn is not None:
        return (ln > rn) - (ln < rn)
    if ln is None and rn is None:
        ls, rs = str(coerce(left)), str(coerce(right))
        return (ls > rs) - (ls < rs)
    raise TypeError(f"cannot order {left!r} against {right!r}")
