"""Constrained subgraph matching.

Both graphical languages reduce to *graph pattern matching*: find all
mappings of a small pattern graph into a large data graph that preserve
labels and edges.  This module implements a backtracking matcher with

* candidate pre-filtering by node compatibility (label / value hooks),
* most-constrained-first variable ordering (fewest candidates, preferring
  nodes adjacent to already-matched ones),
* optional injectivity (isomorphic embeddings vs. plain homomorphisms),
* support for *regular path* pattern edges that match any non-empty
  directed path in the data graph (WG-Log's dashed edges).

The matcher works on :class:`~repro.graph.labeled_graph.LabeledGraph`
pattern/data pairs; XML documents are matched by a specialised tree matcher
in :mod:`repro.xmlgl.matcher` that shares the same ordering ideas.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from itertools import product
from typing import Callable, Hashable, Iterator, Optional

from ..engine.narrowing import intersect_pools
from ..engine.pipeline import connected_components, evaluate_forest, is_forest, relation_for
from ..engine.planner import choose_fragment_engine
from ..engine.stats import EvalStats
from ..engine.trace import span as trace_span
from ..errors import BudgetExceeded
from .labeled_graph import Edge, LabeledGraph
from .traversal import reachable_by_labels

__all__ = [
    "PatternEdgeKind",
    "MatchSpec",
    "find_homomorphisms",
    "find_homomorphisms_setwise",
    "count_homomorphisms",
]

NodeId = Hashable
NodeCompat = Callable[[NodeId, NodeId], bool]


class PatternEdgeKind:
    """Edge-matching modes, chosen per pattern-edge label prefix.

    * DIRECT — the pattern edge must map to one data edge with equal label.
    * PATH — the pattern edge matches any non-empty directed path; declared
      by :attr:`MatchSpec.path_edges`.  A path edge with a non-empty label
      only traverses data edges carrying that label (GraphLog's ``label*``);
      an empty label traverses any edge.
    """

    DIRECT = "direct"
    PATH = "path"


@dataclass
class MatchSpec:
    """Configuration of one matching run.

    Attributes:
        injective: require distinct pattern nodes to map to distinct data
            nodes (embedding) instead of allowing collapses (homomorphism).
        narrow: derive candidate pools from assigned neighbours' adjacency
            (on by default; disable for the EXT-A1 ablation baseline).
        node_compat: predicate deciding whether a pattern node may map to a
            data node.  Defaults to equal labels, with pattern label ``"*"``
            acting as a wildcard, and equal values whenever the pattern node
            carries a non-``None`` value.
        path_edges: set of pattern :class:`Edge` objects to be matched as
            arbitrary-length directed paths rather than single edges.
        negated_edges: pattern edges that must **not** have a counterpart in
            the data graph (crossed-out edges in WG-Log / XML-GL).  Both
            endpoints must also occur in positive pattern structure.
    """

    injective: bool = True
    node_compat: Optional[NodeCompat] = None
    path_edges: set[Edge] = field(default_factory=set)
    negated_edges: set[Edge] = field(default_factory=set)
    narrow: bool = True


def _default_compat(pattern: LabeledGraph, data: LabeledGraph) -> NodeCompat:
    def compat(pnode: NodeId, dnode: NodeId) -> bool:
        pdata = pattern.node(pnode)
        ddata = data.node(dnode)
        if pdata.label != "*" and pdata.label != ddata.label:
            return False
        if pdata.value is not None and pdata.value != ddata.value:
            return False
        return True

    return compat


def find_homomorphisms(
    pattern: LabeledGraph,
    data: LabeledGraph,
    spec: Optional[MatchSpec] = None,
    stats: Optional[EvalStats] = None,
) -> Iterator[dict[NodeId, NodeId]]:
    """Yield every mapping of ``pattern`` into ``data`` satisfying ``spec``.

    Mappings are dicts from pattern node ids to data node ids.  The empty
    pattern yields exactly one empty mapping.  ``stats`` is optional and
    only consulted for governance: when it carries an armed budget
    (``stats.budget``), each candidate tried charges one work unit, so
    deadlines and work caps interrupt the search cooperatively.
    """
    spec = spec or MatchSpec()
    budget = None if stats is None else stats.budget
    compat = spec.node_compat or _default_compat(pattern, data)
    positive_edges = [
        e for e in pattern.edges() if e not in spec.negated_edges
    ]
    pattern_nodes = list(pattern.nodes())
    if not pattern_nodes:
        yield {}
        return

    # Candidate lists per pattern node (pre-filtered by compatibility).
    candidates: dict[NodeId, list[NodeId]] = {}
    candidate_sets: dict[NodeId, set[NodeId]] = {}
    for pnode in pattern_nodes:
        cands = [dnode for dnode in data.nodes() if compat(pnode, dnode)]
        if budget is not None:
            budget.charge(max(1, len(cands)))
        if not cands:
            return
        candidates[pnode] = cands
        candidate_sets[pnode] = set(cands)

    order = _variable_order(pattern_nodes, candidates, positive_edges)
    # Index positive edges by endpoint for incremental checking.
    edges_by_node: dict[NodeId, list[Edge]] = {p: [] for p in pattern_nodes}
    for edge in positive_edges:
        edges_by_node[edge.source].append(edge)
        edges_by_node[edge.target].append(edge)

    reach_cache: dict[tuple, set[NodeId]] = {}

    def reaches(src: NodeId, dst: NodeId, label: str) -> bool:
        # reachable_by_labels excludes the start unless it lies on a cycle,
        # which is exactly the non-empty-path semantics we need.
        key = (src, label)
        if key not in reach_cache:
            reach_cache[key] = reachable_by_labels(
                data, src, edge_label=label or None
            )
        return dst in reach_cache[key]

    assignment: dict[NodeId, NodeId] = {}
    used: set[NodeId] = set()

    def edge_ok(edge: Edge) -> bool:
        src = assignment.get(edge.source)
        dst = assignment.get(edge.target)
        if src is None or dst is None:
            return True  # checked when the other endpoint is assigned
        if edge in spec.path_edges:
            return reaches(src, dst, edge.label)
        return data.has_edge(src, dst, edge.label)

    def negations_ok() -> bool:
        for edge in spec.negated_edges:
            src = assignment.get(edge.source)
            dst = assignment.get(edge.target)
            if src is None or dst is None:
                continue
            if edge in spec.path_edges:
                if reaches(src, dst, edge.label):
                    return False
            elif data.has_edge(src, dst, edge.label):
                return False
        return True

    def candidates_for(pnode: NodeId) -> list[NodeId]:
        """Narrow candidates via already-assigned direct-edge neighbours."""
        if not spec.narrow:
            return candidates[pnode]
        pools: list[list[NodeId]] = []
        for edge in edges_by_node[pnode]:
            if edge in spec.path_edges:
                continue  # path edges do not narrow (checked by edge_ok)
            if edge.source == pnode and edge.target in assignment:
                pools.append(data.predecessors(assignment[edge.target], edge.label))
            elif edge.target == pnode and edge.source in assignment:
                pools.append(data.successors(assignment[edge.source], edge.label))
        if not pools:
            return candidates[pnode]
        return intersect_pools(
            pools, allowed=candidate_sets[pnode], smallest_base=True
        )

    def backtrack(index: int) -> Iterator[dict[NodeId, NodeId]]:
        if index == len(order):
            yield dict(assignment)
            return
        pnode = order[index]
        for dnode in candidates_for(pnode):
            if budget is not None:
                budget.charge()
            if spec.injective and dnode in used:
                continue
            assignment[pnode] = dnode
            used.add(dnode)
            if all(edge_ok(e) for e in edges_by_node[pnode]) and negations_ok():
                yield from backtrack(index + 1)
            used.discard(dnode)
            del assignment[pnode]

    yield from backtrack(0)


def find_homomorphisms_setwise(
    pattern: LabeledGraph,
    data: LabeledGraph,
    spec: Optional[MatchSpec] = None,
    stats: Optional[EvalStats] = None,
    adaptive: bool = False,
) -> Iterator[dict[NodeId, NodeId]]:
    """Set-at-a-time counterpart of :func:`find_homomorphisms`.

    Pattern components whose direct-edge skeleton is a forest are compiled
    to candidate pools plus edge relations and evaluated through
    :func:`repro.engine.pipeline.evaluate_forest` (semi-join reduction,
    then hash joins).  Components the pipeline cannot cover — cyclic
    skeletons, path edges, negated edges — and injective runs (a global
    constraint no per-component plan can honour) fall back to the
    backtracking matcher; fallbacks are tallied in
    ``stats.pipeline_fallbacks``.  Yields the same mappings as
    :func:`find_homomorphisms`, though possibly in a different order.

    With ``adaptive=True`` each coverable component is additionally
    cost-compared (:func:`repro.engine.planner.choose_fragment_engine`)
    using data-graph label counts as pool estimates and per-label edge
    counts as pair upper bounds; components the walk estimates cheaper
    node-at-a-time run on the backtracking matcher (trace decision
    ``backtracking`` / reason ``cost``).
    """
    spec = spec or MatchSpec()
    stats = stats if stats is not None else EvalStats()
    pattern_nodes = list(pattern.nodes())
    if not pattern_nodes:
        yield {}
        return
    if spec.injective:
        stats.pipeline_fallbacks += 1
        stats.bump("fallback_injective")
        with trace_span(
            stats.trace,
            "match.fragment",
            variables=[str(p) for p in pattern_nodes],
            decision="fallback",
            reason="injective",
        ):
            yield from find_homomorphisms(pattern, data, spec, stats=stats)
        return

    compat = spec.node_compat or _default_compat(pattern, data)
    all_edges = list(pattern.edges())
    components = connected_components(
        pattern_nodes, [(e.source, e.target) for e in all_edges]
    )
    label_counts: Optional[Counter] = None
    edge_label_counts: Optional[Counter] = None
    if adaptive:
        label_counts = Counter(data.node(d).label for d in data.nodes())
        edge_label_counts = Counter(e.label for e in data.edges())
    per_component: list[list[dict[NodeId, NodeId]]] = []
    for component in components:
        nodes = [p for p in pattern_nodes if p in component]
        edges = [e for e in all_edges if e.source in component]
        fallback_reason = _setwise_fallback_reason(component, edges, spec)
        decision = "pipeline" if fallback_reason is None else "fallback"
        costs = None
        if adaptive and fallback_reason is None:
            assert label_counts is not None and edge_label_counts is not None
            total = sum(label_counts.values())
            pool_sizes = {
                p: (
                    total
                    if pattern.node(p).label == "*"
                    else label_counts.get(pattern.node(p).label, 0)
                )
                for p in nodes
            }
            costs = choose_fragment_engine(
                pool_sizes,
                [
                    (e.source, e.target, float(edge_label_counts.get(e.label, 0)))
                    for e in edges
                ],
                enabled=spec.narrow,
            )
            if costs.engine == "backtracking":
                decision = "backtracking"
        with trace_span(
            stats.trace,
            "match.fragment",
            variables=[str(p) for p in nodes],
            decision=decision,
            reason="cost" if decision == "backtracking" else fallback_reason,
        ) as fragment_span:
            if fragment_span is not None and costs is not None:
                fragment_span["est_pipeline"] = round(costs.pipeline, 1)
                fragment_span["est_backtracking"] = round(costs.backtracking, 1)
            subspec = MatchSpec(
                injective=False,
                node_compat=compat,
                path_edges={
                    e for e in spec.path_edges if e.source in component
                },
                negated_edges={
                    e for e in spec.negated_edges if e.source in component
                },
                narrow=spec.narrow,
            )
            if decision == "backtracking":
                stats.bump("adaptive_backtracking")
                rows = [
                    dict(m)
                    for m in find_homomorphisms(
                        pattern.subgraph(nodes), data, subspec, stats=stats
                    )
                ]
            elif fallback_reason is None:
                if adaptive:
                    stats.bump("adaptive_pipeline")
                stats.pipeline_fragments += 1
                rows_before = 0 if stats.budget is None else stats.budget.rows
                try:
                    rows = _setwise_component(nodes, edges, data, compat, stats)
                except BudgetExceeded as exc:
                    if exc.limit != "max_hashjoin_rows":
                        raise
                    # Degradation ladder: the component's materialised
                    # relations blew the row cap — refund the discarded
                    # rows and re-run it node-at-a-time (bounded memory).
                    stats.pipeline_fallbacks += 1
                    stats.bump("fallback_budget")
                    stats.bump("degraded_fragments")
                    if stats.budget is not None:
                        stats.budget.rows = rows_before
                    if fragment_span is not None:
                        fragment_span["decision"] = "fallback"
                        fragment_span["reason"] = "budget"
                    if stats.trace is not None:
                        stats.trace.event(
                            "degraded",
                            reason="budget",
                            variables=[str(p) for p in nodes],
                        )
                    rows = [
                        dict(m)
                        for m in find_homomorphisms(
                            pattern.subgraph(nodes), data, subspec, stats=stats
                        )
                    ]
            else:
                stats.pipeline_fallbacks += 1
                stats.bump(f"fallback_{fallback_reason}")
                rows = [
                    dict(m)
                    for m in find_homomorphisms(
                        pattern.subgraph(nodes), data, subspec, stats=stats
                    )
                ]
            if fragment_span is not None:
                fragment_span["rows"] = len(rows)
        if not rows:
            return
        per_component.append(rows)
    for combo in product(*per_component):
        merged: dict[NodeId, NodeId] = {}
        for part in combo:
            merged.update(part)
        yield merged


def _setwise_fallback_reason(
    component: set[NodeId], edges: list[Edge], spec: MatchSpec
) -> Optional[str]:
    """Why one component cannot run on the pipeline (``None`` = it can).

    Reason strings are stable identifiers shared with EXPLAIN output and
    the ``fallback_<reason>`` counters.
    """
    if any(e in spec.path_edges for e in edges):
        return "path-edge"
    if any(e in spec.negated_edges for e in edges):
        return "negated"
    if not is_forest(component, [(e.source, e.target) for e in edges]):
        return "cyclic"
    return None


def _setwise_key(candidate: NodeId) -> NodeId:
    return candidate  # graph node ids are their own identity


def _setwise_component(
    nodes: list[NodeId],
    edges: list[Edge],
    data: LabeledGraph,
    compat: NodeCompat,
    stats: EvalStats,
) -> list[dict[NodeId, NodeId]]:
    """Pools + edge relations + forest evaluation for one component."""
    pools: dict[NodeId, list[NodeId]] = {}
    pool_sets: dict[NodeId, set[NodeId]] = {}
    for pnode in nodes:
        pool = [dnode for dnode in data.nodes() if compat(pnode, dnode)]
        if stats.budget is not None:
            stats.budget.charge(max(1, len(pool)))
        if not pool:
            return []
        pools[pnode] = pool
        pool_sets[pnode] = set(pool)
    relations = []
    for edge in edges:
        # enumerate from the smaller side's adjacency, deduplicating
        # parallel data edges (the relation is a set of pairs)
        pairs: list[tuple[NodeId, NodeId]] = []
        seen: set[tuple[NodeId, NodeId]] = set()
        if len(pools[edge.source]) <= len(pools[edge.target]):
            target_set = pool_sets[edge.target]
            for source in pools[edge.source]:
                for target in data.successors(source, edge.label):
                    if target in target_set and (source, target) not in seen:
                        seen.add((source, target))
                        pairs.append((source, target))
        else:
            source_set = pool_sets[edge.source]
            for target in pools[edge.target]:
                for source in data.predecessors(target, edge.label):
                    if source in source_set and (source, target) not in seen:
                        seen.add((source, target))
                        pairs.append((source, target))
        relation = relation_for(
            edge.source, edge.target, pairs, stats, key=_setwise_key
        )
        if not relation.pairs:
            return []
        relations.append(relation)
    return list(evaluate_forest(pools, relations, stats))


def count_homomorphisms(
    pattern: LabeledGraph,
    data: LabeledGraph,
    spec: Optional[MatchSpec] = None,
) -> int:
    """Number of matches (convenience wrapper)."""
    return sum(1 for _ in find_homomorphisms(pattern, data, spec))


def _variable_order(
    pattern_nodes: list[NodeId],
    candidates: dict[NodeId, list[NodeId]],
    edges: list[Edge],
) -> list[NodeId]:
    """Most-constrained-first ordering that keeps the frontier connected.

    Start with the node owning the fewest candidates; repeatedly pick the
    unordered node with the most already-ordered neighbours, tie-broken by
    candidate count.  Connected frontiers let ``edge_ok`` prune early.
    """
    neighbours: dict[NodeId, set[NodeId]] = {p: set() for p in pattern_nodes}
    for edge in edges:
        neighbours[edge.source].add(edge.target)
        neighbours[edge.target].add(edge.source)

    remaining = set(pattern_nodes)
    order: list[NodeId] = []
    while remaining:
        ordered = set(order)
        best = min(
            remaining,
            key=lambda p: (
                -len(neighbours[p] & ordered),
                len(candidates[p]),
            ),
        )
        order.append(best)
        remaining.discard(best)
    return order
