"""Generic graph substrate: labelled multigraphs, traversal, matching."""

from .labeled_graph import Edge, LabeledGraph, NodeData
from .matching import (
    MatchSpec,
    count_homomorphisms,
    find_homomorphisms,
    find_homomorphisms_setwise,
)
from .traversal import (
    bfs_order,
    dfs_order,
    has_cycle,
    reachable,
    reachable_by_labels,
    shortest_path,
    topological_order,
    weakly_connected_components,
)

__all__ = [
    "LabeledGraph", "NodeData", "Edge",
    "MatchSpec", "find_homomorphisms", "find_homomorphisms_setwise",
    "count_homomorphisms",
    "bfs_order", "dfs_order", "reachable", "reachable_by_labels",
    "has_cycle", "topological_order", "weakly_connected_components",
    "shortest_path",
]
