"""Directed labelled multigraph.

This is the graph substrate shared by the WG-Log data model (instances and
schemas are labelled graphs) and by the generic pattern matcher.  The library
ships its own implementation rather than depending on networkx so the
matching hot path stays free of third-party indirection; networkx is used
only as a test oracle.

Nodes are identified by caller-chosen hashable ids and carry a *label* (the
entity/type name) plus an optional atomic *value* (WG-Log prints atomic
slots inside the node).  Edges are labelled and parallel edges with
different labels are allowed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Optional

__all__ = ["NodeData", "Edge", "LabeledGraph"]

NodeId = Hashable


@dataclass(frozen=True)
class NodeData:
    """Payload of one node: its label and optional atomic value."""

    label: str
    value: Optional[object] = None


@dataclass(frozen=True)
class Edge:
    """One directed labelled edge."""

    source: NodeId
    target: NodeId
    label: str


class LabeledGraph:
    """A directed multigraph with labelled nodes and edges."""

    def __init__(self) -> None:
        self._nodes: dict[NodeId, NodeData] = {}
        self._out: dict[NodeId, list[Edge]] = {}
        self._in: dict[NodeId, list[Edge]] = {}
        self._edge_set: set[Edge] = set()

    # -- construction ---------------------------------------------------------

    def add_node(
        self, node_id: NodeId, label: str, value: Optional[object] = None
    ) -> NodeId:
        """Add (or relabel) a node; returns its id."""
        self._nodes[node_id] = NodeData(label, value)
        self._out.setdefault(node_id, [])
        self._in.setdefault(node_id, [])
        return node_id

    def add_edge(self, source: NodeId, target: NodeId, label: str = "") -> Edge:
        """Add a directed edge; both endpoints must exist.

        Duplicate (source, target, label) triples are idempotent — the graph
        is a set of labelled edges.
        """
        if source not in self._nodes:
            raise KeyError(f"unknown source node {source!r}")
        if target not in self._nodes:
            raise KeyError(f"unknown target node {target!r}")
        edge = Edge(source, target, label)
        if edge not in self._edge_set:
            self._edge_set.add(edge)
            self._out[source].append(edge)
            self._in[target].append(edge)
        return edge

    def remove_edge(self, edge: Edge) -> None:
        """Remove one edge; missing edges raise ``KeyError``."""
        if edge not in self._edge_set:
            raise KeyError(f"edge not in graph: {edge}")
        self._edge_set.remove(edge)
        self._out[edge.source].remove(edge)
        self._in[edge.target].remove(edge)

    def remove_node(self, node_id: NodeId) -> None:
        """Remove a node and every incident edge."""
        if node_id not in self._nodes:
            raise KeyError(f"unknown node {node_id!r}")
        for edge in list(self._out[node_id]):
            self.remove_edge(edge)
        for edge in list(self._in[node_id]):
            self.remove_edge(edge)
        del self._nodes[node_id]
        del self._out[node_id]
        del self._in[node_id]

    # -- inspection -----------------------------------------------------------

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def nodes(self) -> Iterator[NodeId]:
        """All node ids (insertion order)."""
        return iter(self._nodes)

    def node(self, node_id: NodeId) -> NodeData:
        """Payload of ``node_id``; raises ``KeyError`` when absent."""
        return self._nodes[node_id]

    def label(self, node_id: NodeId) -> str:
        """Label of ``node_id``."""
        return self._nodes[node_id].label

    def value(self, node_id: NodeId) -> Optional[object]:
        """Atomic value of ``node_id`` (``None`` for non-leaf nodes)."""
        return self._nodes[node_id].value

    def edges(self) -> Iterator[Edge]:
        """All edges."""
        for edges in self._out.values():
            yield from edges

    def edge_count(self) -> int:
        """Number of edges."""
        return len(self._edge_set)

    def has_edge(self, source: NodeId, target: NodeId, label: str = "") -> bool:
        """True when the exact (source, target, label) edge exists."""
        return Edge(source, target, label) in self._edge_set

    def out_edges(self, node_id: NodeId, label: Optional[str] = None) -> list[Edge]:
        """Outgoing edges, optionally filtered by label."""
        edges = self._out[node_id]
        if label is None:
            return list(edges)
        return [e for e in edges if e.label == label]

    def in_edges(self, node_id: NodeId, label: Optional[str] = None) -> list[Edge]:
        """Incoming edges, optionally filtered by label."""
        edges = self._in[node_id]
        if label is None:
            return list(edges)
        return [e for e in edges if e.label == label]

    def successors(self, node_id: NodeId, label: Optional[str] = None) -> list[NodeId]:
        """Targets of outgoing edges (with duplicates for parallel edges)."""
        return [e.target for e in self.out_edges(node_id, label)]

    def predecessors(self, node_id: NodeId, label: Optional[str] = None) -> list[NodeId]:
        """Sources of incoming edges."""
        return [e.source for e in self.in_edges(node_id, label)]

    def nodes_with_label(self, label: str) -> list[NodeId]:
        """All node ids carrying ``label``."""
        return [n for n, data in self._nodes.items() if data.label == label]

    def degree(self, node_id: NodeId) -> int:
        """Total (in + out) degree."""
        return len(self._out[node_id]) + len(self._in[node_id])

    # -- bulk -----------------------------------------------------------------

    def copy(self) -> "LabeledGraph":
        """Shallow-payload deep-structure copy."""
        clone = LabeledGraph()
        for node_id, data in self._nodes.items():
            clone.add_node(node_id, data.label, data.value)
        for edge in self._edge_set:
            clone.add_edge(edge.source, edge.target, edge.label)
        return clone

    def subgraph(self, node_ids: Iterable[NodeId]) -> "LabeledGraph":
        """Induced subgraph on ``node_ids``."""
        keep = set(node_ids)
        sub = LabeledGraph()
        for node_id in keep:
            data = self._nodes[node_id]
            sub.add_node(node_id, data.label, data.value)
        for edge in self._edge_set:
            if edge.source in keep and edge.target in keep:
                sub.add_edge(edge.source, edge.target, edge.label)
        return sub

    def is_subgraph_of(self, other: "LabeledGraph") -> bool:
        """True when every node (same label/value) and edge also lies in ``other``."""
        for node_id, data in self._nodes.items():
            if node_id not in other._nodes or other._nodes[node_id] != data:
                return False
        return all(edge in other._edge_set for edge in self._edge_set)

    def __repr__(self) -> str:
        return f"LabeledGraph(nodes={len(self)}, edges={self.edge_count()})"
