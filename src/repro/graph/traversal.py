"""Traversal algorithms over :class:`~repro.graph.labeled_graph.LabeledGraph`.

These are the building blocks for deep (arbitrary-depth) query edges, for
reachability in WG-Log generative semantics, and for layout ordering in the
visual layer.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Hashable, Iterator, Optional

from .labeled_graph import LabeledGraph

__all__ = [
    "bfs_order",
    "dfs_order",
    "reachable",
    "reachable_by_labels",
    "has_cycle",
    "topological_order",
    "weakly_connected_components",
    "shortest_path",
]

NodeId = Hashable


def bfs_order(graph: LabeledGraph, start: NodeId) -> Iterator[NodeId]:
    """Breadth-first node order from ``start`` (follows edge direction)."""
    seen = {start}
    queue: deque[NodeId] = deque([start])
    while queue:
        node = queue.popleft()
        yield node
        for succ in graph.successors(node):
            if succ not in seen:
                seen.add(succ)
                queue.append(succ)


def dfs_order(graph: LabeledGraph, start: NodeId) -> Iterator[NodeId]:
    """Depth-first preorder from ``start`` (follows edge direction)."""
    seen: set[NodeId] = set()
    stack: list[NodeId] = [start]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        yield node
        # Reversed so the first successor is visited first.
        stack.extend(reversed(graph.successors(node)))


def reachable(graph: LabeledGraph, start: NodeId) -> set[NodeId]:
    """All nodes reachable from ``start`` (start included)."""
    return set(bfs_order(graph, start))


def reachable_by_labels(
    graph: LabeledGraph,
    start: NodeId,
    edge_label: Optional[str] = None,
    node_filter: Optional[Callable[[NodeId], bool]] = None,
) -> set[NodeId]:
    """Nodes reachable from ``start`` via edges with ``edge_label``.

    ``node_filter`` prunes the frontier: nodes failing it are neither
    reported nor expanded.  ``start`` itself is excluded (proper descent),
    matching the semantics of XML-GL's starred edge and WG-Log regular
    path edges.
    """
    seen: set[NodeId] = set()
    queue: deque[NodeId] = deque([start])
    while queue:
        node = queue.popleft()
        for succ in graph.successors(node, edge_label):
            if succ in seen:
                continue
            if node_filter is not None and not node_filter(succ):
                continue
            seen.add(succ)
            queue.append(succ)
    return seen


def has_cycle(graph: LabeledGraph) -> bool:
    """True when the directed graph contains a cycle."""
    WHITE, GREY, BLACK = 0, 1, 2
    colour: dict[NodeId, int] = {n: WHITE for n in graph.nodes()}
    for origin in graph.nodes():
        if colour[origin] != WHITE:
            continue
        stack: list[tuple[NodeId, Iterator[NodeId]]] = [
            (origin, iter(graph.successors(origin)))
        ]
        colour[origin] = GREY
        while stack:
            node, successors = stack[-1]
            advanced = False
            for succ in successors:
                if colour[succ] == GREY:
                    return True
                if colour[succ] == WHITE:
                    colour[succ] = GREY
                    stack.append((succ, iter(graph.successors(succ))))
                    advanced = True
                    break
            if not advanced:
                colour[node] = BLACK
                stack.pop()
    return False


def topological_order(graph: LabeledGraph) -> list[NodeId]:
    """Topological node order; raises ``ValueError`` on cyclic graphs."""
    in_degree: dict[NodeId, int] = {n: 0 for n in graph.nodes()}
    for edge in graph.edges():
        in_degree[edge.target] += 1
    queue: deque[NodeId] = deque(n for n, d in in_degree.items() if d == 0)
    order: list[NodeId] = []
    while queue:
        node = queue.popleft()
        order.append(node)
        for succ in graph.successors(node):
            in_degree[succ] -= 1
            if in_degree[succ] == 0:
                queue.append(succ)
    if len(order) != len(in_degree):
        raise ValueError("graph has a cycle; no topological order exists")
    return order


def weakly_connected_components(graph: LabeledGraph) -> list[set[NodeId]]:
    """Components ignoring edge direction, in first-seen order."""
    seen: set[NodeId] = set()
    components: list[set[NodeId]] = []
    for origin in graph.nodes():
        if origin in seen:
            continue
        component: set[NodeId] = set()
        queue: deque[NodeId] = deque([origin])
        seen.add(origin)
        while queue:
            node = queue.popleft()
            component.add(node)
            for neighbour in graph.successors(node) + graph.predecessors(node):
                if neighbour not in seen:
                    seen.add(neighbour)
                    queue.append(neighbour)
        components.append(component)
    return components


def shortest_path(
    graph: LabeledGraph, start: NodeId, goal: NodeId
) -> Optional[list[NodeId]]:
    """Shortest directed path (by hop count), or ``None``."""
    if start == goal:
        return [start]
    previous: dict[NodeId, NodeId] = {}
    seen = {start}
    queue: deque[NodeId] = deque([start])
    while queue:
        node = queue.popleft()
        for succ in graph.successors(node):
            if succ in seen:
                continue
            previous[succ] = node
            if succ == goal:
                path = [goal]
                while path[-1] != start:
                    path.append(previous[path[-1]])
                return list(reversed(path))
            seen.add(succ)
            queue.append(succ)
    return None
