"""Cross-language equivalence runner.

Executes every catalog pair over one dataset (the XML document for XML-GL,
its bridged instance graph for WG-Log) and reports, per pair, whether the
two languages produced the same canonical value.  Pairs expressible in
only one language are reported as such — those rows feed the
expressiveness table rather than the agreement check.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..ssd.model import Document
from ..wglog.bridge import document_to_instance
from ..wglog.data import InstanceGraph
from .catalog import CATALOG, PairedQuery, run_wglog_side, run_xmlgl_side

__all__ = ["ComparisonResult", "compare_pair", "compare_catalog", "report"]


@dataclass
class ComparisonResult:
    """Outcome of running one pair on one dataset."""

    pair: PairedQuery
    xmlgl_value: Optional[tuple]
    wglog_value: Optional[tuple]
    xmlgl_seconds: Optional[float]
    wglog_seconds: Optional[float]

    @property
    def comparable(self) -> bool:
        """Both sides expressible and extracted."""
        return self.xmlgl_value is not None and self.wglog_value is not None

    @property
    def agree(self) -> bool:
        """Same canonical value on both sides (False when incomparable)."""
        return self.comparable and self.xmlgl_value == self.wglog_value

    def status(self) -> str:
        """One-word row status for the report."""
        if self.agree:
            return "AGREE"
        if self.comparable:
            return "DISAGREE"
        if self.xmlgl_value is not None:
            return "XML-GL-ONLY"
        if self.wglog_value is not None:
            return "WG-LOG-ONLY"
        return "NEITHER"


def compare_pair(
    pair: PairedQuery, doc: Document, instance: InstanceGraph
) -> ComparisonResult:
    """Run one pair on a prepared document/instance pair."""
    xmlgl_value = xmlgl_seconds = None
    if pair.xmlgl_source is not None and pair.xmlgl_extract is not None:
        start = time.perf_counter()
        xmlgl_value = run_xmlgl_side(pair, doc)
        xmlgl_seconds = time.perf_counter() - start
    wglog_value = wglog_seconds = None
    if pair.wglog_source is not None and pair.wglog_extract is not None:
        start = time.perf_counter()
        wglog_value = run_wglog_side(pair, instance)
        wglog_seconds = time.perf_counter() - start
    return ComparisonResult(pair, xmlgl_value, wglog_value, xmlgl_seconds, wglog_seconds)


def compare_catalog(doc: Document) -> list[ComparisonResult]:
    """Run the whole catalog over one document (bridged once)."""
    instance, _ = document_to_instance(doc)
    return [compare_pair(pair, doc, instance) for pair in CATALOG]


def report(results: list[ComparisonResult]) -> str:
    """Human-readable comparison table."""
    lines = [
        f"{'pair':<18} {'figure':<8} {'status':<12} {'xml-gl':>9} {'wg-log':>9}",
        "-" * 60,
    ]
    for result in results:
        xg = f"{result.xmlgl_seconds * 1000:.1f}ms" if result.xmlgl_seconds else "-"
        wg = f"{result.wglog_seconds * 1000:.1f}ms" if result.wglog_seconds else "-"
        lines.append(
            f"{result.pair.id:<18} {result.pair.figure:<8} "
            f"{result.status():<12} {xg:>9} {wg:>9}"
        )
    return "\n".join(lines)
