"""The paired-query catalog: the paper's worked examples, executable.

Each :class:`PairedQuery` expresses one query class from the paper's
comparison in *both* languages over the same bibliography dataset (XML for
XML-GL; the bridged instance graph for WG-Log), together with extractor
functions that reduce each side's result to a comparable canonical value.
The equivalence runner (:mod:`repro.compare.equivalence`) executes both
sides and checks agreement — the paper's informal "these two drawings mean
the same query" claims, made testable.

A ``None`` source on one side records that the query class is *not*
expressible in that language (e.g. numeric aggregation in WG-Log), which
feeds the feature table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..ssd.model import Document, Element
from ..wglog import InstanceGraph
from ..wglog import parse_rule as parse_wg
from ..wglog.semantics import query as wg_query
from ..xmlgl import evaluate_rule
from ..xmlgl.dsl import parse_rule as parse_xg

__all__ = ["PairedQuery", "CATALOG", "run_xmlgl_side", "run_wglog_side"]


@dataclass
class PairedQuery:
    """One query class expressed in both languages.

    ``figure`` ties the entry to the experiment index in DESIGN.md.
    Extractors canonicalise results for comparison (sorted tuples).
    """

    id: str
    figure: str
    title: str
    description: str
    xmlgl_source: Optional[str]
    wglog_source: Optional[str]
    xmlgl_extract: Optional[Callable[[Element], tuple]] = None
    wglog_extract: Optional[Callable[[InstanceGraph, list], tuple]] = None


def _texts(result: Element, tag: str) -> tuple:
    """Distinct text contents of ``tag`` descendants (canonical order)."""
    return tuple(
        sorted({e.text_content() for e in result.iter(tag) if e is not result})
    )


def _slot_values(instance: InstanceGraph, bindings: list, variable: str, slot: str) -> tuple:
    return tuple(sorted({
        str(instance.slot_value(b[variable], slot)) for b in bindings
    }))


CATALOG: list[PairedQuery] = [
    PairedQuery(
        id="q1-selection",
        figure="FIG-Q1",
        title="Selection / projection",
        description="All book titles.",
        xmlgl_source="""
            query { book as B { title as T } }
            construct { result { collect T } }
        """,
        wglog_source="""
            rule q1 { match { b: book  t: title  b -child-> t } }
        """,
        xmlgl_extract=lambda result: _texts(result, "title"),
        wglog_extract=lambda inst, bindings: _slot_values(inst, bindings, "t", "text"),
    ),
    PairedQuery(
        id="q2-condition",
        figure="FIG-Q2",
        title="Predicate on attributes",
        description="Titles of books published in or after 1995.",
        xmlgl_source="""
            query { book as B { @year as Y  title as T } where Y >= 1995 }
            construct { result { collect T } }
        """,
        wglog_source="""
            rule q2 { match { b: book  t: title  b -child-> t } where b.year >= 1995 }
        """,
        xmlgl_extract=lambda result: _texts(result, "title"),
        wglog_extract=lambda inst, bindings: _slot_values(inst, bindings, "t", "text"),
    ),
    PairedQuery(
        id="q3-join",
        figure="FIG-Q3",
        title="Join (citations)",
        description="Titles of entries cited by a book (IDREF join).",
        xmlgl_source="""
            query {
              book as B
              * as C { title as T }
              where B.cites = C.id
            }
            construct { result { collect T } }
        """,
        wglog_source="""
            rule q3 { match { b: book  c: *  t: title  b -cites-> c  c -child-> t } }
        """,
        xmlgl_extract=lambda result: _texts(result, "title"),
        wglog_extract=lambda inst, bindings: _slot_values(inst, bindings, "t", "text"),
    ),
    PairedQuery(
        id="q4-deep",
        figure="FIG-Q4",
        title="Arbitrary-depth descent",
        description="All author last names anywhere below the root.",
        xmlgl_source="""
            query { root bib as R { deep last as L } }
            construct { result { collect L } }
        """,
        wglog_source="""
            rule q4 { match { r: bib  l: last  r -child*-> l } }
        """,
        xmlgl_extract=lambda result: _texts(result, "last"),
        wglog_extract=lambda inst, bindings: _slot_values(inst, bindings, "l", "text"),
    ),
    PairedQuery(
        id="q5-negation",
        figure="FIG-Q5",
        title="Negation",
        description="Years of books without a publisher.",
        xmlgl_source="""
            query { book as B { @year as Y  not publisher as P } }
            construct { result { years for B { value Y } } }
        """,
        wglog_source="""
            rule q5 {
              match { b: book  p: publisher  no b -child-> p }
              where b.year > 0
            }
        """,
        xmlgl_extract=lambda result: tuple(
            sorted(e.text_content() for e in result.find_all("years"))
        ),
        wglog_extract=lambda inst, bindings: tuple(
            sorted(str(inst.slot_value(b["b"], "year")) for b in bindings)
        ),
    ),
    PairedQuery(
        id="q6-aggregation",
        figure="FIG-Q6",
        title="Aggregation",
        description="Count of books and their average price.",
        xmlgl_source="""
            query { book as B { price as P { text as PT } } }
            construct { result { n { count(B) } avg { avg(PT) } } }
        """,
        wglog_source=None,  # WG-Log has the collector but no numeric aggregates
        xmlgl_extract=lambda result: (
            result.find("n").text_content(),
            result.find("avg").text_content(),
        ),
    ),
    PairedQuery(
        id="q7-restructuring",
        figure="FIG-Q7",
        title="Restructuring (nest by year)",
        description="Books regrouped under their publication year.",
        xmlgl_source="""
            query { book as B { @year as Y  title as T } }
            construct {
              result { year for Y sortby Y { value Y  entries { collect T } } }
            }
        """,
        wglog_source="""
            rule q7 {
              match { b: book }
              construct {
                g: YearGroup
                g -groups-> b
                g.year = b.year
              }
            }
        """,
        xmlgl_extract=lambda result: tuple(
            (y.immediate_text(), len(y.find_all("entries")[0].find_all("title")))
            for y in result.find_all("year")
        ),
        # WG-Log derives one YearGroup per book (no grouping): compare the
        # set of (year, 1) facts instead — recorded as PARTIAL in TAB-1.
        wglog_extract=None,
    ),
    PairedQuery(
        id="q8-recursion",
        figure="FIG-Q9",
        title="Recursive reachability",
        description="Entries transitively cited by the first book.",
        xmlgl_source=None,  # not expressible: XML-GL lacks recursion
        wglog_source="""
            rule q8 { match { a: *  b: *  a -cites*-> b } where a.id = 'e0' }
        """,
        wglog_extract=lambda inst, bindings: tuple(
            sorted(str(inst.slot_value(b["b"], "id")) for b in bindings)
        ),
    ),
]


def run_xmlgl_side(pair: PairedQuery, doc: Document) -> Optional[tuple]:
    """Execute the XML-GL side; ``None`` when inexpressible."""
    if pair.xmlgl_source is None or pair.xmlgl_extract is None:
        return None
    rule = parse_xg(pair.xmlgl_source)
    return pair.xmlgl_extract(evaluate_rule(rule, doc))


def run_wglog_side(pair: PairedQuery, instance: InstanceGraph) -> Optional[tuple]:
    """Execute the WG-Log side; ``None`` when inexpressible."""
    if pair.wglog_source is None or pair.wglog_extract is None:
        return None
    rule = parse_wg(pair.wglog_source)
    bindings = list(wg_query(rule, instance))
    return pair.wglog_extract(instance, bindings)
