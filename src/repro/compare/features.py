"""The expressiveness comparison table (TAB-1), computed.

The paper compares XML-GL and WG-Log qualitatively; this module makes the
comparison *executable*: every cell of the feature matrix is backed by a
demo — a tiny query run against a tiny dataset with the expected outcome
asserted.  A cell is

* ``✓`` (SUPPORTED) when the language's demo runs and produces the
  expected result,
* ``~`` (PARTIAL) when a neighbouring mechanism approximates the feature
  (the note says how),
* ``✗`` (UNSUPPORTED) when the language has no construct for it.

If an engine change breaks a feature, the table changes — the comparison
cannot silently drift from the implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Optional

from ..ssd.parser import parse_document
from ..wglog import InstanceGraph, apply_rule
from ..wglog import parse_rule as parse_wg
from ..wglog.schema import SlotDecl, WGSchema
from ..wglog.matcher import check_against_schema
from ..wglog.semantics import query as wg_query
from ..xmlgl import evaluate_rule
from ..xmlgl.dsl import parse_rule as parse_xg
from ..xmlgl.schema import SchemaGraph

__all__ = ["Support", "Feature", "FEATURES", "feature_matrix", "render_matrix"]


class Support(Enum):
    """One cell of the matrix."""

    SUPPORTED = "✓"
    PARTIAL = "~"
    UNSUPPORTED = "✗"


@dataclass
class Feature:
    """One comparison row.

    ``xmlgl_demo`` / ``wglog_demo`` return True when the feature works;
    ``None`` means unsupported; a demo plus ``*_partial=True`` renders
    as ``~``.
    """

    id: str
    title: str
    xmlgl_demo: Optional[Callable[[], bool]]
    wglog_demo: Optional[Callable[[], bool]]
    xmlgl_partial: bool = False
    wglog_partial: bool = False
    note: str = ""


# -- tiny fixtures ----------------------------------------------------------

def _doc():
    return parse_document(
        '<bib><book year="1999" id="b1"><title>Alpha</title>'
        '<author><last>One</last></author></book>'
        '<book year="1990" id="b2" cites="b1"><title>Beta</title></book></bib>'
    )


def _graph() -> InstanceGraph:
    inst = InstanceGraph()
    a = inst.add_entity("Doc", "a")
    b = inst.add_entity("Doc", "b")
    c = inst.add_entity("Doc", "c")
    inst.relate(a, b, "link")
    inst.relate(b, c, "link")
    inst.add_slot(a, "size", 5)
    inst.add_slot(b, "size", 50)
    return inst


# -- demos -------------------------------------------------------------------

def _xg_runs(source: str, expected_contains: str) -> bool:
    from ..ssd.serializer import serialize

    result = evaluate_rule(parse_xg(source), _doc())
    return expected_contains in serialize(result)


def _xg_schema_free() -> bool:
    return _xg_runs(
        "query { book as B { title as T } } construct { r { collect T } }",
        "Alpha",
    )


def _wg_schema_checked() -> bool:
    schema = WGSchema().entity("Doc", SlotDecl("size", "int"))
    schema.relation("Doc", "link", "Doc")
    rule = parse_wg("rule r { match { a: Doc  b: Doc  a -link-> b } }")
    check_against_schema(rule, schema)  # raises on mismatch
    return len(wg_query(rule, _graph(), schema=schema)) == 2


def _xg_ordered() -> bool:
    source = (
        "query { author as A { ord last as L  ord first as F } }"
        " construct { r { collect A } }"
    )
    doc = parse_document(
        "<bib><author><last>L</last><first>F</first></author></bib>"
    )
    result = evaluate_rule(parse_xg(source), doc)
    forward = len(result.find_all("author")) == 1
    swapped = evaluate_rule(
        parse_xg(
            "query { author as A { ord first as F  ord last as L } }"
            " construct { r { collect A } }"
        ),
        doc,
    )
    return forward and len(swapped.find_all("author")) == 0


def _xg_deep() -> bool:
    return _xg_runs(
        "query { root bib as R { deep last as L } } construct { r { collect L } }",
        "One",
    )


def _wg_path() -> bool:
    rule = parse_wg("rule r { match { a: Doc  c: Doc  a -link*-> c } }")
    pairs = {(m["a"], m["c"]) for m in wg_query(rule, _graph())}
    return ("a", "c") in pairs


def _xg_negation() -> bool:
    return _xg_runs(
        "query { book as B { not author as A  @id as I } }"
        " construct { r { hit for B { value I } } }",
        "b2",
    )


def _wg_negation() -> bool:
    # documents with no outgoing link at all (∀-negation): only 'c'
    rule = parse_wg(
        "rule r { match { d: Doc  t: Doc  no d -link-> t } where name(d) = 'Doc' }"
    )
    return {m["d"] for m in wg_query(rule, _graph())} == {"c"}


def _xg_join() -> bool:
    return _xg_runs(
        """
        query { book as B  * as C { title as T } where B.cites = C.id }
        construct { r { collect T } }
        """,
        "Alpha",
    )


def _wg_join() -> bool:
    rule = parse_wg(
        "rule r { match { a: Doc  b: Doc  c: Doc  a -link-> b  b -link-> c } }"
    )
    return len(wg_query(rule, _graph())) == 1


def _xg_aggregation() -> bool:
    return _xg_runs(
        "query { book as B } construct { r { count(B) } }", ">2<"
    )


def _wg_collector() -> bool:
    inst = _graph()
    rule = parse_wg(
        "rule r { match { d: Doc } construct { l: List collect  l -m-> d } }"
    )
    apply_rule(inst, rule)
    lists = inst.entities("List")
    return len(lists) == 1 and len(inst.relationships(lists[0], "m")) == 3


def _xg_grouping() -> bool:
    return _xg_runs(
        "query { book as B { @year as Y } }"
        " construct { r { group Y { g { value Y } } } }",
        "<g>",
    )


def _xg_restructuring() -> bool:
    return _xg_runs(
        "query { book as B { title as T  @year as Y } }"
        " construct { r { entry for B { value Y  copy T } } }",
        "<entry>",
    )


def _wg_derivation() -> bool:
    inst = _graph()
    rule = parse_wg(
        "rule r { match { a: Doc  b: Doc  a -link-> b } construct { b -rev-> a } }"
    )
    apply_rule(inst, rule)
    return inst.has_relationship("b", "a", "rev")


def _wg_recursion() -> bool:
    inst = _graph()
    rules = [
        parse_wg(
            "rule base { match { x: Doc  y: Doc  x -link-> y } construct { x -reach-> y } }"
        ),
        parse_wg(
            "rule step { match { x: Doc  y: Doc  z: Doc  x -reach-> y  y -link-> z }"
            " construct { x -reach-> z } }"
        ),
    ]
    from ..wglog import apply_program

    apply_program(inst, rules)
    return inst.has_relationship("a", "c", "reach")


def _wg_views() -> bool:
    inst = _graph()
    rule = parse_wg(
        "rule big { match { d: Doc } construct { d.big = 'yes' } where d.size > 10 }"
    )
    apply_rule(inst, rule)
    return inst.slot_value("b", "big") == "yes" and inst.slot_value("a", "big") is None


def _xg_schema_definition() -> bool:
    schema = SchemaGraph(root="bib")
    schema.add_element("bib")
    schema.add_element("book")
    schema.contain("bib", "book", min=0, max=None)
    schema.add_attribute("book", "year", required=True)
    bad = parse_document("<bib><book/></bib>")
    return bool(schema.validate(bad))


def _wg_schema_definition() -> bool:
    schema = WGSchema().entity("Doc", SlotDecl("size", "int"))
    schema.relation("Doc", "link", "Doc")
    return schema.conform(_graph()) == []


def _xg_multi_source() -> bool:
    from ..ssd.serializer import serialize

    source = """
        query a { book as B { title as TB } }
        query b { article as A { title as TA } }
        where TB = TA
        construct { same { collect TB } }
    """
    doc_a = parse_document("<bib><book><title>X</title></book></bib>")
    doc_b = parse_document("<bib><article><title>X</title></article></bib>")
    result = evaluate_rule(parse_xg(source), {"a": doc_a, "b": doc_b})
    return "X" in serialize(result)


def _xg_regex() -> bool:
    return _xg_runs(
        "query { title as T { text ~ /A.*/ as TT } } construct { r { collect T } }",
        "Alpha",
    )


def _wg_regex() -> bool:
    rule = parse_wg("rule r { match { d: Doc } where name(d) ~ /D.c/ }")
    return len(wg_query(rule, _graph())) == 3


FEATURES: list[Feature] = [
    Feature(
        "schema-free", "Operates without a schema",
        _xg_schema_free, None,
        note="WG-Log queries are defined against a schema",
    ),
    Feature(
        "schema-checked", "Queries validated against a schema",
        None, _wg_schema_checked,
        note="XML-GL works on schema-less XML; DTD checking is separate",
    ),
    Feature(
        "ordered", "Order-aware child matching",
        _xg_ordered, None,
        note="the ordered tick; WG-Log graphs are unordered",
    ),
    Feature(
        "deep", "Arbitrary-depth / regular-path matching",
        _xg_deep, _wg_path,
        xmlgl_partial=True,
        note="XML-GL's * arc only descends containment; WG-Log paths follow any labelled edge chain",
    ),
    Feature("negation", "Negated subpatterns", _xg_negation, _wg_negation),
    Feature("join", "Joins via shared nodes / references", _xg_join, _wg_join),
    Feature(
        "aggregation", "Numeric aggregation (COUNT/SUM/AVG)",
        _xg_aggregation, _wg_collector,
        wglog_partial=True,
        note="WG-Log's triangle collects elements but computes no numbers",
    ),
    Feature(
        "grouping", "Grouped construction (list icon)",
        _xg_grouping, None,
    ),
    Feature(
        "restructuring", "Restructuring into new documents",
        _xg_restructuring, _wg_derivation,
        wglog_partial=True,
        note="WG-Log derives graph structure in place rather than documents",
    ),
    Feature(
        "recursion", "Recursive queries (transitive closure)",
        None, _wg_recursion,
        note="the paper notes recursion is not expressible in XML-GL",
    ),
    Feature(
        "views", "Derived data materialised into the database",
        None, _wg_views,
        note="G-Log generative semantics; XML-GL emits fresh documents",
    ),
    Feature(
        "schema-definition", "Schemas expressible in the language itself",
        _xg_schema_definition, _wg_schema_definition,
    ),
    Feature(
        "multi-source", "Queries over several documents / sources",
        _xg_multi_source, None,
        note="a WG-Log database is a single graph",
    ),
    Feature("regex", "Regular-expression value constraints", _xg_regex, _wg_regex),
]


def _support(demo: Optional[Callable[[], bool]], partial: bool) -> Support:
    if demo is None:
        return Support.UNSUPPORTED
    if not demo():
        raise AssertionError("feature demo failed — table out of sync with engine")
    return Support.PARTIAL if partial else Support.SUPPORTED


def feature_matrix() -> list[tuple[Feature, Support, Support]]:
    """Run every demo and return (feature, xmlgl, wglog) rows."""
    return [
        (
            feature,
            _support(feature.xmlgl_demo, feature.xmlgl_partial),
            _support(feature.wglog_demo, feature.wglog_partial),
        )
        for feature in FEATURES
    ]


def render_matrix(rows: Optional[list[tuple[Feature, Support, Support]]] = None) -> str:
    """TAB-1 as text."""
    rows = rows if rows is not None else feature_matrix()
    lines = [
        f"{'feature':<44} {'XML-GL':^7} {'WG-Log':^7}",
        "-" * 60,
    ]
    for feature, xmlgl, wglog in rows:
        lines.append(f"{feature.title:<44} {xmlgl.value:^7} {wglog.value:^7}")
        if feature.note:
            lines.append(f"    note: {feature.note}")
    return "\n".join(lines)
