"""The executable comparison framework (the paper's contribution as code).

* :mod:`repro.compare.catalog` — the paired-query catalog (FIG-Q*);
* :mod:`repro.compare.equivalence` — run both languages, check agreement;
* :mod:`repro.compare.features` — the computed expressiveness table (TAB-1).
"""

from .catalog import CATALOG, PairedQuery, run_wglog_side, run_xmlgl_side
from .equivalence import ComparisonResult, compare_catalog, compare_pair, report
from .features import FEATURES, Feature, Support, feature_matrix, render_matrix

__all__ = [
    "CATALOG", "PairedQuery", "run_xmlgl_side", "run_wglog_side",
    "ComparisonResult", "compare_pair", "compare_catalog", "report",
    "FEATURES", "Feature", "Support", "feature_matrix", "render_matrix",
]
