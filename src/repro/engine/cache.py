"""Shared per-document :class:`DocumentIndex` cache.

The engines treat documents as frozen during evaluation, so an index built
for one query answers every later query over the same document.  Before
this cache each entry point (session, CLI, evaluator, benchmarks) kept its
own ``dict`` keyed by ``id(document)`` — or rebuilt the index per query.
They now share one process-wide cache:

    from repro.engine.cache import get_index, invalidate
    index = get_index(document)     # built once, then reused
    document.root.append(...)       # raw tree mutation invalidates...
    invalidate(document)            # ...which the caller signals explicitly

**Invalidation contract.**  Entries are keyed by a weak reference to the
document and checked by identity, so a recycled ``id()`` can never alias a
dead document.  An index holds the element tree (and through parent links
the document) alive, so entries persist until :func:`invalidate` /
:meth:`DocumentIndexCache.clear` — callers that mutate a document *by
hand* **must** invalidate it.  The typed mutation API
(:mod:`repro.engine.mutate`) is the exception and the point: it maintains
the cached index **in place** (gap-label maintenance, statistics deltas,
epoch bumps), so under churn the cache keeps serving the same entry
instead of rebuilding — use it over raw tree edits wherever possible.

**Bound.**  The cache is LRU-bounded over *document count*
(``max_documents``): inserting beyond the bound evicts the least recently
used snapshot (counted in :attr:`DocumentIndexCache.evictions`), so
many-document workloads — batch serving, large collection sweeps — no
longer grow the cache without limit.  ``max_documents=None`` restores the
unbounded behaviour for callers that manage lifetimes themselves.  Hits
and misses are tallied on the cache and, when an
:class:`~repro.engine.stats.EvalStats` is passed to :meth:`get`, surfaced
per-evaluation through ``stats.cache_hits`` / ``stats.cache_misses``.
"""

from __future__ import annotations

import os
import threading
import weakref
from typing import Optional

from .index import DocumentIndex
from .stats import EvalStats
from ..ssd.model import Document

__all__ = [
    "DEFAULT_MAX_DOCUMENTS",
    "DocumentIndexCache",
    "get_index",
    "invalidate",
    "shared_cache",
]

#: Bound of the process-wide shared cache.  Generous for interactive and
#: benchmark use while keeping many-document batch workloads from pinning
#: every document they ever touched.
DEFAULT_MAX_DOCUMENTS = 64


class DocumentIndexCache:
    """Weakref-keyed, LRU-bounded, explicitly invalidated index cache."""

    def __init__(self, max_documents: Optional[int] = DEFAULT_MAX_DOCUMENTS) -> None:
        if max_documents is not None and max_documents < 1:
            raise ValueError("max_documents must be at least 1 (or None)")
        # Insertion order doubles as recency order: hits reinsert their
        # entry, so the first key is always the least recently used.
        self._entries: dict[int, tuple[weakref.ref, DocumentIndex]] = {}
        # Indexes are shared read-only, but the LRU bookkeeping reorders
        # the dict on every hit — guard it so concurrent batch evaluation
        # (QuerySession.run_batch) can share one cache.
        self._lock = threading.Lock()
        # Dead-document removals the weakref callback could not perform
        # because the lock was busy; drained under the lock on the next
        # cache operation.  A plain list: append/pop are atomic under the
        # GIL, so the callback never needs the lock to defer.
        self._pending_drops: list[tuple[int, weakref.ref]] = []
        self.max_documents = max_documents
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(
        self, document: Document, stats: Optional[EvalStats] = None
    ) -> DocumentIndex:
        """The cached index for ``document``, building it on first use.

        Passing ``stats`` mirrors the hit/miss into that evaluation's
        ``cache_hits`` / ``cache_misses`` counters — and, when the stats
        carry a tracer, records an ``index.lookup`` span whose ``outcome``
        attribute is ``hit``, ``built`` or ``raced`` (another thread built
        the index first).
        """
        tracer = stats.trace if stats is not None else None
        if tracer is None:
            return self._lookup(document, stats)[0]
        with tracer.span("index.lookup") as span:
            index, outcome = self._lookup(document, stats)
            span["outcome"] = outcome
            span["elements"] = index.element_count()
        return index

    def _lookup(
        self, document: Document, stats: Optional[EvalStats]
    ) -> tuple[DocumentIndex, str]:
        key = id(document)
        with self._lock:
            self._flush_pending_drops()
            entry = self._entries.get(key)
            if entry is not None and entry[0]() is document:
                self._record_hit(key, stats)
                return entry[1], "hit"
            self.misses += 1
            if stats is not None:
                stats.cache_misses += 1
        # build outside the lock: indexing a large document must not stall
        # every other thread's cache hits
        index = DocumentIndex(document)
        ref = weakref.ref(document, self._make_drop_callback(key))
        with self._lock:
            self._flush_pending_drops()
            entry = self._entries.get(key)
            if entry is not None and entry[0]() is document:
                # Another thread built it first.  Count the hit and refresh
                # recency: without the refresh a concurrently-hot document
                # keeps its stale LRU position and becomes the next
                # eviction victim despite being the busiest entry.
                self._record_hit(key, stats)
                return entry[1], "raced"
            self._entries[key] = (ref, index)
            if self.max_documents is not None:
                while len(self._entries) > self.max_documents:
                    oldest = next(iter(self._entries))
                    del self._entries[oldest]
                    self.evictions += 1
        return index, "built"

    def _record_hit(self, key: int, stats: Optional[EvalStats]) -> None:
        """Tally a hit and move ``key`` to most-recently-used (lock held)."""
        self.hits += 1
        if stats is not None:
            stats.cache_hits += 1
        self._entries[key] = self._entries.pop(key)

    def _make_drop_callback(self, key: int):
        """The weakref callback dropping ``key`` once its document dies.

        ``id()`` values are recycled: after an eviction, a *new* live
        document can occupy the same key, so removal must check that the
        entry still belongs to the dying reference (``entry[0] is ref`` —
        the ref object's identity, never the recycled id).  The callback
        can fire on any thread — including re-entrantly on a thread that
        already holds ``_lock`` (a GC run inside a locked section) — so it
        only tries the lock without blocking and defers to
        ``_pending_drops`` when the lock is busy.
        """

        def _dropped(ref: weakref.ref) -> None:
            if self._lock.acquire(blocking=False):
                try:
                    self._drop_if_current(key, ref)
                finally:
                    self._lock.release()
            else:
                self._pending_drops.append((key, ref))

        return _dropped

    def _drop_if_current(self, key: int, ref: weakref.ref) -> None:
        """Remove ``key`` if it still holds ``ref``'s entry (lock held)."""
        entry = self._entries.get(key)
        if entry is not None and entry[0] is ref:
            del self._entries[key]

    def _flush_pending_drops(self) -> None:
        """Apply removals a busy lock made the callback defer (lock held)."""
        while self._pending_drops:
            key, ref = self._pending_drops.pop()
            self._drop_if_current(key, ref)

    def peek(self, document: Document) -> DocumentIndex | None:
        """The cached index, or ``None`` — never builds, never reorders."""
        entry = self._entries.get(id(document))
        if entry is not None and entry[0]() is document:
            return entry[1]
        return None

    def invalidate(self, document: Document) -> bool:
        """Drop ``document``'s entry (after mutation); True if one existed."""
        with self._lock:
            self._flush_pending_drops()
            return self._entries.pop(id(document), None) is not None

    def clear(self) -> None:
        """Drop every entry."""
        with self._lock:
            del self._pending_drops[:]
            self._entries.clear()

    def _reset_after_fork(self) -> None:
        """Reinitialise in a forked child: fresh lock, no inherited entries.

        A fork can happen while another thread holds ``_lock`` — the child
        inherits a lock that will never be released — and the inherited
        entries point at parent-built indexes the child never asked for.
        The child starts from a pristine cache (counters included), which
        is also what the sharded executor's workers assert
        (:mod:`repro.engine.shard`).
        """
        self._lock = threading.Lock()
        self._entries = {}
        self._pending_drops = []
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, document: object) -> bool:
        return isinstance(document, Document) and self.peek(document) is not None


#: Process-wide cache shared by the session, CLI, evaluator and benchmarks.
shared_cache = DocumentIndexCache()

# Fork-safety: a pool worker forked mid-benchmark must not serve (or
# deadlock on) the parent's cache state.  Spawned workers import this
# module fresh and need no hook.
if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX in CI
    os.register_at_fork(after_in_child=shared_cache._reset_after_fork)


def get_index(document: Document, stats: Optional[EvalStats] = None) -> DocumentIndex:
    """Shared-cache lookup (see the module docstring for the contract)."""
    return shared_cache.get(document, stats)


def invalidate(document: Document) -> bool:
    """Drop ``document`` from the shared cache after mutating it."""
    return shared_cache.invalidate(document)
