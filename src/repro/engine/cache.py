"""Shared per-document :class:`DocumentIndex` cache.

The engines treat documents as frozen during evaluation, so an index built
for one query answers every later query over the same document.  Before
this cache each entry point (session, CLI, evaluator, benchmarks) kept its
own ``dict`` keyed by ``id(document)`` — or rebuilt the index per query.
They now share one process-wide cache:

    from repro.engine.cache import get_index, invalidate
    index = get_index(document)     # built once, then reused
    document.root.append(...)       # mutation invalidates the snapshot...
    invalidate(document)            # ...which the caller signals explicitly

**Invalidation contract.**  Entries are keyed by a weak reference to the
document and checked by identity, so a recycled ``id()`` can never alias a
dead document.  An index holds the element tree (and through parent links
the document) alive, so entries persist until :func:`invalidate` /
:meth:`DocumentIndexCache.clear` — callers that mutate a document **must**
invalidate it, and long-lived processes juggling many throwaway documents
should clear the cache between batches.
"""

from __future__ import annotations

import weakref

from .index import DocumentIndex
from ..ssd.model import Document

__all__ = ["DocumentIndexCache", "get_index", "invalidate", "shared_cache"]


class DocumentIndexCache:
    """Weakref-keyed, explicitly invalidated index cache."""

    def __init__(self) -> None:
        self._entries: dict[int, tuple[weakref.ref, DocumentIndex]] = {}
        self.hits = 0
        self.misses = 0

    def get(self, document: Document) -> DocumentIndex:
        """The cached index for ``document``, building it on first use."""
        key = id(document)
        entry = self._entries.get(key)
        if entry is not None and entry[0]() is document:
            self.hits += 1
            return entry[1]
        self.misses += 1
        index = DocumentIndex(document)

        def _dropped(_ref: weakref.ref, key: int = key) -> None:
            self._entries.pop(key, None)

        self._entries[key] = (weakref.ref(document, _dropped), index)
        return index

    def peek(self, document: Document) -> DocumentIndex | None:
        """The cached index, or ``None`` — never builds."""
        entry = self._entries.get(id(document))
        if entry is not None and entry[0]() is document:
            return entry[1]
        return None

    def invalidate(self, document: Document) -> bool:
        """Drop ``document``'s entry (after mutation); True if one existed."""
        return self._entries.pop(id(document), None) is not None

    def clear(self) -> None:
        """Drop every entry."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, document: object) -> bool:
        return isinstance(document, Document) and self.peek(document) is not None


#: Process-wide cache shared by the session, CLI, evaluator and benchmarks.
shared_cache = DocumentIndexCache()


def get_index(document: Document) -> DocumentIndex:
    """Shared-cache lookup (see the module docstring for the contract)."""
    return shared_cache.get(document)


def invalidate(document: Document) -> bool:
    """Drop ``document`` from the shared cache after mutating it."""
    return shared_cache.invalidate(document)
