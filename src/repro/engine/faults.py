"""Deterministic fault injection at named evaluation stages (test-only).

The robustness suite (``tests/robustness/``) needs to prove the engine
degrades and recovers cleanly when stages are slow or fail mid-flight.
Rather than monkeypatching internals per test, this module piggybacks on
the stable span-site taxonomy from :mod:`repro.engine.trace`: every traced
stage (``match``, ``reduce``, ``assemble``, ``construct``, …) already
announces itself by name, so a :class:`FaultInjector` installed via
:func:`inject` receives each name as the stage opens and can, per its
rules, sleep (exercising deadlines) or raise (exercising per-row isolation
and cache hygiene).

Determinism: every injector is seeded.  A rule's ``probability`` draws
from a private ``random.Random(seed)`` stream, and draws are made in site
arrival order, so a single-threaded run with a fixed seed injects exactly
the same faults every time.  CI runs the suite with pinned seeds.

This is a **test-only** facility: nothing in the library installs an
injector, the hook global is ``None`` in production, and the cost of the
disabled path is one global read per *stage* (the same pay-for-use deal as
tracing and budgets).

Usage::

    boom = FaultRule(site="reduce", exception=RuntimeError("injected"))
    with inject(FaultInjector(seed=7, rules=[boom])):
        evaluate_rule(rule, document)   # first "reduce" stage raises

Note: ``index.lookup`` is recorded by the cache via ``Tracer.span`` only
when a tracer is attached, so rules targeting it require tracing on; every
other documented site fires regardless of tracing.
"""

from __future__ import annotations

import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from . import trace as _trace

__all__ = ["FaultRule", "FaultInjector", "inject"]


@dataclass
class FaultRule:
    """One injection rule: what happens when a named site is reached.

    * ``site`` — the span name to match (exact match against the stable
      taxonomy in DESIGN.md § Observability, e.g. ``"match.fragment"``).
    * ``delay_ms`` — sleep this long at the site (simulates a slow stage).
    * ``exception`` — raise this instance at the site (after any delay).
    * ``probability`` — chance the rule fires on each arrival, drawn from
      the injector's seeded stream; 1.0 fires always.
    * ``max_fires`` — stop firing after this many activations (``None`` =
      unlimited); lets a test fail the first attempt and watch recovery.
    """

    site: str
    delay_ms: float = 0.0
    exception: Optional[BaseException] = None
    probability: float = 1.0
    max_fires: Optional[int] = None
    fired: int = field(default=0, init=False)

    def exhausted(self) -> bool:
        return self.max_fires is not None and self.fired >= self.max_fires


class FaultInjector:
    """Seed-driven dispatcher from span-site arrivals to fault rules.

    Thread-safe: ``run_batch`` rows share one injector, so rule counters
    and the random stream sit behind a lock.  Draw order — hence which
    arrivals fire under ``probability < 1`` — follows global site arrival
    order; multi-threaded tests that need exact determinism should use
    ``probability=1.0`` with ``max_fires``.
    """

    def __init__(self, seed: int = 0, rules: Iterable[FaultRule] = ()) -> None:
        self.rules = list(rules)
        self._random = random.Random(seed)
        self._lock = threading.Lock()
        self.sites_seen: list[str] = []

    def add(self, rule: FaultRule) -> "FaultInjector":
        with self._lock:
            self.rules.append(rule)
        return self

    def __call__(self, site: str) -> None:
        """The :data:`repro.engine.trace._SITE_HOOK` entry point."""
        pending: Optional[FaultRule] = None
        with self._lock:
            self.sites_seen.append(site)
            for rule in self.rules:
                if rule.site != site or rule.exhausted():
                    continue
                if rule.probability < 1.0 and self._random.random() >= rule.probability:
                    continue
                rule.fired += 1
                pending = rule
                break
        if pending is None:
            return
        # Sleep and raise outside the lock so a delayed site never blocks
        # sibling batch rows from reaching their own sites.
        if pending.delay_ms > 0:
            time.sleep(pending.delay_ms / 1000.0)
        if pending.exception is not None:
            raise pending.exception


@contextmanager
def inject(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Install ``injector`` as the global site hook for the ``with`` body.

    Restores the previous hook on exit (nesting stacks, the innermost
    wins).  Test fixtures must keep installation scoped — leaking a hook
    across tests would make unrelated suites nondeterministic.
    """
    previous = _trace._SITE_HOOK
    _trace._SITE_HOOK = injector
    try:
        yield injector
    finally:
        _trace._SITE_HOOK = previous
