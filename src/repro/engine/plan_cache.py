"""Compiled-plan cache.

Parsing, validation and plan compilation (or-expansion, edge
classification, fragment discovery, condition pushdown — see
:func:`repro.xmlgl.matcher.compile_graph`) are document-independent, so a
query evaluated twice over unchanged documents repeats that analysis for
nothing.  :class:`PlanCache` memoises the fully analysed plan, keyed by

* the SHA-256 digest of the query's **canonical rewritten form**
  (:func:`repro.analysis.rewrite.canonical_rule_text`), and
* the tuple of **stats epochs** of the participating document indexes
  (:attr:`repro.engine.index.DocumentIndex.stats_epoch`).

A rebuilt index — after a document mutation and cache invalidation — gets
a fresh epoch, so the old key simply never matches again: invalidation is
structural, not evented.  Stale entries age out of the LRU.

Because computing the canonical key itself requires a parse and a rewrite
pass, a second, much cheaper **alias map** sits in front of the entries:
it maps the digest of the raw query *text* (plus epochs) to the canonical
key it resolved to last time.  A warm repeat of the identical text
resolves through the alias without parsing; a *different* text with the
same meaning parses once, lands on the same canonical key, and then
shares the compiled plan.  Aliases are bookkeeping, not entries: they are
excluded from ``len()``/``stats()``/hit/miss counters and bounded
separately (a stale alias merely falls through to a normal miss).

The cache is a lock-guarded LRU (``dict`` insertion order, move-to-end on
hit) safe for :meth:`repro.session.QuerySession.run_batch`'s worker
threads; entries are immutable compiled plans shared freely across
threads.  ``shared_plans`` is the process-wide default, mirroring the
``shared_cache`` convention of :mod:`repro.engine.cache`.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Any, Hashable, Optional

__all__ = ["CompiledPlan", "PlanCache", "shared_plans"]


@dataclass(frozen=True)
class CompiledPlan:
    """One cached analysis: parsed rule plus per-graph compiled plans.

    ``graph_plans`` holds one :class:`repro.xmlgl.matcher.CompiledGraphPlan`
    per extract graph of the rule (typed ``Any`` to keep this module free
    of language imports).  ``preflight_skip`` records a static
    contradiction verdict: the rule can never bind, so evaluation
    short-circuits without matching (and ``graph_plans`` is empty).

    ``rewrite`` is the :class:`repro.analysis.rewrite.RewriteReport` of the
    rewrite pass that produced ``rule`` (``None`` when the plan was
    compiled with rewriting disabled); caching it alongside the plan means
    warm hits replay the rewrite/analysis outcome without re-running any
    static pass.
    """

    rule: Any
    preflight_skip: bool
    graph_plans: tuple[Any, ...]
    rewrite: Optional[Any] = None


class PlanCache:
    """Thread-safe LRU over compiled plans."""

    def __init__(self, max_entries: int = 128) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self._max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: dict[Hashable, CompiledPlan] = {}
        # raw-text-key -> canonical entry key; bounded separately, never
        # counted as entries (see the module docstring)
        self._aliases: dict[Hashable, Hashable] = {}
        self._max_aliases = 4 * max_entries
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: Hashable) -> Optional[CompiledPlan]:
        """The cached plan for ``key``, refreshed to most-recent, or ``None``."""
        with self._lock:
            plan = self._entries.pop(key, None)
            if plan is None:
                self._misses += 1
                return None
            self._entries[key] = plan  # re-insert = move to LRU tail
            self._hits += 1
            return plan

    def put(self, key: Hashable, plan: CompiledPlan) -> None:
        """Insert ``plan``, evicting least-recently-used entries over capacity."""
        with self._lock:
            self._entries.pop(key, None)
            self._entries[key] = plan
            while len(self._entries) > self._max_entries:
                oldest = next(iter(self._entries))
                del self._entries[oldest]
                self._evictions += 1

    def resolve_alias(self, key: Hashable) -> Optional[Hashable]:
        """The canonical entry key a raw-text key resolved to, if recorded.

        Purely advisory: the returned key may have aged out of the LRU, in
        which case :meth:`get` reports a normal miss.  Alias lookups do not
        touch the hit/miss counters — only entry lookups are accounted.
        """
        with self._lock:
            target = self._aliases.pop(key, None)
            if target is not None:
                self._aliases[key] = target  # refresh recency
            return target

    def put_alias(self, key: Hashable, target: Hashable) -> None:
        """Record that raw-text ``key`` resolves to entry key ``target``."""
        if key == target:
            return
        with self._lock:
            self._aliases.pop(key, None)
            self._aliases[key] = target
            while len(self._aliases) > self._max_aliases:
                del self._aliases[next(iter(self._aliases))]

    def invalidate(self, key: Hashable) -> None:
        """Drop one entry if present (epoch keys make this rarely needed)."""
        with self._lock:
            self._entries.pop(key, None)

    def clear(self) -> None:
        """Drop every entry and alias; counters keep accumulating."""
        with self._lock:
            self._entries.clear()
            self._aliases.clear()

    def _reset_after_fork(self) -> None:
        """Reinitialise in a forked child (fresh lock, empty, zero counters).

        Compiled plans are keyed partly by document-index *identity*
        epochs; a forked child rebuilds its indexes, so inherited entries
        could never hit anyway — and an inherited lock held by a parent
        thread at fork time would deadlock the child.
        """
        self._lock = threading.Lock()
        self._entries = {}
        self._aliases = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        """Lifetime counters plus current size (one consistent snapshot)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self._max_entries,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }


#: Process-wide default cache (mirrors ``repro.engine.cache.shared_cache``).
shared_plans = PlanCache()

# Fork-safety: mirrors the shared index cache (see repro.engine.cache).
if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX in CI
    os.register_at_fork(after_in_child=shared_plans._reset_after_fork)
