"""Shared candidate-pool intersection for the matchers.

Both backtracking matchers (the XML-GL document matcher and the WG-Log
graph matcher) narrow a pattern node's candidates from the adjacency of
already-assigned neighbours: each assigned edge contributes a *pool* and
the node's candidates are the pools' intersection, restricted to the
statically compatible set.  Doing that with nested list scans is quadratic;
this helper builds a membership set per pool once and streams the base pool
through them, preserving the base pool's order and de-duplicating.
"""

from __future__ import annotations

from array import array
from typing import Callable, Optional, Sequence, TypeVar

from .columns import intersect_sorted

__all__ = ["intersect_pools", "intersect_pre_pools"]

T = TypeVar("T")


def intersect_pools(
    pools: Sequence[Sequence[T]],
    allowed: Optional[set] = None,
    key: Optional[Callable[[T], object]] = None,
    smallest_base: bool = False,
) -> list[T]:
    """Intersection of ``pools`` restricted to ``allowed``, in pool order.

    Args:
        pools: candidate pools; must be non-empty.
        allowed: membership keys of statically admissible candidates
            (``None`` = no restriction).
        key: membership key per candidate (``None`` = the value itself;
            pass ``id`` for identity-keyed document nodes).
        smallest_base: iterate the smallest pool instead of the first one
            (faster, but the result follows that pool's order).

    Returns:
        De-duplicated candidates present in every pool, in base-pool order.
    """
    if not pools:
        raise ValueError("intersect_pools needs at least one pool")
    base = min(pools, key=len) if smallest_base else pools[0]
    if key is None:
        others = [set(pool) for pool in pools if pool is not base]
    else:
        others = [{key(x) for x in pool} for pool in pools if pool is not base]
    seen: set = set()
    result: list[T] = []
    for candidate in base:
        k = candidate if key is None else key(candidate)
        if k in seen:
            continue
        if allowed is not None and k not in allowed:
            continue
        if all(k in other for other in others):
            seen.add(k)
            result.append(candidate)
    return result


def intersect_pre_pools(pools: Sequence[Sequence[int]]) -> array:
    """Intersection of sorted unique pre-id pools, smallest-first.

    The columnar twin of :func:`intersect_pools`: every pool is a sorted
    ``pre``-id column (see :mod:`repro.engine.columns`), so intersection
    needs no membership keys — it folds :func:`intersect_sorted` starting
    from the smallest pool, and the result is sorted ascending (= document
    order) by construction.
    """
    if not pools:
        raise ValueError("intersect_pre_pools needs at least one pool")
    ordered = sorted(pools, key=len)
    result = array("i", ordered[0])
    for pool in ordered[1:]:
        if not result:
            break
        result = intersect_sorted(result, pool)
    return result
