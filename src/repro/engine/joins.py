"""Relational building blocks for set-at-a-time query evaluation.

The set-at-a-time pipeline (:mod:`repro.engine.pipeline`) compiles a query
fragment into *unary* relations (per-node candidate pools) and *binary*
relations (candidate pairs satisfying one pattern edge).  This module holds
the relation representation and the two algorithms the pipeline runs over
them:

* :func:`semijoin_reduce` — a Yannakakis-style full reduction over an
  acyclic join structure: one bottom-up and one top-down semi-join pass
  remove every *dangling* candidate (one that participates in no final
  answer), so the subsequent joins never enumerate a dead end;
* :func:`join_forest` — hash-join assembly of the reduced relations along
  the join tree, producing complete assignments.

Candidates are identified by a caller-supplied key function (``id`` for
document elements, the value itself for graph node ids), mirroring the
identity-keyed conventions of :mod:`repro.engine.bindings`.

:func:`equijoin_key` is the hash-key normalisation for *value* equi-joins
(XML-GL's shared-value joins): two values receive the same key exactly when
:func:`repro.ssd.datatypes.equal_atoms` considers them equal, so a hash
join on these keys is equivalent to filtering a cross product with ``=``.
"""

from __future__ import annotations

from array import array
from typing import Any, Callable, Hashable, Iterable, Iterator, Optional, Sequence

from ..ssd.datatypes import coerce
from .columns import intersect_sorted, member_filter, unique_sorted
from .stats import EvalStats
from .trace import span as trace_span

__all__ = [
    "ColumnRelation",
    "EdgeRelation",
    "equijoin_key",
    "join_forest",
    "join_forest_columns",
    "semijoin_reduce",
    "semijoin_reduce_columns",
]

Key = Callable[[Any], Hashable]


def equijoin_key(value: Any) -> Optional[Hashable]:
    """Hash key under :func:`~repro.ssd.datatypes.equal_atoms` semantics.

    Numeric-coercible values key by their number (``"007"`` and ``7`` and
    ``7.0`` collide, as ``equal_atoms`` demands); everything else keys by
    its canonical string.  ``None`` (a missing attribute) returns ``None``
    — the caller must drop the row, matching ``Comparison``'s semantics
    that a ``None`` operand never compares equal.
    """
    if value is None:
        return None
    coerced = coerce(value)
    if isinstance(coerced, bool):
        return int(coerced)  # equal_atoms treats booleans as numbers
    if isinstance(coerced, (int, float)):
        return coerced
    return str(coerced)


class EdgeRelation:
    """A binary relation between the candidates of two pattern nodes.

    Stores the satisfying ``(left, right)`` candidate pairs for one pattern
    edge, with lazily built per-side groupings used by semi-joins (membership)
    and hash joins (partner lookup).
    """

    __slots__ = ("left_var", "right_var", "pairs", "key", "_by_left", "_by_right")

    def __init__(
        self,
        left_var: Hashable,
        right_var: Hashable,
        pairs: Iterable[tuple[Any, Any]],
        key: Key = id,
    ) -> None:
        self.left_var = left_var
        self.right_var = right_var
        self.pairs: list[tuple[Any, Any]] = list(pairs)
        self.key = key
        self._by_left: Optional[dict[Hashable, list[Any]]] = None
        self._by_right: Optional[dict[Hashable, list[Any]]] = None

    def __len__(self) -> int:
        return len(self.pairs)

    def vars(self) -> tuple[Hashable, Hashable]:
        return (self.left_var, self.right_var)

    def other(self, var: Hashable) -> Hashable:
        """The opposite endpoint of ``var``."""
        return self.right_var if var == self.left_var else self.left_var

    def _invalidate(self) -> None:
        self._by_left = None
        self._by_right = None

    def by_side(self, var: Hashable) -> dict[Hashable, list[Any]]:
        """Partner values grouped by the ``var`` side's candidate key."""
        if var == self.left_var:
            if self._by_left is None:
                grouped: dict[Hashable, list[Any]] = {}
                for left, right in self.pairs:
                    grouped.setdefault(self.key(left), []).append(right)
                self._by_left = grouped
            return self._by_left
        if self._by_right is None:
            grouped = {}
            for left, right in self.pairs:
                grouped.setdefault(self.key(right), []).append(left)
            self._by_right = grouped
        return self._by_right

    def restrict(
        self,
        left_keys: Optional[set[Hashable]] = None,
        right_keys: Optional[set[Hashable]] = None,
    ) -> int:
        """Drop pairs whose endpoints left the pools; returns pairs removed."""
        before = len(self.pairs)
        self.pairs = [
            (left, right)
            for left, right in self.pairs
            if (left_keys is None or self.key(left) in left_keys)
            and (right_keys is None or self.key(right) in right_keys)
        ]
        self._invalidate()
        return before - len(self.pairs)


class ColumnRelation:
    """A binary relation between two pools of ``pre`` ids, as columns.

    The columnar counterpart of :class:`EdgeRelation`: pairs live in two
    parallel ``array('i')`` vectors, so restriction is an int-mask pass,
    semi-join membership an int-set probe, and the per-side partner
    grouping a dict of int keys to int columns — no node objects anywhere.
    """

    __slots__ = ("left_var", "right_var", "left", "right", "_by_left", "_by_right")

    def __init__(
        self,
        left_var: Hashable,
        right_var: Hashable,
        left: array,
        right: array,
    ) -> None:
        self.left_var = left_var
        self.right_var = right_var
        self.left = left
        self.right = right
        self._by_left: Optional[dict[int, list[int]]] = None
        self._by_right: Optional[dict[int, list[int]]] = None

    def __len__(self) -> int:
        return len(self.left)

    def other(self, var: Hashable) -> Hashable:
        """The opposite endpoint of ``var``."""
        return self.right_var if var == self.left_var else self.left_var

    def side(self, var: Hashable) -> array:
        """The pre column of the ``var`` endpoint."""
        return self.left if var == self.left_var else self.right

    def partners(self, var: Hashable) -> dict[int, list[int]]:
        """Partner pres grouped by the ``var`` side's pre (lazy, cached)."""
        if var == self.left_var:
            if self._by_left is None:
                grouped: dict[int, list[int]] = {}
                for left, right in zip(self.left, self.right):
                    grouped.setdefault(left, []).append(right)
                self._by_left = grouped
            return self._by_left
        if self._by_right is None:
            grouped = {}
            for left, right in zip(self.left, self.right):
                grouped.setdefault(right, []).append(left)
            self._by_right = grouped
        return self._by_right

    def restrict(self, left_keep: set, right_keep: set) -> int:
        """Drop pairs whose endpoints left the pools; returns pairs removed."""
        before = len(self.left)
        new_left = array("i")
        new_right = array("i")
        for left, right in zip(self.left, self.right):
            if left in left_keep and right in right_keep:
                new_left.append(left)
                new_right.append(right)
        self.left = new_left
        self.right = new_right
        self._by_left = None
        self._by_right = None
        return before - len(new_left)


def _semijoin(
    pools: dict[Hashable, list[Any]],
    relation: EdgeRelation,
    keep_var: Hashable,
    stats: EvalStats,
    direction: str,
) -> None:
    """Reduce ``pools[keep_var]`` to candidates with a partner in ``relation``."""
    present = set(relation.by_side(keep_var))
    pool = pools[keep_var]
    kept = [candidate for candidate in pool if relation.key(candidate) in present]
    stats.semijoins += 1
    stats.semijoin_dropped += len(pool) - len(kept)
    pools[keep_var] = kept
    if stats.budget is not None:
        stats.budget.charge(len(pool))
    if stats.trace is not None:
        stats.trace.event(
            "semijoin",
            var=str(keep_var),
            via=f"{relation.left_var}-{relation.right_var}",
            direction=direction,
            before=len(pool),
            after=len(kept),
        )


def semijoin_reduce(
    pools: dict[Hashable, list[Any]],
    relations: Sequence[EdgeRelation],
    order: Sequence[Hashable],
    parent_of: dict[Hashable, tuple[Hashable, EdgeRelation]],
    stats: EvalStats,
) -> bool:
    """Yannakakis full reduction over a rooted join forest (in place).

    Args:
        pools: per-variable candidate pools; mutated to their reduced form.
        relations: every edge relation of the forest.
        order: planner order; each non-root variable appears after its parent.
        parent_of: variable -> (parent variable, connecting relation) for
            every non-root variable.
        stats: semi-join counters are accumulated here.

    Returns:
        False when some pool or relation became empty (no results exist),
        True otherwise.  After a True return every remaining candidate
        participates in at least one final assignment.
    """
    with trace_span(stats.trace, "reduce") as reduce_span:
        if reduce_span is not None:
            reduce_span["before"] = {str(v): len(p) for v, p in pools.items()}
        # Bottom-up: children reduce their parents before the parents reduce
        # anything above them.
        for var in reversed(order):
            entry = parent_of.get(var)
            if entry is None:
                continue
            parent_var, relation = entry
            relation.restrict(
                left_keys={relation.key(c) for c in pools[relation.left_var]},
                right_keys={relation.key(c) for c in pools[relation.right_var]},
            )
            _semijoin(pools, relation, parent_var, stats, "bottom-up")
            if not pools[parent_var]:
                return False
        # Top-down: parents reduce their children.
        for var in order:
            entry = parent_of.get(var)
            if entry is None:
                continue
            parent_var, relation = entry
            relation.restrict(
                left_keys={relation.key(c) for c in pools[relation.left_var]},
                right_keys={relation.key(c) for c in pools[relation.right_var]},
            )
            _semijoin(pools, relation, var, stats, "top-down")
            if not pools[var]:
                return False
        if reduce_span is not None:
            reduce_span["after"] = {str(v): len(p) for v, p in pools.items()}
    return True


def join_forest(
    pools: dict[Hashable, list[Any]],
    order: Sequence[Hashable],
    parent_of: dict[Hashable, tuple[Hashable, EdgeRelation]],
    stats: EvalStats,
) -> Iterator[dict[Hashable, Any]]:
    """Assemble full assignments along the join forest by hash joins.

    Variables are added in planner order: a root variable contributes its
    pool wholesale (a cross product across trees of the forest), every
    other variable contributes the partners of its parent's value in the
    connecting relation.  After :func:`semijoin_reduce` no partial row ever
    dies, so the row count only tracks true results.
    """
    rows: list[dict[Hashable, Any]] = [{}]
    with trace_span(stats.trace, "assemble") as assemble_span:
        for var in order:
            entry = parent_of.get(var)
            extended: list[dict[Hashable, Any]] = []
            if entry is None:
                pool = pools[var]
                for row in rows:
                    for candidate in pool:
                        new_row = dict(row)
                        new_row[var] = candidate
                        extended.append(new_row)
            else:
                parent_var, relation = entry
                partners = relation.by_side(parent_var)
                key = relation.key
                for row in rows:
                    for candidate in partners.get(key(row[parent_var]), ()):
                        new_row = dict(row)
                        new_row[var] = candidate
                        extended.append(new_row)
            stats.hashjoin_rows += len(extended)
            if stats.budget is not None:
                stats.budget.add_rows(len(extended))
            rows = extended
            if not rows:
                break
        if assemble_span is not None:
            assemble_span["rows"] = len(rows)
    if rows:
        yield from rows


# ---------------------------------------------------------------------------
# Columnar kernels (pre-id pools; see repro.engine.columns)
# ---------------------------------------------------------------------------

def _semijoin_columns(
    pools: dict[Hashable, array],
    relation: ColumnRelation,
    keep_var: Hashable,
    stats: EvalStats,
    direction: str,
) -> None:
    """Reduce ``pools[keep_var]`` to pres with a partner in ``relation``."""
    side = relation.side(keep_var)
    pool = pools[keep_var]
    present = unique_sorted(side) if len(side) > 1 else set(side)
    if isinstance(present, set):
        kept = member_filter(pool, present)
    else:
        kept = intersect_sorted(pool, present)
    stats.semijoins += 1
    stats.semijoin_dropped += len(pool) - len(kept)
    pools[keep_var] = kept
    if stats.budget is not None:
        stats.budget.charge(len(pool))
    if stats.trace is not None:
        stats.trace.event(
            "semijoin",
            var=str(keep_var),
            via=f"{relation.left_var}-{relation.right_var}",
            direction=direction,
            before=len(pool),
            after=len(kept),
        )


def semijoin_reduce_columns(
    pools: dict[Hashable, array],
    relations: Sequence[ColumnRelation],
    order: Sequence[Hashable],
    parent_of: dict[Hashable, tuple[Hashable, ColumnRelation]],
    stats: EvalStats,
) -> bool:
    """Yannakakis full reduction over int-column pools (in place).

    The columnar twin of :func:`semijoin_reduce`: identical passes and
    guarantees, but pools are sorted pre columns and relations
    :class:`ColumnRelation`\\ s, so every membership probe is an int
    operation.  Relations built *from* the current pools start consistent
    with them, so a restrict pass only runs against sides whose pool has
    shrunk since construction — a no-op filter skipped wholesale.
    """
    shrunk: set[Hashable] = set()

    def restrict(relation: ColumnRelation) -> None:
        if relation.left_var not in shrunk and relation.right_var not in shrunk:
            return
        relation.restrict(
            set(pools[relation.left_var]), set(pools[relation.right_var])
        )

    def reduced(var: Hashable, before: int) -> None:
        if len(pools[var]) < before:
            shrunk.add(var)

    with trace_span(stats.trace, "reduce") as reduce_span:
        if reduce_span is not None:
            reduce_span["before"] = {str(v): len(p) for v, p in pools.items()}
        for var in reversed(order):
            entry = parent_of.get(var)
            if entry is None:
                continue
            parent_var, relation = entry
            restrict(relation)
            before = len(pools[parent_var])
            _semijoin_columns(pools, relation, parent_var, stats, "bottom-up")
            reduced(parent_var, before)
            if not pools[parent_var]:
                return False
        for var in order:
            entry = parent_of.get(var)
            if entry is None:
                continue
            parent_var, relation = entry
            restrict(relation)
            before = len(pools[var])
            _semijoin_columns(pools, relation, var, stats, "top-down")
            reduced(var, before)
            if not pools[var]:
                return False
        if reduce_span is not None:
            reduce_span["after"] = {str(v): len(p) for v, p in pools.items()}
    return True


def join_forest_columns(
    pools: dict[Hashable, array],
    order: Sequence[Hashable],
    parent_of: dict[Hashable, tuple[Hashable, ColumnRelation]],
    stats: EvalStats,
) -> list[list[int]]:
    """Hash-join assembly over int columns.

    The columnar twin of :func:`join_forest`: rows are flat int lists
    aligned with ``order`` (``row[i]`` is the pre bound to ``order[i]``),
    extended by list concatenation instead of per-variable dict copies.
    Node objects are only materialised by the caller, against the index's
    ``pre -> element`` side table, after assembly finishes.
    """
    position = {var: i for i, var in enumerate(order)}
    rows: list[list[int]] = [[]]
    with trace_span(stats.trace, "assemble") as assemble_span:
        for var in order:
            entry = parent_of.get(var)
            extended: list[list[int]] = []
            if entry is None:
                pool = pools[var]
                for row in rows:
                    for pre in pool:
                        extended.append(row + [pre])
            else:
                parent_var, relation = entry
                partners = relation.partners(parent_var)
                parent_at = position[parent_var]
                empty: list[int] = []
                for row in rows:
                    for pre in partners.get(row[parent_at], empty):
                        extended.append(row + [pre])
            stats.hashjoin_rows += len(extended)
            if stats.budget is not None:
                stats.budget.add_rows(len(extended))
            rows = extended
            if not rows:
                break
        if assemble_span is not None:
            assemble_span["rows"] = len(rows)
    return rows
