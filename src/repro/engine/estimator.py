"""Cardinality estimation from per-document statistics.

The adaptive engine (``MatchOptions(engine="adaptive")``) decides, per
query fragment, whether the set-at-a-time semi-join pipeline or the
node-at-a-time backtracking core is cheaper.  That comparison needs real
numbers, not shapes, so :class:`DocumentStatistics` collects — in one
extra pass piggybacked on :class:`~repro.engine.index.DocumentIndex`
construction — the document facts both cost formulas consume:

* per-tag node counts (the candidate-pool sizes),
* depth and fanout histograms (tree shape),
* exact direct parent/child pair counts per ``(parent_tag, child_tag)``
  with row/column/total aggregates so wildcard endpoints estimate without
  guessing,
* the same family for ancestor/descendant ("deep") pairs, computed by
  walking each node's parent chain (``O(n * depth)`` — cheap on document
  trees, exact instead of sampled),
* a :class:`ValueSketch` per attribute name: occurrence count and a
  capped distinct-value count, the selectivity source for equality
  predicates.

:class:`DocumentStatistics` objects are immutable snapshots, but the
accumulator behind them — :class:`StatisticsBuilder` — is mutable and
lives on the index: document mutations (:mod:`repro.engine.mutate`) apply
*subtree deltas* (``O(k * depth)`` for a ``k``-node edit) instead of
recollecting, and the index re-snapshots lazily.  Structural edits bump
the index's *stats epoch*, which is what keys compiled plans out of the
plan cache (:mod:`repro.engine.plan_cache`); attribute/value edits update
the sketches without an epoch bump (cost inputs drift, plan validity does
not).  After deletions a sketch's ``distinct`` degrades to an upper bound
and its ``exact`` flag drops — deltas cannot un-count a vanished value.

:class:`CardinalityEstimator` is the read side: pool sizes, raw and
pool-scaled edge-pair estimates, and attribute selectivities, consumed by
:func:`repro.engine.planner.choose_fragment_engine`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from ..ssd.model import Element

__all__ = [
    "DISTINCT_CAP",
    "ValueSketch",
    "DocumentStatistics",
    "StatisticsBuilder",
    "CardinalityEstimator",
    "balanced_partition",
]


def _inc(table: dict, key, delta: int) -> None:
    """Adjust ``table[key]`` by ``delta``, dropping keys that reach zero."""
    value = table.get(key, 0) + delta
    if value:
        table[key] = value
    else:
        table.pop(key, None)

#: Distinct attribute values tracked exactly before a sketch saturates.
DISTINCT_CAP = 64


@dataclass(frozen=True)
class ValueSketch:
    """Selectivity sketch of one attribute name across a document."""

    #: Elements carrying the attribute.
    occurrences: int
    #: Distinct values seen (exact until :data:`DISTINCT_CAP`, then capped).
    distinct: int
    #: Whether ``distinct`` is exact or the cap was hit.
    exact: bool

    @property
    def selectivity(self) -> float:
        """Estimated fraction of carriers an ``= constant`` predicate keeps."""
        return 1.0 / max(1, self.distinct)


@dataclass(frozen=True)
class DocumentStatistics:
    """Immutable per-document statistics collected at index build."""

    element_count: int
    tag_counts: Mapping[str, int]
    #: depth -> number of elements at that depth (root = 0).
    depth_histogram: Mapping[int, int]
    #: child-element count -> number of elements with that fanout.
    fanout_histogram: Mapping[int, int]
    #: (parent_tag, child_tag) -> exact direct parent/child pair count.
    child_pairs: Mapping[tuple[str, str], int]
    #: parent_tag -> direct pairs with any child tag (row totals).
    child_parent_totals: Mapping[str, int]
    #: child_tag -> direct pairs with any parent tag (column totals).
    child_child_totals: Mapping[str, int]
    #: Direct pairs overall (= element_count - 1 on non-empty documents).
    child_total: int
    #: (ancestor_tag, descendant_tag) -> exact ancestor/descendant pairs.
    deep_pairs: Mapping[tuple[str, str], int]
    deep_parent_totals: Mapping[str, int]
    deep_child_totals: Mapping[str, int]
    #: Ancestor/descendant pairs overall (= sum of element depths).
    deep_total: int
    #: attribute name -> :class:`ValueSketch`.
    attributes: Mapping[str, ValueSketch]

    @classmethod
    def collect(
        cls,
        elements: Sequence[Element],
        parent_pre: Sequence[int],
        depth: Sequence[int],
    ) -> "DocumentStatistics":
        """One pass over the index's pre-order arrays (plus ancestor walks)."""
        return StatisticsBuilder.collect(elements, parent_pre, depth).snapshot()


class StatisticsBuilder:
    """Mutable accumulator behind :class:`DocumentStatistics`.

    The index owns one of these; :func:`collect` fills it in the same
    single pass the frozen ``DocumentStatistics.collect`` always did, and
    the mutation path (:mod:`repro.engine.mutate`) keeps it current with
    :meth:`add_subtree` / :meth:`remove_subtree` / :meth:`set_attribute`
    deltas.  :meth:`snapshot` freezes the current state.

    Delta costs are ``O(k * depth)`` for a ``k``-node subtree (each node
    contributes one deep pair per ancestor, exactly mirroring the build
    pass) and ``O(1)`` for attribute edits.  Deletions and value rewrites
    poison a sketch's exactness: the value set becomes an upper bound on
    the live distinct count and ``exact`` drops to ``False``.
    """

    __slots__ = (
        "element_count",
        "tag_counts",
        "depth_histogram",
        "fanout_histogram",
        "child_pairs",
        "child_parent_totals",
        "child_child_totals",
        "child_total",
        "deep_pairs",
        "deep_parent_totals",
        "deep_child_totals",
        "deep_total",
        "attr_occurrences",
        "attr_values",
        "attr_inexact",
    )

    def __init__(self) -> None:
        self.element_count = 0
        self.tag_counts: dict[str, int] = {}
        self.depth_histogram: dict[int, int] = {}
        self.fanout_histogram: dict[int, int] = {}
        self.child_pairs: dict[tuple[str, str], int] = {}
        self.child_parent_totals: dict[str, int] = {}
        self.child_child_totals: dict[str, int] = {}
        self.child_total = 0
        self.deep_pairs: dict[tuple[str, str], int] = {}
        self.deep_parent_totals: dict[str, int] = {}
        self.deep_child_totals: dict[str, int] = {}
        self.deep_total = 0
        self.attr_occurrences: dict[str, int] = {}
        self.attr_values: dict[str, set[str]] = {}
        #: Names whose distinct count is an upper bound (cap hit, or a
        #: deletion/rewrite removed occurrences the set cannot forget).
        self.attr_inexact: set[str] = set()

    @classmethod
    def collect(
        cls,
        elements: Sequence[Element],
        parent_pre: Sequence[int],
        depth: Sequence[int],
    ) -> "StatisticsBuilder":
        """Fill a builder from the index's pre-order arrays."""
        builder = cls()
        tag_counts = builder.tag_counts
        depth_histogram = builder.depth_histogram
        child_pairs = builder.child_pairs
        child_parent_totals = builder.child_parent_totals
        child_child_totals = builder.child_child_totals
        deep_pairs = builder.deep_pairs
        deep_parent_totals = builder.deep_parent_totals
        deep_child_totals = builder.deep_child_totals
        child_counts = [0] * len(elements)

        for pre, element in enumerate(elements):
            tag = element.tag
            tag_counts[tag] = tag_counts.get(tag, 0) + 1
            level = depth[pre]
            depth_histogram[level] = depth_histogram.get(level, 0) + 1
            ppre = parent_pre[pre]
            if ppre >= 0:
                child_counts[ppre] += 1
                parent_tag = elements[ppre].tag
                key = (parent_tag, tag)
                child_pairs[key] = child_pairs.get(key, 0) + 1
                child_parent_totals[parent_tag] = (
                    child_parent_totals.get(parent_tag, 0) + 1
                )
                child_child_totals[tag] = child_child_totals.get(tag, 0) + 1
                # Exact deep pairs: every ancestor of this element
                # contributes one (ancestor_tag, tag) pair.
                walk = ppre
                while walk >= 0:
                    ancestor_tag = elements[walk].tag
                    deep_key = (ancestor_tag, tag)
                    deep_pairs[deep_key] = deep_pairs.get(deep_key, 0) + 1
                    deep_parent_totals[ancestor_tag] = (
                        deep_parent_totals.get(ancestor_tag, 0) + 1
                    )
                    walk = parent_pre[walk]
                deep_child_totals[tag] = deep_child_totals.get(tag, 0) + level
                builder.deep_total += level
            for name, value in element.attributes.items():
                builder.attr_occurrences[name] = (
                    builder.attr_occurrences.get(name, 0) + 1
                )
                builder._track_value(name, value)

        for fanout in child_counts:
            builder.fanout_histogram[fanout] = (
                builder.fanout_histogram.get(fanout, 0) + 1
            )
        builder.element_count = len(elements)
        builder.child_total = max(0, len(elements) - 1)
        return builder

    # -- deltas ---------------------------------------------------------------

    def add_subtree(
        self,
        root: Element,
        parent_depth: int,
        ancestor_tags: Sequence[str],
        parent_fanout_after: int,
    ) -> int:
        """Count subtree ``root`` in, newly attached under a parent.

        ``ancestor_tags`` is the parent-upward tag chain (nearest first),
        ``parent_fanout_after`` the parent's element-child count *after*
        the attach.  Returns the node/ancestor touches performed (the work
        metric the incremental benchmark compares against rebuilds).
        """
        return self._apply_subtree(
            root, parent_depth, ancestor_tags, parent_fanout_after, +1
        )

    def remove_subtree(
        self,
        root: Element,
        parent_depth: int,
        ancestor_tags: Sequence[str],
        parent_fanout_after: int,
    ) -> int:
        """Count subtree ``root`` out (``parent_fanout_after`` = post-detach)."""
        return self._apply_subtree(
            root, parent_depth, ancestor_tags, parent_fanout_after, -1
        )

    def _apply_subtree(
        self,
        root: Element,
        parent_depth: int,
        ancestor_tags: Sequence[str],
        parent_fanout_after: int,
        sign: int,
    ) -> int:
        work = 0
        # The parent keeps its other children; only its fanout bucket moves.
        _inc(self.fanout_histogram, parent_fanout_after - sign, -1)
        _inc(self.fanout_histogram, parent_fanout_after, +1)
        stack: list[tuple[Element, int, tuple[str, ...]]] = [
            (root, parent_depth + 1, tuple(ancestor_tags))
        ]
        while stack:
            element, depth, chain = stack.pop()
            work += 1 + len(chain)
            tag = element.tag
            self.element_count += sign
            _inc(self.tag_counts, tag, sign)
            _inc(self.depth_histogram, depth, sign)
            _inc(self.child_pairs, (chain[0], tag), sign)
            _inc(self.child_parent_totals, chain[0], sign)
            _inc(self.child_child_totals, tag, sign)
            self.child_total += sign
            for ancestor_tag in chain:
                _inc(self.deep_pairs, (ancestor_tag, tag), sign)
                _inc(self.deep_parent_totals, ancestor_tag, sign)
            _inc(self.deep_child_totals, tag, sign * len(chain))
            self.deep_total += sign * len(chain)
            children = element.child_elements()
            _inc(self.fanout_histogram, len(children), sign)
            for name, value in element.attributes.items():
                _inc(self.attr_occurrences, name, sign)
                if sign > 0:
                    self._track_value(name, value)
                else:
                    self.attr_inexact.add(name)
            child_chain = (tag,) + chain
            for child in children:
                stack.append((child, depth + 1, child_chain))
        return work

    def set_attribute(
        self, name: str, old: Optional[str], new: Optional[str]
    ) -> None:
        """Register one attribute edit (set / overwrite / remove)."""
        if old is None and new is not None:
            _inc(self.attr_occurrences, name, 1)
            self._track_value(name, new)
        elif old is not None and new is None:
            _inc(self.attr_occurrences, name, -1)
            self.attr_inexact.add(name)
        elif new is not None and new != old:
            self._track_value(name, new)
            self.attr_inexact.add(name)

    def _track_value(self, name: str, value: str) -> None:
        seen = self.attr_values.setdefault(name, set())
        if len(seen) >= DISTINCT_CAP:
            self.attr_inexact.add(name)
            return
        seen.add(value)
        if len(seen) >= DISTINCT_CAP:
            self.attr_inexact.add(name)

    # -- snapshot -------------------------------------------------------------

    def snapshot(self) -> DocumentStatistics:
        """Freeze the current state into a :class:`DocumentStatistics`."""
        attributes = {}
        for name, count in self.attr_occurrences.items():
            if count <= 0:
                continue
            distinct = len(self.attr_values.get(name, ()))
            attributes[name] = ValueSketch(
                occurrences=count,
                distinct=max(1, min(distinct, count)) if distinct else 0,
                exact=name not in self.attr_inexact,
            )
        return DocumentStatistics(
            element_count=self.element_count,
            tag_counts=dict(self.tag_counts),
            depth_histogram=dict(self.depth_histogram),
            fanout_histogram=dict(self.fanout_histogram),
            child_pairs=dict(self.child_pairs),
            child_parent_totals=dict(self.child_parent_totals),
            child_child_totals=dict(self.child_child_totals),
            child_total=self.child_total,
            deep_pairs=dict(self.deep_pairs),
            deep_parent_totals=dict(self.deep_parent_totals),
            deep_child_totals=dict(self.deep_child_totals),
            deep_total=self.deep_total,
            attributes=attributes,
        )


class CardinalityEstimator:
    """Pool and edge-pair estimates over one document's statistics.

    ``None`` tags mean wildcards throughout and resolve against the
    row/column/total aggregates, so every (tag, wildcard) combination has
    an exact answer rather than an independence guess.
    """

    def __init__(self, statistics: DocumentStatistics) -> None:
        self._statistics = statistics

    @property
    def statistics(self) -> DocumentStatistics:
        return self._statistics

    def pool(self, tag: Optional[str]) -> int:
        """Candidate-pool size for a box with ``tag`` (``None`` = wildcard)."""
        if tag is None:
            return self._statistics.element_count
        return self._statistics.tag_counts.get(tag, 0)

    def edge_pairs(
        self,
        parent_tag: Optional[str],
        child_tag: Optional[str],
        deep: bool = False,
    ) -> int:
        """Exact pair count one containment arc relates, over whole pools."""
        s = self._statistics
        if deep:
            if parent_tag is None and child_tag is None:
                return s.deep_total
            if parent_tag is None:
                return s.deep_child_totals.get(child_tag, 0)  # type: ignore[arg-type]
            if child_tag is None:
                return s.deep_parent_totals.get(parent_tag, 0)
            return s.deep_pairs.get((parent_tag, child_tag), 0)
        if parent_tag is None and child_tag is None:
            return s.child_total
        if parent_tag is None:
            return s.child_child_totals.get(child_tag, 0)  # type: ignore[arg-type]
        if child_tag is None:
            return s.child_parent_totals.get(parent_tag, 0)
        return s.child_pairs.get((parent_tag, child_tag), 0)

    def scaled_edge_pairs(
        self,
        parent_tag: Optional[str],
        child_tag: Optional[str],
        deep: bool,
        parent_pool: int,
        child_pool: int,
    ) -> float:
        """Pair estimate scaled to narrowed pools.

        The exact counts cover *whole* tag pools; anchoring, required
        attributes and constant circles narrow the actual pools, so the
        count is scaled by each endpoint's kept fraction (uniformity
        assumption, clamped to 1).
        """
        raw = self.edge_pairs(parent_tag, child_tag, deep)
        if raw <= 0:
            return 0.0
        parent_fraction = parent_pool / max(1, self.pool(parent_tag))
        child_fraction = child_pool / max(1, self.pool(child_tag))
        return raw * min(1.0, parent_fraction) * min(1.0, child_fraction)

    def attribute_selectivity(self, name: str) -> float:
        """Kept fraction of an ``@name = constant`` predicate (1.0 unknown)."""
        sketch = self._statistics.attributes.get(name)
        if sketch is None:
            return 1.0
        return sketch.selectivity


def balanced_partition(weights: Sequence[int], groups: int) -> list[list[int]]:
    """Split item indices into ``groups`` near-equal-weight groups.

    Greedy longest-processing-time: items are placed heaviest-first onto
    the currently lightest group, a 4/3-approximation of the optimal
    makespan — good enough to keep shard wall times balanced.  Weights are
    whatever cost proxy the caller has (the sharded executor uses element
    counts, the same statistic the cost model's pools are built from).

    Returns at most ``groups`` lists of indices into ``weights``; empty
    groups are dropped, and within a group the original order is kept so
    shard-major iteration stays deterministic.
    """
    if groups < 1:
        raise ValueError("groups must be at least 1")
    count = min(groups, len(weights))
    if count == 0:
        return []
    # (load, group position) heap; ties broken by position for determinism.
    heap: list[tuple[int, int]] = [(0, position) for position in range(count)]
    assignment: list[list[int]] = [[] for _ in range(count)]
    order = sorted(range(len(weights)), key=lambda i: (-weights[i], i))
    for item in order:
        load, position = heapq.heappop(heap)
        assignment[position].append(item)
        heapq.heappush(heap, (load + weights[item], position))
    for bucket in assignment:
        bucket.sort()
    return [bucket for bucket in assignment if bucket]
