"""Cardinality estimation from per-document statistics.

The adaptive engine (``MatchOptions(engine="adaptive")``) decides, per
query fragment, whether the set-at-a-time semi-join pipeline or the
node-at-a-time backtracking core is cheaper.  That comparison needs real
numbers, not shapes, so :class:`DocumentStatistics` collects — in one
extra pass piggybacked on :class:`~repro.engine.index.DocumentIndex`
construction — the document facts both cost formulas consume:

* per-tag node counts (the candidate-pool sizes),
* depth and fanout histograms (tree shape),
* exact direct parent/child pair counts per ``(parent_tag, child_tag)``
  with row/column/total aggregates so wildcard endpoints estimate without
  guessing,
* the same family for ancestor/descendant ("deep") pairs, computed by
  walking each node's parent chain (``O(n * depth)`` — cheap on document
  trees, exact instead of sampled),
* a :class:`ValueSketch` per attribute name: occurrence count and a
  capped distinct-value count, the selectivity source for equality
  predicates.

Statistics are immutable snapshots exactly like the index that carries
them; rebuilding the index (after a document mutation and cache
invalidation) collects fresh statistics and bumps the index's *stats
epoch*, which is what keys compiled plans out of the plan cache
(:mod:`repro.engine.plan_cache`).

:class:`CardinalityEstimator` is the read side: pool sizes, raw and
pool-scaled edge-pair estimates, and attribute selectivities, consumed by
:func:`repro.engine.planner.choose_fragment_engine`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from ..ssd.model import Element

__all__ = [
    "DISTINCT_CAP",
    "ValueSketch",
    "DocumentStatistics",
    "CardinalityEstimator",
    "balanced_partition",
]

#: Distinct attribute values tracked exactly before a sketch saturates.
DISTINCT_CAP = 64


@dataclass(frozen=True)
class ValueSketch:
    """Selectivity sketch of one attribute name across a document."""

    #: Elements carrying the attribute.
    occurrences: int
    #: Distinct values seen (exact until :data:`DISTINCT_CAP`, then capped).
    distinct: int
    #: Whether ``distinct`` is exact or the cap was hit.
    exact: bool

    @property
    def selectivity(self) -> float:
        """Estimated fraction of carriers an ``= constant`` predicate keeps."""
        return 1.0 / max(1, self.distinct)


@dataclass(frozen=True)
class DocumentStatistics:
    """Immutable per-document statistics collected at index build."""

    element_count: int
    tag_counts: Mapping[str, int]
    #: depth -> number of elements at that depth (root = 0).
    depth_histogram: Mapping[int, int]
    #: child-element count -> number of elements with that fanout.
    fanout_histogram: Mapping[int, int]
    #: (parent_tag, child_tag) -> exact direct parent/child pair count.
    child_pairs: Mapping[tuple[str, str], int]
    #: parent_tag -> direct pairs with any child tag (row totals).
    child_parent_totals: Mapping[str, int]
    #: child_tag -> direct pairs with any parent tag (column totals).
    child_child_totals: Mapping[str, int]
    #: Direct pairs overall (= element_count - 1 on non-empty documents).
    child_total: int
    #: (ancestor_tag, descendant_tag) -> exact ancestor/descendant pairs.
    deep_pairs: Mapping[tuple[str, str], int]
    deep_parent_totals: Mapping[str, int]
    deep_child_totals: Mapping[str, int]
    #: Ancestor/descendant pairs overall (= sum of element depths).
    deep_total: int
    #: attribute name -> :class:`ValueSketch`.
    attributes: Mapping[str, ValueSketch]

    @classmethod
    def collect(
        cls,
        elements: Sequence[Element],
        parent_pre: Sequence[int],
        depth: Sequence[int],
    ) -> "DocumentStatistics":
        """One pass over the index's pre-order arrays (plus ancestor walks)."""
        tag_counts: dict[str, int] = {}
        depth_histogram: dict[int, int] = {}
        child_counts = [0] * len(elements)
        child_pairs: dict[tuple[str, str], int] = {}
        child_parent_totals: dict[str, int] = {}
        child_child_totals: dict[str, int] = {}
        deep_pairs: dict[tuple[str, str], int] = {}
        deep_parent_totals: dict[str, int] = {}
        deep_child_totals: dict[str, int] = {}
        deep_total = 0
        attr_occurrences: dict[str, int] = {}
        attr_values: dict[str, set[str]] = {}
        attr_saturated: set[str] = set()

        for pre, element in enumerate(elements):
            tag = element.tag
            tag_counts[tag] = tag_counts.get(tag, 0) + 1
            level = depth[pre]
            depth_histogram[level] = depth_histogram.get(level, 0) + 1
            ppre = parent_pre[pre]
            if ppre >= 0:
                child_counts[ppre] += 1
                parent_tag = elements[ppre].tag
                key = (parent_tag, tag)
                child_pairs[key] = child_pairs.get(key, 0) + 1
                child_parent_totals[parent_tag] = (
                    child_parent_totals.get(parent_tag, 0) + 1
                )
                child_child_totals[tag] = child_child_totals.get(tag, 0) + 1
                # Exact deep pairs: every ancestor of this element
                # contributes one (ancestor_tag, tag) pair.
                walk = ppre
                while walk >= 0:
                    ancestor_tag = elements[walk].tag
                    deep_key = (ancestor_tag, tag)
                    deep_pairs[deep_key] = deep_pairs.get(deep_key, 0) + 1
                    deep_parent_totals[ancestor_tag] = (
                        deep_parent_totals.get(ancestor_tag, 0) + 1
                    )
                    walk = parent_pre[walk]
                deep_child_totals[tag] = deep_child_totals.get(tag, 0) + level
                deep_total += level
            for name, value in element.attributes.items():
                attr_occurrences[name] = attr_occurrences.get(name, 0) + 1
                if name not in attr_saturated:
                    seen = attr_values.setdefault(name, set())
                    seen.add(value)
                    if len(seen) >= DISTINCT_CAP:
                        attr_saturated.add(name)

        fanout_histogram: dict[int, int] = {}
        for fanout in child_counts:
            fanout_histogram[fanout] = fanout_histogram.get(fanout, 0) + 1

        attributes = {
            name: ValueSketch(
                occurrences=count,
                distinct=len(attr_values.get(name, ())),
                exact=name not in attr_saturated,
            )
            for name, count in attr_occurrences.items()
        }
        return cls(
            element_count=len(elements),
            tag_counts=tag_counts,
            depth_histogram=depth_histogram,
            fanout_histogram=fanout_histogram,
            child_pairs=child_pairs,
            child_parent_totals=child_parent_totals,
            child_child_totals=child_child_totals,
            child_total=max(0, len(elements) - 1),
            deep_pairs=deep_pairs,
            deep_parent_totals=deep_parent_totals,
            deep_child_totals=deep_child_totals,
            deep_total=deep_total,
            attributes=attributes,
        )


class CardinalityEstimator:
    """Pool and edge-pair estimates over one document's statistics.

    ``None`` tags mean wildcards throughout and resolve against the
    row/column/total aggregates, so every (tag, wildcard) combination has
    an exact answer rather than an independence guess.
    """

    def __init__(self, statistics: DocumentStatistics) -> None:
        self._statistics = statistics

    @property
    def statistics(self) -> DocumentStatistics:
        return self._statistics

    def pool(self, tag: Optional[str]) -> int:
        """Candidate-pool size for a box with ``tag`` (``None`` = wildcard)."""
        if tag is None:
            return self._statistics.element_count
        return self._statistics.tag_counts.get(tag, 0)

    def edge_pairs(
        self,
        parent_tag: Optional[str],
        child_tag: Optional[str],
        deep: bool = False,
    ) -> int:
        """Exact pair count one containment arc relates, over whole pools."""
        s = self._statistics
        if deep:
            if parent_tag is None and child_tag is None:
                return s.deep_total
            if parent_tag is None:
                return s.deep_child_totals.get(child_tag, 0)  # type: ignore[arg-type]
            if child_tag is None:
                return s.deep_parent_totals.get(parent_tag, 0)
            return s.deep_pairs.get((parent_tag, child_tag), 0)
        if parent_tag is None and child_tag is None:
            return s.child_total
        if parent_tag is None:
            return s.child_child_totals.get(child_tag, 0)  # type: ignore[arg-type]
        if child_tag is None:
            return s.child_parent_totals.get(parent_tag, 0)
        return s.child_pairs.get((parent_tag, child_tag), 0)

    def scaled_edge_pairs(
        self,
        parent_tag: Optional[str],
        child_tag: Optional[str],
        deep: bool,
        parent_pool: int,
        child_pool: int,
    ) -> float:
        """Pair estimate scaled to narrowed pools.

        The exact counts cover *whole* tag pools; anchoring, required
        attributes and constant circles narrow the actual pools, so the
        count is scaled by each endpoint's kept fraction (uniformity
        assumption, clamped to 1).
        """
        raw = self.edge_pairs(parent_tag, child_tag, deep)
        if raw <= 0:
            return 0.0
        parent_fraction = parent_pool / max(1, self.pool(parent_tag))
        child_fraction = child_pool / max(1, self.pool(child_tag))
        return raw * min(1.0, parent_fraction) * min(1.0, child_fraction)

    def attribute_selectivity(self, name: str) -> float:
        """Kept fraction of an ``@name = constant`` predicate (1.0 unknown)."""
        sketch = self._statistics.attributes.get(name)
        if sketch is None:
            return 1.0
        return sketch.selectivity


def balanced_partition(weights: Sequence[int], groups: int) -> list[list[int]]:
    """Split item indices into ``groups`` near-equal-weight groups.

    Greedy longest-processing-time: items are placed heaviest-first onto
    the currently lightest group, a 4/3-approximation of the optimal
    makespan — good enough to keep shard wall times balanced.  Weights are
    whatever cost proxy the caller has (the sharded executor uses element
    counts, the same statistic the cost model's pools are built from).

    Returns at most ``groups`` lists of indices into ``weights``; empty
    groups are dropped, and within a group the original order is kept so
    shard-major iteration stays deterministic.
    """
    if groups < 1:
        raise ValueError("groups must be at least 1")
    count = min(groups, len(weights))
    if count == 0:
        return []
    # (load, group position) heap; ties broken by position for determinism.
    heap: list[tuple[int, int]] = [(0, position) for position in range(count)]
    assignment: list[list[int]] = [[] for _ in range(count)]
    order = sorted(range(len(weights)), key=lambda i: (-weights[i], i))
    for item in order:
        load, position = heapq.heappop(heap)
        assignment[position].append(item)
        heapq.heappush(heap, (load + weights[item], position))
    for bucket in assignment:
        bucket.sort()
    return [bucket for bucket in assignment if bucket]
