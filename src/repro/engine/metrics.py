"""Process-wide evaluation metrics.

:class:`EvalStats` counts one evaluation; a :class:`MetricsRegistry`
aggregates *across* evaluations — the serving-side view the ROADMAP's
heavy-traffic north star needs: how often the shared index cache hits, how
often the pipeline falls back to backtracking, and where the latency
percentiles sit.  A registry is thread-safe (``QuerySession.run_batch``
records from worker threads) and cheap to record into: one lock, one dict
merge, one deque append.

Usage::

    registry = MetricsRegistry()
    registry.record(stats, seconds=elapsed, query=text)
    registry.snapshot()["latency"]["p95"]
    print(registry.to_json())

**Slow-query hook.**  ``set_slow_query_log(threshold)`` arms a callback
invoked (outside the registry lock) for every recorded evaluation whose
wall time exceeds the threshold.  The callback receives one dict with keys
``seconds``, ``query`` (source text or ``None``) and ``counters`` (the
evaluation's :meth:`EvalStats.as_dict`).  Without an explicit callback the
record goes to ``logging.getLogger("repro.metrics")`` at WARNING level —
the stdlib wiring means production deployments aim it at their usual log
pipeline with zero extra code.

:data:`global_registry` is the process-wide instance the CLI records into;
sessions default to a private registry so their totals stay attributable
(pass ``metrics=global_registry`` to pool them).
"""

from __future__ import annotations

import json
import logging
import os
import threading
from collections import deque
from typing import Any, Callable, Optional

from .stats import EvalStats

__all__ = ["MetricsRegistry", "global_registry"]

logger = logging.getLogger("repro.metrics")

SlowQueryHook = Callable[[dict[str, Any]], None]

#: Latency samples kept for percentile estimation (most recent wins).
DEFAULT_MAX_SAMPLES = 4096


def _percentile(ordered: list[float], fraction: float) -> float:
    """Nearest-rank percentile over an already-sorted sample list."""
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


class MetricsRegistry:
    """Aggregates :class:`EvalStats` counters and latencies across queries."""

    def __init__(self, max_samples: int = DEFAULT_MAX_SAMPLES) -> None:
        if max_samples < 1:
            raise ValueError("max_samples must be at least 1")
        self._lock = threading.Lock()
        self._totals: dict[str, float] = {}
        self._queries = 0
        self._errors = 0
        self._samples: deque[float] = deque(maxlen=max_samples)
        self._slow_threshold: Optional[float] = None
        self._slow_hook: Optional[SlowQueryHook] = None

    # -- recording -----------------------------------------------------------

    def record(
        self,
        stats: EvalStats,
        seconds: Optional[float] = None,
        query: Optional[str] = None,
        error: bool = False,
    ) -> None:
        """Fold one evaluation into the aggregate.

        ``seconds`` defaults to ``stats.seconds`` (the matcher-measured
        wall time); pass the caller-measured end-to-end figure when you
        have one.  ``error=True`` counts the evaluation in ``errors``
        (``run_batch`` rows whose query raised).
        """
        elapsed = stats.seconds if seconds is None else seconds
        counters = stats.as_dict()
        with self._lock:
            self._queries += 1
            if error:
                self._errors += 1
            for name, amount in counters.items():
                self._totals[name] = self._totals.get(name, 0) + amount
            self._samples.append(elapsed)
            threshold, hook = self._slow_threshold, self._slow_hook
        if threshold is not None and elapsed > threshold:
            entry = {"seconds": elapsed, "query": query, "counters": counters}
            if hook is not None:
                hook(entry)
            else:
                logger.warning(
                    "slow query (%.3fs > %.3fs threshold): %s",
                    elapsed,
                    threshold,
                    query if query is not None else "<rule object>",
                )

    def set_slow_query_log(
        self,
        threshold_seconds: Optional[float],
        callback: Optional[SlowQueryHook] = None,
    ) -> None:
        """Arm (or, with ``None``, disarm) the slow-query hook."""
        with self._lock:
            self._slow_threshold = threshold_seconds
            self._slow_hook = callback

    def reset(self) -> None:
        """Drop every aggregate (the hook configuration survives)."""
        with self._lock:
            self._totals.clear()
            self._queries = 0
            self._errors = 0
            self._samples.clear()

    def _reset_after_fork(self) -> None:
        """Reinitialise in a forked child: fresh lock, zero aggregates.

        A pool worker must not report the parent's query history as its
        own, and must not inherit a lock a parent thread held at fork
        time.  The slow-query hook is dropped too — it may close over
        parent-only state (an open log handle, a queue).
        """
        self._lock = threading.Lock()
        self._totals = {}
        self._queries = 0
        self._errors = 0
        self._samples = deque(maxlen=self._samples.maxlen)
        self._slow_threshold = None
        self._slow_hook = None

    # -- reading -------------------------------------------------------------

    @property
    def queries(self) -> int:
        return self._queries

    def totals(self) -> dict[str, float]:
        """Summed :meth:`EvalStats.as_dict` counters over every record."""
        with self._lock:
            return dict(self._totals)

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready aggregate: totals, derived rates, latency histogram.

        Rates divide counter pairs recorded by the engines: the cache hit
        rate is ``cache_hits / (cache_hits + cache_misses)``, the fallback
        rate ``pipeline_fallbacks / (pipeline_fragments +
        pipeline_fallbacks)`` — both ``None`` until a relevant counter
        ticked.  Percentiles cover the most recent ``max_samples``
        evaluations (nearest-rank).

        The ``governance`` block surfaces the resource-governance
        counters (``budget_exceeded``, ``truncated_results``,
        ``degraded_fragments``) explicitly — always present, zero when
        no budgeted query has tripped — so dashboards need not know the
        counters exist before they tick.
        """
        with self._lock:
            totals = dict(self._totals)
            queries = self._queries
            errors = self._errors
            ordered = sorted(self._samples)
        hits = totals.get("cache_hits", 0)
        misses = totals.get("cache_misses", 0)
        plan_hits = totals.get("plan_cache_hits", 0)
        plan_misses = totals.get("plan_cache_misses", 0)
        fragments = totals.get("pipeline_fragments", 0)
        fallbacks = totals.get("pipeline_fallbacks", 0)
        return {
            "governance": {
                "budget_exceeded": int(totals.get("budget_exceeded", 0)),
                "truncated_results": int(totals.get("truncated_results", 0)),
                "degraded_fragments": int(totals.get("degraded_fragments", 0)),
            },
            "queries": queries,
            "errors": errors,
            "totals": totals,
            "cache_hit_rate": (
                hits / (hits + misses) if hits + misses else None
            ),
            "plan_cache_hit_rate": (
                plan_hits / (plan_hits + plan_misses)
                if plan_hits + plan_misses
                else None
            ),
            "pipeline_fallback_rate": (
                fallbacks / (fragments + fallbacks)
                if fragments + fallbacks
                else None
            ),
            "latency": {
                "samples": len(ordered),
                "mean": sum(ordered) / len(ordered) if ordered else 0.0,
                "p50": _percentile(ordered, 0.50),
                "p95": _percentile(ordered, 0.95),
                "max": ordered[-1] if ordered else 0.0,
            },
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


#: Process-wide registry (the CLI records every evaluation here).
global_registry = MetricsRegistry()

# Fork-safety: mirrors the shared caches (see repro.engine.cache).
if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX in CI
    os.register_at_fork(after_in_child=global_registry._reset_after_fork)
