"""Typed document mutations with incremental index maintenance.

Documents used to be frozen snapshots: any change meant "rebuild the index,
recollect statistics, recompile plans".  This module is the write path that
makes them *live*:

* four typed operations — :meth:`MutationBatch.insert_subtree`,
  :meth:`~MutationBatch.delete_subtree`, :meth:`~MutationBatch.update_value`,
  :meth:`~MutationBatch.update_attribute` — batched in a
  :class:`MutationBatch`,
* :func:`apply_batch` validates the whole batch against the document
  *before* any op applies (client errors → :class:`~repro.errors.MutationError`
  with the tree untouched), then applies the ops and incrementally
  maintains every affected :class:`~repro.engine.index.DocumentIndex`
  (gap-label splices, pool updates, statistics deltas — see
  :mod:`repro.engine.index`),
* every committed batch advances the document's monotonically increasing
  ``doc_revision`` (tracked per document object, index or not) and reports
  a :class:`TouchedRegion` — the label intervals, tags, attribute names and
  value-sensitivity of the edit — which is what the subscription layer
  (:mod:`repro.engine.subscribe`) intersects with each registered query's
  footprint to decide whether a re-evaluation can be skipped outright.

Structural ops (insert/delete) bump the index's stats epoch so the plan
cache invalidates that document's plans precisely; attribute/value ops do
not.  Mutation is not thread-safe against concurrent readers of the same
document — callers serialize (the server holds a per-document write lock).

:func:`ops_from_spec` converts the JSON wire form used by the server and
``repro watch`` (paths are element-child index lists from the root) into a
batch.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from ..errors import MutationError
from ..ssd.model import Document, Element, Text
from .index import DocumentIndex

__all__ = [
    "InsertSubtree",
    "DeleteSubtree",
    "UpdateValue",
    "UpdateAttribute",
    "MutationBatch",
    "TouchedRegion",
    "MutationResult",
    "apply_batch",
    "current_revision",
    "ops_from_spec",
]


# -- revision registry --------------------------------------------------------

#: Per-document revision counters.  Kept outside the document (the node
#: model stays pure data) and weakly keyed so dead documents drop out.
_REVISIONS: "weakref.WeakKeyDictionary[Document, int]" = weakref.WeakKeyDictionary()
_REVISIONS_LOCK = threading.Lock()


def current_revision(document: Document) -> int:
    """The document's last committed batch revision (0 = never mutated)."""
    return _REVISIONS.get(document, 0)


def _next_revision(document: Document) -> int:
    with _REVISIONS_LOCK:
        revision = _REVISIONS.get(document, 0) + 1
        _REVISIONS[document] = revision
        return revision


# -- operations ---------------------------------------------------------------


@dataclass(frozen=True)
class InsertSubtree:
    """Attach detached ``subtree`` under ``parent``.

    ``index`` positions it in ``parent.children`` (the raw node list, so
    text nodes count); ``None`` appends.  Out-of-range indexes clamp, as
    ``list.insert`` does.
    """

    parent: Element
    subtree: Element
    index: Optional[int] = None


@dataclass(frozen=True)
class DeleteSubtree:
    """Detach ``target`` (and its whole subtree) from its parent."""

    target: Element


@dataclass(frozen=True)
class UpdateValue:
    """Replace ``target``'s direct text children with one text node."""

    target: Element
    text: str


@dataclass(frozen=True)
class UpdateAttribute:
    """Set (or with ``value=None`` remove) one attribute on ``target``."""

    target: Element
    name: str
    value: Optional[str] = None


Operation = "InsertSubtree | DeleteSubtree | UpdateValue | UpdateAttribute"


@dataclass
class MutationBatch:
    """An ordered group of operations applied atomically by :func:`apply_batch`.

    The builder methods chain::

        batch = (
            MutationBatch()
            .insert_subtree(shelf, new_book)
            .update_attribute(new_book, "year", "2001")
        )
    """

    ops: list = field(default_factory=list)

    def insert_subtree(
        self, parent: Element, subtree: Element, index: Optional[int] = None
    ) -> "MutationBatch":
        self.ops.append(InsertSubtree(parent, subtree, index))
        return self

    def delete_subtree(self, target: Element) -> "MutationBatch":
        self.ops.append(DeleteSubtree(target))
        return self

    def update_value(self, target: Element, text: str) -> "MutationBatch":
        self.ops.append(UpdateValue(target, text))
        return self

    def update_attribute(
        self, target: Element, name: str, value: Optional[str] = None
    ) -> "MutationBatch":
        self.ops.append(UpdateAttribute(target, name, value))
        return self

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator:
        return iter(self.ops)


# -- commit summary -----------------------------------------------------------


@dataclass(frozen=True)
class TouchedRegion:
    """What one committed batch touched, for subscription filtering.

    ``intervals`` are gap-label ``(pre, post)`` ranges of the edited
    subtrees (empty when no index was maintained); ``tags`` and
    ``attributes`` cover every inserted/deleted node and edited attribute;
    ``ancestor_tags`` the tags on the parent chains above the edit points
    (conditions read *recursive* text content, so a value edit can change
    what an ancestor-tag box observes); ``values_changed`` is set by value
    rewrites *and* structural edits (an inserted/deleted subtree changes
    every ancestor's text content).
    """

    intervals: tuple = ()
    tags: frozenset = frozenset()
    attributes: frozenset = frozenset()
    ancestor_tags: frozenset = frozenset()
    values_changed: bool = False
    structural: bool = False


@dataclass(frozen=True)
class MutationResult:
    """Outcome of one committed :class:`MutationBatch`."""

    #: The document's revision after this batch (monotonic, starts at 1).
    doc_revision: int
    #: Number of operations applied.
    applied: int
    #: Whether any op changed tree structure (insert/delete).
    structural: bool
    touched: TouchedRegion
    nodes_added: int = 0
    nodes_removed: int = 0


# -- validation ---------------------------------------------------------------


def _is_live(
    element: Element,
    document: Document,
    inserted_roots: set[int],
    deleted_roots: set[int],
) -> bool:
    """Whether ``element`` will be reachable when its op applies.

    Simulates the batch prefix: an element is live if its self-or-ancestor
    chain hits neither a scheduled deletion nor a dangling top — a
    detached top is fine exactly when it's a subtree scheduled for
    insertion earlier in the batch.
    """
    node = element
    while True:
        if id(node) in deleted_roots:
            return False
        parent = node.parent
        if parent is None:
            return id(node) in inserted_roots
        if isinstance(parent, Document):
            return parent is document and id(node) not in deleted_roots
        node = parent


def _validate(document: Document, batch: MutationBatch) -> None:
    root = document.root
    if root is None:
        raise MutationError("cannot mutate a document with no root element")
    inserted_roots: set[int] = set()
    deleted_roots: set[int] = set()
    for position, op in enumerate(batch):
        where = f"op {position} ({type(op).__name__})"
        if isinstance(op, InsertSubtree):
            if not isinstance(op.subtree, Element):
                raise MutationError(f"{where}: subtree must be an Element")
            if op.subtree.parent is not None:
                raise MutationError(
                    f"{where}: subtree already has a parent; copy() it first"
                )
            if id(op.subtree) in inserted_roots:
                raise MutationError(
                    f"{where}: subtree already scheduled for insertion"
                )
            if op.index is not None and not isinstance(op.index, int):
                raise MutationError(f"{where}: index must be an int or None")
            if not isinstance(op.parent, Element) or not _is_live(
                op.parent, document, inserted_roots, deleted_roots
            ):
                raise MutationError(
                    f"{where}: parent is not part of the document"
                )
            inserted_roots.add(id(op.subtree))
        elif isinstance(op, DeleteSubtree):
            if not isinstance(op.target, Element) or not _is_live(
                op.target, document, inserted_roots, deleted_roots
            ):
                raise MutationError(
                    f"{where}: target is not part of the document"
                )
            if op.target is root:
                raise MutationError(
                    f"{where}: deleting the root element is not supported"
                )
            deleted_roots.add(id(op.target))
        elif isinstance(op, (UpdateValue, UpdateAttribute)):
            if not isinstance(op.target, Element) or not _is_live(
                op.target, document, inserted_roots, deleted_roots
            ):
                raise MutationError(
                    f"{where}: target is not part of the document"
                )
            if isinstance(op, UpdateValue) and not isinstance(op.text, str):
                raise MutationError(f"{where}: text must be a string")
            if isinstance(op, UpdateAttribute):
                if not op.name or not isinstance(op.name, str):
                    raise MutationError(
                        f"{where}: attribute name must be a non-empty string"
                    )
                if op.value is not None and not isinstance(op.value, str):
                    raise MutationError(
                        f"{where}: attribute value must be a string or None"
                    )
        else:
            raise MutationError(f"{where}: unknown operation type")


# -- apply --------------------------------------------------------------------


def _subtree_tags_and_attrs(
    root: Element, tags: set[str], attributes: set[str]
) -> None:
    stack = [root]
    while stack:
        element = stack.pop()
        tags.add(element.tag)
        attributes.update(element.attributes)
        stack.extend(element.child_elements())


def apply_batch(
    document: Document,
    batch: MutationBatch,
    *,
    indexes: Optional[Sequence[DocumentIndex]] = None,
) -> MutationResult:
    """Validate and apply ``batch``, maintaining indexes incrementally.

    ``indexes`` defaults to the shared cache's entry for ``document`` (if
    one exists — never builds one: a document without an index needs no
    maintenance, the next build sees the mutated tree).  Every maintained
    index stays fully consistent: labels, pools, statistics, epoch.

    Raises :class:`~repro.errors.MutationError` before touching anything
    if any op is invalid against the batch-prefix-simulated document.
    """
    _validate(document, batch)
    if indexes is None:
        from .cache import shared_cache

        cached = shared_cache.peek(document)
        maintained: list[DocumentIndex] = [cached] if cached is not None else []
    else:
        maintained = [index for index in indexes if index is not None]

    intervals: list[tuple[int, int]] = []
    tags: set[str] = set()
    attributes: set[str] = set()
    ancestor_tags: set[str] = set()
    values_changed = False
    structural = False
    nodes_added = 0
    nodes_removed = 0
    lead = maintained[0] if maintained else None

    for op in batch:
        anchor = op.parent if isinstance(op, InsertSubtree) else op.target
        ancestor_tags.update(anc.tag for anc in anchor.ancestors())
        if isinstance(op, InsertSubtree):
            ancestor_tags.add(op.parent.tag)
            structural = True
            values_changed = True
            _subtree_tags_and_attrs(op.subtree, tags, attributes)
            if op.index is None:
                op.parent.append(op.subtree)
            else:
                op.parent.insert(op.index, op.subtree)
            for index in maintained:
                nodes = index.note_insert(op.parent, op.subtree)
            nodes_added += op.subtree.size() if not maintained else nodes
            if lead is not None:
                intervals.append(lead.interval(op.subtree))
        elif isinstance(op, DeleteSubtree):
            structural = True
            values_changed = True
            _subtree_tags_and_attrs(op.target, tags, attributes)
            if lead is not None:
                intervals.append(lead.interval(op.target))
            removed = 0
            for index in maintained:
                removed = index.note_delete(op.target)
            parent = op.target.parent
            assert isinstance(parent, Element)
            parent.remove(op.target)
            nodes_removed += removed if maintained else op.target.size()
        elif isinstance(op, UpdateValue):
            values_changed = True
            tags.add(op.target.tag)
            if lead is not None:
                intervals.append(lead.interval(op.target))
            kept = [
                child
                for child in op.target.children
                if not isinstance(child, Text)
            ]
            for child in op.target.children:
                if isinstance(child, Text):
                    child.parent = None
            op.target.children = kept
            if op.text:
                op.target.append(Text(op.text))
            for index in maintained:
                index.note_value_update(op.target)
        else:  # UpdateAttribute
            attributes.add(op.name)
            tags.add(op.target.tag)
            if lead is not None:
                intervals.append(lead.interval(op.target))
            old = op.target.attributes.get(op.name)
            if op.value is None:
                op.target.attributes.pop(op.name, None)
            else:
                op.target.attributes[op.name] = op.value
            for index in maintained:
                index.note_set_attribute(op.target, op.name, old, op.value)

    revision = _next_revision(document)
    for index in maintained:
        index.commit_revision(revision, structural)
    # Element.size() counts text nodes too; node counts from maintained
    # indexes count elements only.  Either way they are work indicators,
    # not invariants.
    return MutationResult(
        doc_revision=revision,
        applied=len(batch),
        structural=structural,
        touched=TouchedRegion(
            intervals=tuple(intervals),
            tags=frozenset(tags),
            attributes=frozenset(attributes),
            ancestor_tags=frozenset(ancestor_tags),
            values_changed=values_changed,
            structural=structural,
        ),
        nodes_added=nodes_added,
        nodes_removed=nodes_removed,
    )


# -- wire form ----------------------------------------------------------------


def _resolve_path(document: Document, path: Sequence[int], where: str) -> Element:
    """Walk element-child indexes from the root ([] = root itself)."""
    node = document.root
    if node is None:
        raise MutationError(f"{where}: document has no root element")
    if not isinstance(path, (list, tuple)):
        raise MutationError(f"{where}: path must be a list of child indexes")
    for step in path:
        if not isinstance(step, int):
            raise MutationError(f"{where}: path steps must be integers")
        children = node.child_elements()
        if not 0 <= step < len(children):
            raise MutationError(
                f"{where}: path step {step} out of range "
                f"(element has {len(children)} element children)"
            )
        node = children[step]
    return node


def _node_index_for_position(parent: Element, position: Optional[int]) -> Optional[int]:
    """Map an element-child position to a raw ``children`` index."""
    if position is None:
        return None
    elements = parent.child_elements()
    if position >= len(elements):
        return None  # append
    return parent.children.index(elements[position])


def ops_from_spec(document: Document, spec: Sequence[dict]) -> MutationBatch:
    """Build a batch from the JSON wire form (server / ``repro watch``).

    Each entry is a dict with an ``op`` key:

    * ``{"op": "insert", "parent": [..], "xml": "<x/>", "index": 0}`` —
      parse ``xml`` and insert it at element-child position ``index``
      (omitted = append) under the element at path ``parent``,
    * ``{"op": "delete", "target": [..]}``,
    * ``{"op": "update_value", "target": [..], "value": "text"}``,
    * ``{"op": "update_attribute", "target": [..], "name": "n",
      "value": "v"}`` (``"value": null`` removes).

    Paths are element-child index lists from the root (``[]`` = root).
    Every path resolves against the tree as it stands when the batch is
    built — i.e. the *pre-batch* snapshot — so a multi-op spec addresses
    distinct nodes by their original coordinates (two ``delete [0]`` ops
    name the same node and fail validation, they do not cascade).
    """
    from ..ssd import parse_document

    batch = MutationBatch()
    if not isinstance(spec, (list, tuple)):
        raise MutationError("mutation spec must be a list of op objects")
    for position, entry in enumerate(spec):
        where = f"spec[{position}]"
        if not isinstance(entry, dict):
            raise MutationError(f"{where}: each op must be an object")
        kind = entry.get("op")
        if kind == "insert":
            parent = _resolve_path(document, entry.get("parent", []), where)
            xml = entry.get("xml")
            if not isinstance(xml, str):
                raise MutationError(f"{where}: insert needs an 'xml' string")
            try:
                fragment = parse_document(xml)
            except Exception as error:
                raise MutationError(f"{where}: bad xml: {error}") from error
            root = fragment.root
            if root is None:
                raise MutationError(f"{where}: xml has no root element")
            fragment.children.remove(root)
            root.parent = None
            index = entry.get("index")
            if index is not None and (
                not isinstance(index, int) or index < 0
            ):
                raise MutationError(
                    f"{where}: index must be a non-negative integer"
                )
            batch.insert_subtree(
                parent, root, _node_index_for_position(parent, index)
            )
        elif kind == "delete":
            batch.delete_subtree(
                _resolve_path(document, entry.get("target", []), where)
            )
        elif kind == "update_value":
            value = entry.get("value")
            if not isinstance(value, str):
                raise MutationError(
                    f"{where}: update_value needs a 'value' string"
                )
            batch.update_value(
                _resolve_path(document, entry.get("target", []), where), value
            )
        elif kind == "update_attribute":
            name = entry.get("name")
            if not isinstance(name, str) or not name:
                raise MutationError(
                    f"{where}: update_attribute needs a 'name' string"
                )
            value = entry.get("value")
            if value is not None and not isinstance(value, str):
                raise MutationError(
                    f"{where}: attribute value must be a string or null"
                )
            batch.update_attribute(
                _resolve_path(document, entry.get("target", []), where),
                name,
                value,
            )
        else:
            raise MutationError(f"{where}: unknown op {kind!r}")
    return batch
