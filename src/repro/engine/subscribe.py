"""Continuous queries over mutable documents.

A :class:`Subscription` registers a compiled query against a document
collection and keeps its binding set current as
:class:`~repro.engine.mutate.MutationBatch` commits land.  The interesting
part is what it *doesn't* do: re-run on every commit.  Each subscription
extracts a static :class:`QueryFootprint` from its rule — the tags,
attribute names and text-reads the query can possibly observe — and a
committed batch's :class:`~repro.engine.mutate.TouchedRegion` is checked
against that footprint first.  A batch that cannot intersect the query
(an ``<author>`` insert under a query over ``price`` elements) is skipped
outright, counted in :attr:`Subscription.skips`; only relevant batches
pay for re-evaluation.

Re-evaluation is from-index, not from-scratch: the typed mutation API
maintains the cached :class:`~repro.engine.index.DocumentIndex` in place,
so the re-run takes a warm index (and, for non-structural batches, a warm
plan-cache) hit.  The old and new binding sets are diffed by
:meth:`~repro.engine.bindings.Binding.key` into a :class:`ResultDelta` —
the rows a consumer must add and remove to stay current, queued until
:meth:`Subscription.poll` drains them.

Footprint soundness hinges on XML-GL's two text semantics: a text circle
(:class:`~repro.xmlgl.ast.TextPattern`) binds its parent's *immediate*
text, but a condition reading an element variable
(:class:`~repro.engine.conditions.ContentOf` through
:class:`~repro.engine.conditions.DocumentAccessor`) sees the *recursive*
``text_content()`` — a value edit deep under a ``book`` changes what a
condition on the ``book`` box observes even though no ``book`` node was
touched.  The footprint therefore distinguishes
:attr:`~QueryFootprint.uses_immediate_text` from
:attr:`~QueryFootprint.uses_deep_text`, and the touched region carries
the *ancestor* tags above every edit point so deep reads can be matched
against them.
"""

from __future__ import annotations

import dataclasses
import itertools
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Union

from ..errors import ReproError
from ..ssd.model import Document
from .bindings import Binding, BindingSet
from .conditions import AttributeOf, ContentOf
from .mutate import MutationResult, TouchedRegion
from .options import MatchOptions
from .stats import EvalStats

__all__ = ["QueryFootprint", "ResultDelta", "Subscription"]

Sources = Union[Document, Mapping[str, Document]]

_SUBSCRIPTION_IDS = itertools.count(1)


@dataclass(frozen=True)
class QueryFootprint:
    """The statically knowable read set of a rule.

    ``wildcard`` is the give-up bit: an untagged element box can bind any
    element, so every structural batch is relevant.  Otherwise ``tags``
    holds every tag named by an element pattern — including patterns
    reached only through *negated* edges, whose disappearance can create
    matches just as their appearance destroys them.  ``attributes`` unions
    attribute-pattern names with every
    :class:`~repro.engine.conditions.AttributeOf` read in a condition.
    """

    wildcard: bool = False
    tags: frozenset[str] = field(default_factory=frozenset)
    attributes: frozenset[str] = field(default_factory=frozenset)
    #: A text circle appears in some graph: the rule reads the *immediate*
    #: text of elements whose tags are in ``tags``.
    uses_immediate_text: bool = False
    #: A condition reads ``ContentOf`` some variable: for element
    #: bindings that is the recursive ``text_content()``, so edits
    #: anywhere *below* a matched element are visible.
    uses_deep_text: bool = False

    @classmethod
    def of_rule(cls, rule: Any) -> "QueryFootprint":
        """Extract the footprint of a :class:`~repro.xmlgl.rule.Rule`.

        Unions over every extract graph plus graph-level and rule-level
        conditions.  Unknown node kinds (future pattern types) set
        ``wildcard`` — the conservative direction is "re-run", never
        "skip".
        """
        from ..xmlgl.ast import AttributePattern, ElementPattern, TextPattern

        wildcard = False
        tags: set[str] = set()
        attributes: set[str] = set()
        immediate = False
        deep = False
        for graph in rule.queries:
            for node in graph.nodes.values():
                if isinstance(node, ElementPattern):
                    if node.tag is None:
                        wildcard = True
                    else:
                        tags.add(node.tag)
                elif isinstance(node, TextPattern):
                    immediate = True
                elif isinstance(node, AttributePattern):
                    attributes.add(node.name)
                else:  # pragma: no cover - future node kinds
                    wildcard = True
            for condition in graph.conditions:
                immediate_c, deep_c = _walk_condition(condition, attributes)
                immediate = immediate or immediate_c
                deep = deep or deep_c
        for condition in rule.conditions:
            immediate_c, deep_c = _walk_condition(condition, attributes)
            immediate = immediate or immediate_c
            deep = deep or deep_c
        return cls(
            wildcard=wildcard,
            tags=frozenset(tags),
            attributes=frozenset(attributes),
            uses_immediate_text=immediate,
            uses_deep_text=deep,
        )

    def affected_by(self, touched: TouchedRegion) -> bool:
        """Whether a batch touching ``touched`` can change the binding set.

        The decision errs towards ``True``: a skip must be *provably*
        invisible to the query.  The cases, in order:

        * wildcard rules see every structural edit, every value edit when
          they read text at all, and every touched attribute they name;
        * structural edits matter when an inserted/deleted subtree's tags
          meet the footprint (an unrelated subtree cannot create or
          destroy a match over these tags);
        * attribute edits matter when the names meet;
        * value edits matter to immediate-text readers when the edited
          element's tag is in the footprint, and to deep-text readers
          additionally when any *ancestor* of the edit point is — the
          recursive-``text_content`` case.
        """
        reads_text = self.uses_immediate_text or self.uses_deep_text
        if self.wildcard:
            return (
                touched.structural
                or (touched.values_changed and reads_text)
                or bool(self.attributes & touched.attributes)
            )
        tag_hit = bool(self.tags & touched.tags)
        if touched.structural and tag_hit:
            return True
        if self.attributes & touched.attributes:
            return True
        if touched.values_changed:
            if self.uses_immediate_text and tag_hit:
                return True
            if self.uses_deep_text and (
                tag_hit or bool(self.tags & touched.ancestor_tags)
            ):
                return True
        return False


def _walk_condition(condition: Any, attributes: set[str]) -> tuple[bool, bool]:
    """Collect text/attribute reads from a condition tree.

    Conditions are nested frozen dataclasses (``And(Comparison(ContentOf,
    Const), ...)``), so a generic dataclass-field walk reaches every
    operand without enumerating the combinator zoo.  Returns
    ``(uses_immediate_text, uses_deep_text)`` and adds ``AttributeOf``
    names to ``attributes`` in place.  ``ContentOf`` is reported as *both*
    reads: the variable may bind a text node (immediate) or an element
    (recursive ``text_content``), and which cannot be known statically.
    """
    immediate = False
    deep = False
    stack = [condition]
    while stack:
        node = stack.pop()
        if isinstance(node, ContentOf):
            immediate = True
            deep = True
            continue
        if isinstance(node, AttributeOf):
            attributes.add(node.name)
            continue
        if dataclasses.is_dataclass(node) and not isinstance(node, type):
            for f in dataclasses.fields(node):
                value = getattr(node, f.name)
                if isinstance(value, (tuple, list)):
                    stack.extend(value)
                else:
                    stack.append(value)
    return immediate, deep


@dataclass(frozen=True)
class ResultDelta:
    """The binding-set change one committed batch produced.

    ``added`` and ``removed`` are the rows entering and leaving the result
    (diffed by :meth:`~repro.engine.bindings.Binding.key`, so a row is
    "the same" when every variable binds the identical node or equal
    scalar).  ``revision`` is the document revision whose commit produced
    the delta; deltas are queued in revision order.
    """

    revision: int
    added: tuple[Binding, ...] = ()
    removed: tuple[Binding, ...] = ()

    @property
    def empty(self) -> bool:
        return not self.added and not self.removed

    def describe(self) -> str:
        return (
            f"rev {self.revision}: +{len(self.added)} -{len(self.removed)}"
        )


class Subscription:
    """A continuous query: re-evaluated on relevant commits, diffed.

    Created by :meth:`repro.session.QuerySession.subscribe`; hold one and
    call :meth:`poll` (or :meth:`wait`) to drain deltas.  Thread-safe: the
    session commits batches (and hence calls :meth:`notify`) from whatever
    thread mutates, while consumers poll from their own.

    The initial evaluation happens eagerly at construction, so
    :attr:`rows` is live from the start and the first delta is relative
    to it.
    """

    def __init__(
        self,
        query: Union[str, Any],
        sources: Sources,
        *,
        options: Optional[MatchOptions] = None,
        indexes: Optional[Any] = None,
        plans: Optional[Any] = None,
    ) -> None:
        from ..xmlgl.evaluator import lookup_or_compile

        self.id = f"sub-{next(_SUBSCRIPTION_IDS)}"
        self._sources = sources
        self._options = options
        self._indexes = indexes
        self._plans = plans
        stats = EvalStats()
        rule, source_text, _plan = lookup_or_compile(
            query,
            sources,
            indexes=indexes,
            stats=stats,
            plans=plans,
            rewrite=options.rewrite if options is not None else True,
        )
        self.rule = rule
        self.source_text = source_text
        #: The rewritten rule's read set — what :meth:`notify` checks
        #: batches against.
        self.footprint = QueryFootprint.of_rule(rule)
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self._pending: deque[ResultDelta] = deque()
        self._rows: dict[tuple, Binding] = {}
        self._closed = False
        #: Re-evaluations actually run / batches skipped by the footprint.
        self.evals = 0
        self.skips = 0
        #: Revision of the last commit this subscription observed (whether
        #: it re-ran or skipped); 0 until the first notify.
        self.last_revision = 0
        self._rows = self._evaluate()
        self.evals += 1

    # -- evaluation ------------------------------------------------------------

    def _evaluate(self) -> dict[tuple, Binding]:
        """One full run of the rule; rows keyed for diffing."""
        from ..xmlgl.evaluator import lookup_or_compile, rule_bindings

        stats = EvalStats()
        # Re-resolve the plan each run: the cache key embeds the indexes'
        # stats epochs, so non-structural commits take a warm hit while a
        # structural commit (epoch bump) recompiles against fresh
        # statistics — exactly the staleness contract the planner wants.
        rule, _text, plan = lookup_or_compile(
            self.source_text if self.source_text is not None else self.rule,
            self._sources,
            parsed=self.rule,
            indexes=self._indexes,
            stats=stats,
            plans=self._plans,
            rewrite=self._options.rewrite if self._options is not None else True,
        )
        bindings: BindingSet = rule_bindings(
            rule,
            self._sources,
            options=self._options,
            stats=stats,
            indexes=self._indexes,
            plan=plan,
        )
        rows: dict[tuple, Binding] = {}
        for binding in bindings:
            rows[binding.key()] = binding
        return rows

    # -- commit intake ---------------------------------------------------------

    def notify(self, result: MutationResult) -> Optional[ResultDelta]:
        """Observe one committed batch; re-run if relevant.

        Returns the delta when the batch was relevant (possibly
        :attr:`ResultDelta.empty` — relevance is conservative), ``None``
        when the footprint proved it invisible.  Non-empty deltas are
        queued for :meth:`poll`.
        """
        with self._lock:
            if self._closed:
                return None
            self.last_revision = result.doc_revision
            if not self.footprint.affected_by(result.touched):
                self.skips += 1
                return None
        # Evaluate outside the lock: matching can be slow and pollers
        # must not block on it.  Commits are serialised by the caller
        # (the session holds its mutation lock across notify), so two
        # notifies never race each other.
        new_rows = self._evaluate()
        with self._lock:
            if self._closed:
                return None
            self.evals += 1
            old_rows = self._rows
            added = tuple(
                binding for key, binding in new_rows.items() if key not in old_rows
            )
            removed = tuple(
                binding for key, binding in old_rows.items() if key not in new_rows
            )
            self._rows = new_rows
            delta = ResultDelta(
                revision=result.doc_revision, added=added, removed=removed
            )
            if not delta.empty:
                self._pending.append(delta)
                self._changed.notify_all()
            return delta

    # -- consumption -----------------------------------------------------------

    def rows(self) -> list[Binding]:
        """The current binding rows (a snapshot copy)."""
        with self._lock:
            return list(self._rows.values())

    def poll(self) -> list[ResultDelta]:
        """Drain queued deltas (oldest first); empty when current."""
        with self._lock:
            drained = list(self._pending)
            self._pending.clear()
            return drained

    def wait(self, timeout: Optional[float] = None) -> list[ResultDelta]:
        """Block until at least one delta is queued, then drain.

        Returns ``[]`` on timeout or when the subscription closes while
        waiting — the long-poll primitive the server builds on.
        """
        with self._lock:
            if not self._pending and not self._closed:
                self._changed.wait(timeout)
            drained = list(self._pending)
            self._pending.clear()
            return drained

    def wait_pending(self, timeout: Optional[float] = None) -> bool:
        """Block until a delta is queued *without* draining it.

        The server parks long-polls here (no admission slot held), then
        drains with :meth:`poll` under admission.  True when something is
        queued; False on timeout or close.
        """
        with self._lock:
            if not self._pending and not self._closed:
                self._changed.wait(timeout)
            return bool(self._pending)

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._pending)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop observing; wakes any waiter with whatever is queued."""
        with self._lock:
            self._closed = True
            self._changed.notify_all()

    def describe(self) -> str:
        with self._lock:
            return (
                f"{self.id}: {len(self._rows)} rows, {self.evals} evals, "
                f"{self.skips} skips, rev {self.last_revision}"
            )


def check_subscribable(query: Any) -> None:
    """Raise :class:`ReproError` for rules a subscription cannot track.

    Currently everything evaluable is subscribable; the hook exists so the
    session raises one typed error from one place if that changes.
    """
    if query is None:
        raise ReproError("cannot subscribe to an empty query")
