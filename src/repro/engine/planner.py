"""Match-order planning.

Backtracking pattern matching is exponentially sensitive to the order in
which pattern nodes are assigned.  The planner picks an order that is

1. *selective first* — start from the pattern node with the fewest data
   candidates (estimated from index label counts), and
2. *connected* — every subsequent node is adjacent to an already-planned
   node whenever the pattern is connected, so structural checks prune as
   early as possible.

The planner is deliberately engine-agnostic: it sees pattern nodes as
opaque ids with a candidate-count estimate and an adjacency relation, so
the XML-GL document matcher and the WG-Log graph matcher share it.  The
``enabled=False`` path preserves the input order — that is the ablation
baseline (EXT-A1 in DESIGN.md).
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Mapping, Sequence

__all__ = ["plan_order"]

NodeId = Hashable


def plan_order(
    nodes: Sequence[NodeId],
    estimate: Callable[[NodeId], int],
    adjacency: Mapping[NodeId, Iterable[NodeId]],
    enabled: bool = True,
) -> list[NodeId]:
    """Choose an assignment order for pattern nodes.

    Args:
        nodes: the pattern node ids to order.
        estimate: candidate-count estimate per node (lower = more selective).
        adjacency: undirected pattern adjacency (ids absent from the map are
            treated as isolated).
        enabled: when false, return ``nodes`` unchanged (planner ablation).

    Returns:
        A list containing every id from ``nodes`` exactly once.
    """
    if not enabled:
        return list(nodes)
    remaining = list(nodes)
    estimates = {node: estimate(node) for node in remaining}
    order: list[NodeId] = []
    placed: set[NodeId] = set()

    while remaining:
        def rank(node: NodeId) -> tuple:
            attached = sum(1 for n in adjacency.get(node, ()) if n in placed)
            return (-attached, estimates[node])

        best = min(remaining, key=rank)
        order.append(best)
        placed.add(best)
        remaining.remove(best)
    return order
