"""Match-order and join-tree planning.

Backtracking pattern matching is exponentially sensitive to the order in
which pattern nodes are assigned, and the set-at-a-time pipeline needs a
rooted join tree whose reduction order visits small relations first.  The
planner picks an order that is

1. *selective first* — start from the pattern node with the fewest data
   candidates (estimated from index label counts), and
2. *connected* — every subsequent node is adjacent to an already-planned
   node whenever the pattern is connected, so structural checks (or
   semi-joins) prune as early as possible.

The planner is deliberately engine-agnostic: it sees pattern nodes as
opaque ids with a candidate-count estimate and an adjacency relation, so
the XML-GL document matcher, the WG-Log graph matcher and the join
pipeline all share it.  The ``enabled=False`` path preserves the input
order — that is the ablation baseline (EXT-A1 in DESIGN.md).

The selection loop is heap-based: attachment counts (how many already
placed neighbours a node has) are maintained incrementally and stale heap
entries are discarded lazily, so planning costs ``O((N + E) log N)``
instead of the quadratic ``min(remaining, key=rank)`` rescan it replaces —
noticeable now that the pipeline plans a join tree per query fragment.
"""

from __future__ import annotations

import heapq
from typing import Callable, Hashable, Iterable, Mapping, Sequence

__all__ = ["plan_order"]

NodeId = Hashable


def plan_order(
    nodes: Sequence[NodeId],
    estimate: Callable[[NodeId], int],
    adjacency: Mapping[NodeId, Iterable[NodeId]],
    enabled: bool = True,
) -> list[NodeId]:
    """Choose an assignment order for pattern nodes.

    Args:
        nodes: the pattern node ids to order.
        estimate: candidate-count estimate per node (lower = more selective).
        adjacency: undirected pattern adjacency (ids absent from the map are
            treated as isolated).
        enabled: when false, return ``nodes`` unchanged (planner ablation).

    Returns:
        A list containing every id from ``nodes`` exactly once.  Ranking is
        most-attached-first, then lowest estimate, then input position (the
        same total order the quadratic rescan produced).
    """
    if not enabled:
        return list(nodes)
    estimates = {node: estimate(node) for node in nodes}
    position = {node: i for i, node in enumerate(nodes)}
    attached = {node: 0 for node in nodes}

    # Heap entries are (-attached, estimate, position); stale entries (an
    # attachment count bumped after push) are skipped on pop.
    heap: list[tuple[int, int, int]] = [
        (0, estimates[node], position[node]) for node in nodes
    ]
    heapq.heapify(heap)
    by_position = list(nodes)

    order: list[NodeId] = []
    placed: set[NodeId] = set()
    while heap:
        neg_attached, _, pos = heapq.heappop(heap)
        node = by_position[pos]
        if node in placed or -neg_attached != attached[node]:
            continue
        order.append(node)
        placed.add(node)
        for neighbour in adjacency.get(node, ()):
            if neighbour in attached and neighbour not in placed:
                attached[neighbour] += 1
                heapq.heappush(
                    heap,
                    (-attached[neighbour], estimates[neighbour], position[neighbour]),
                )
    return order
