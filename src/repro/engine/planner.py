"""Match-order and join-tree planning.

Backtracking pattern matching is exponentially sensitive to the order in
which pattern nodes are assigned, and the set-at-a-time pipeline needs a
rooted join tree whose reduction order visits small relations first.  The
planner picks an order that is

1. *selective first* — start from the pattern node with the fewest data
   candidates (estimated from index label counts), and
2. *connected* — every subsequent node is adjacent to an already-planned
   node whenever the pattern is connected, so structural checks (or
   semi-joins) prune as early as possible.

The planner is deliberately engine-agnostic: it sees pattern nodes as
opaque ids with a candidate-count estimate and an adjacency relation, so
the XML-GL document matcher, the WG-Log graph matcher and the join
pipeline all share it.  The ``enabled=False`` path preserves the input
order — that is the ablation baseline (EXT-A1 in DESIGN.md).

The selection loop is heap-based: attachment counts (how many already
placed neighbours a node has) are maintained incrementally and stale heap
entries are discarded lazily, so planning costs ``O((N + E) log N)``
instead of the quadratic ``min(remaining, key=rank)`` rescan it replaces —
noticeable now that the pipeline plans a join tree per query fragment.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Mapping, Sequence

__all__ = ["FragmentCosts", "choose_fragment_engine", "plan_order"]

NodeId = Hashable


def plan_order(
    nodes: Sequence[NodeId],
    estimate: Callable[[NodeId], int],
    adjacency: Mapping[NodeId, Iterable[NodeId]],
    enabled: bool = True,
) -> list[NodeId]:
    """Choose an assignment order for pattern nodes.

    Args:
        nodes: the pattern node ids to order.
        estimate: candidate-count estimate per node (lower = more selective).
        adjacency: undirected pattern adjacency (ids absent from the map are
            treated as isolated).
        enabled: when false, return ``nodes`` unchanged (planner ablation).

    Returns:
        A list containing every id from ``nodes`` exactly once.  Ranking is
        most-attached-first, then lowest estimate, then input position (the
        same total order the quadratic rescan produced).
    """
    if not enabled:
        return list(nodes)
    estimates = {node: estimate(node) for node in nodes}
    position = {node: i for i, node in enumerate(nodes)}
    attached = {node: 0 for node in nodes}

    # Heap entries are (-attached, estimate, position); stale entries (an
    # attachment count bumped after push) are skipped on pop.
    heap: list[tuple[int, int, int]] = [
        (0, estimates[node], position[node]) for node in nodes
    ]
    heapq.heapify(heap)
    by_position = list(nodes)

    order: list[NodeId] = []
    placed: set[NodeId] = set()
    while heap:
        neg_attached, _, pos = heapq.heappop(heap)
        node = by_position[pos]
        if node in placed or -neg_attached != attached[node]:
            continue
        order.append(node)
        placed.add(node)
        for neighbour in adjacency.get(node, ()):
            if neighbour in attached and neighbour not in placed:
                attached[neighbour] += 1
                heapq.heappush(
                    heap,
                    (-attached[neighbour], estimates[neighbour], position[neighbour]),
                )
    return order


@dataclass(frozen=True)
class FragmentCosts:
    """Outcome of the pipeline-vs-backtracking cost comparison."""

    #: The cheaper engine: ``"pipeline"`` or ``"backtracking"``.
    engine: str
    #: Estimated set-at-a-time cost (pool + relation materialisation + rows).
    pipeline: float
    #: Estimated node-at-a-time cost (candidates enumerated over the walk).
    backtracking: float
    #: Estimated result rows of the fragment.
    rows: float


#: Per-item cost discount of columnar pipeline materialisation relative
#: to the cost model's common currency (one per-candidate step of the
#: backtracking walk, or one tuple-pipeline pool/relation item — both
#: Python-level loop iterations).  Columnar pools and relations are flat
#: int columns built by bisect / vectorised kernels, so their per-item
#: cost is C-level: calibrated against bench_smoke fragment timings,
#: where a kernel item runs ~20x cheaper than a walk step.  Assembled
#: rows stay undiscounted — they materialise node objects either way.
_COLUMNAR_DISCOUNT = 0.05


def choose_fragment_engine(
    pool_sizes: Mapping[NodeId, float],
    edge_pairs: Sequence[tuple[NodeId, NodeId, float]],
    enabled: bool = True,
    columnar: bool = False,
) -> FragmentCosts:
    """Cost-compare one acyclic fragment's two evaluation strategies.

    Args:
        pool_sizes: per-box candidate-pool size (after static narrowing).
        edge_pairs: ``(parent, child, estimated pair count)`` per
            containment arc, from
            :meth:`repro.engine.estimator.CardinalityEstimator.scaled_edge_pairs`.
        enabled: forwarded to :func:`plan_order` (planner ablation keeps
            the drawing order).
        columnar: the pipeline under comparison runs on the columnar
            kernels — pool and relation materialisation is discounted by
            ``_COLUMNAR_DISCOUNT`` (assembled rows cost the same: they
            materialise either way).

    The backtracking estimate walks the same selective-first order the
    engine would use: an unattached box scans its whole pool per partial
    assignment; an attached box enumerates an interval-verified candidate
    pool whose average size is the incident relation's pairs divided by
    the already-placed endpoint's pool (the best such edge wins, matching
    the engine's pool intersection).  The pipeline estimate charges every
    pool and relation once — set-at-a-time work is data-size-bound, not
    result-size-bound — plus the assembled rows.  Ties go to backtracking:
    when both walks touch the same candidates, node-at-a-time avoids
    materialising relations.
    """
    nodes = list(pool_sizes)
    adjacency: dict[NodeId, list[NodeId]] = {n: [] for n in nodes}
    incident: dict[NodeId, list[tuple[NodeId, float]]] = {n: [] for n in nodes}
    for parent, child, pairs in edge_pairs:
        adjacency[parent].append(child)
        adjacency[child].append(parent)
        incident[parent].append((child, pairs))
        incident[child].append((parent, pairs))
    order = plan_order(
        nodes,
        estimate=lambda n: pool_sizes[n],  # type: ignore[index,return-value]
        adjacency=adjacency,
        enabled=enabled,
    )
    placed: set[NodeId] = set()
    rows = 1.0
    backtracking = 0.0
    for node in order:
        branches = [
            pairs / max(1.0, float(pool_sizes[other]))
            for other, pairs in incident[node]
            if other in placed
        ]
        if branches:
            branch = min(branches)
            backtracking += rows * branch
            rows *= branch
        else:
            pool = float(pool_sizes[node])
            backtracking += rows * pool
            rows *= pool
        placed.add(node)
    materialise = float(sum(pool_sizes.values())) + float(
        sum(pairs for _, _, pairs in edge_pairs)
    )
    if columnar:
        materialise *= _COLUMNAR_DISCOUNT
    pipeline = materialise + rows
    engine = "backtracking" if backtracking <= pipeline else "pipeline"
    return FragmentCosts(
        engine=engine, pipeline=pipeline, backtracking=backtracking, rows=rows
    )
