"""Evaluation statistics.

Both engines thread an :class:`EvalStats` object through matching so
benchmarks and the ablation study can report *work done* (candidates tried,
bindings produced) rather than wall-clock time alone.  ``seconds``
accumulates evaluation wall time, and the ``interval_*`` counters report
how often the interval-encoded structural index answered a question the
naive path would have answered by scanning:

* ``interval_lookups`` — descendant pools served by a bisect range instead
  of a subtree walk;
* ``interval_candidates`` — candidates enumerated from interval-verified
  pools, where every incident structural constraint already holds by
  construction (no trial-and-error, hence not ``candidates_tried``);
* ``edge_checks`` — structural checks performed: per candidate on the scan
  path, once per derived pool on the indexed path;
* ``preflight_skips`` — evaluations short-circuited by the static
  pre-flight (:mod:`repro.analysis.preflight`): the query was proved
  unsatisfiable before any matching work.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["EvalStats"]

_COUNTERS = (
    "candidates_tried",
    "edge_checks",
    "condition_checks",
    "bindings_produced",
    "index_lookups",
    "full_scans",
    "interval_lookups",
    "interval_candidates",
    "preflight_skips",
    "seconds",
)


@dataclass
class EvalStats:
    """Counters accumulated during one query evaluation."""

    candidates_tried: int = 0
    edge_checks: int = 0
    condition_checks: int = 0
    bindings_produced: int = 0
    index_lookups: int = 0
    full_scans: int = 0
    interval_lookups: int = 0
    interval_candidates: int = 0
    preflight_skips: int = 0
    seconds: float = 0.0
    extra: dict[str, int] = field(default_factory=dict)

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment a named ad-hoc counter."""
        self.extra[counter] = self.extra.get(counter, 0) + amount

    @contextmanager
    def timed(self) -> Iterator["EvalStats"]:
        """Accumulate the wall time of the ``with`` body into ``seconds``."""
        started = time.perf_counter()
        try:
            yield self
        finally:
            self.seconds += time.perf_counter() - started

    def as_dict(self) -> dict[str, float]:
        """Flat dict of every counter (for reports)."""
        base: dict[str, float] = {name: getattr(self, name) for name in _COUNTERS}
        base.update(self.extra)
        return base

    def __add__(self, other: "EvalStats") -> "EvalStats":
        merged = EvalStats(
            **{name: getattr(self, name) + getattr(other, name) for name in _COUNTERS}
        )
        for key in set(self.extra) | set(other.extra):
            merged.extra[key] = self.extra.get(key, 0) + other.extra.get(key, 0)
        return merged
