"""Evaluation statistics.

Both engines thread an :class:`EvalStats` object through matching so
benchmarks and the ablation study can report *work done* (candidates tried,
bindings produced) rather than wall-clock time alone.  ``seconds``
accumulates evaluation wall time, and the ``interval_*`` counters report
how often the interval-encoded structural index answered a question the
naive path would have answered by scanning:

* ``interval_lookups`` — descendant pools served by a bisect range instead
  of a subtree walk;
* ``interval_candidates`` — candidates enumerated from interval-verified
  pools, where every incident structural constraint already holds by
  construction (no trial-and-error, hence not ``candidates_tried``);
* ``edge_checks`` — structural checks performed: per candidate on the scan
  path, once per derived pool on the indexed path;
* ``preflight_skips`` — evaluations short-circuited by the static
  pre-flight (:mod:`repro.analysis.preflight`): the query was proved
  unsatisfiable before any matching work;
* ``preflight_runs`` — times the static pre-flight analysis actually
  *executed* during this evaluation.  Cached compiled plans carry their
  preflight verdict, so a warm plan-cache hit evaluates with
  ``preflight_runs == 0`` — the counter is the regression guard for
  "warm hits don't re-run analysis".

The set-at-a-time pipeline (:mod:`repro.engine.pipeline`) adds its own
family, mirroring the interval convention that wholesale set operations are
counted separately from per-candidate trial-and-error:

* ``semijoins`` — semi-join reduction passes over pool/relation pairs;
* ``semijoin_dropped`` — candidates eliminated by those passes (work the
  backtracking core would have discovered by failing, one trial at a time);
* ``hashjoin_rows`` — rows produced by hash joins (tree assembly plus
  cross-fragment equi-joins);
* ``relation_pairs`` — pairs materialised in binary edge relations;
* ``pipeline_fragments`` — query fragments evaluated set-at-a-time;
* ``pipeline_fallbacks`` — fragments handed back to the backtracking core
  (cyclic, ordered, negated or path-edge fragments);
* ``cache_hits`` / ``cache_misses`` — shared
  :class:`~repro.engine.cache.DocumentIndexCache` lookups served from /
  missing the cache during this evaluation;
* ``plan_cache_hits`` / ``plan_cache_misses`` — compiled-plan lookups
  (:mod:`repro.engine.plan_cache`) served from / missing the plan cache
  (a hit skips parse, validation, preflight and graph analysis).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:
    from .limits import BudgetState
    from .trace import Tracer

__all__ = ["EvalStats"]

_COUNTERS = (
    "candidates_tried",
    "edge_checks",
    "condition_checks",
    "bindings_produced",
    "index_lookups",
    "full_scans",
    "interval_lookups",
    "interval_candidates",
    "preflight_skips",
    "preflight_runs",
    "semijoins",
    "semijoin_dropped",
    "hashjoin_rows",
    "relation_pairs",
    "pipeline_fragments",
    "pipeline_fallbacks",
    "cache_hits",
    "cache_misses",
    "plan_cache_hits",
    "plan_cache_misses",
    "seconds",
)


@dataclass
class EvalStats:
    """Counters accumulated during one query evaluation."""

    candidates_tried: int = 0
    edge_checks: int = 0
    condition_checks: int = 0
    bindings_produced: int = 0
    index_lookups: int = 0
    full_scans: int = 0
    interval_lookups: int = 0
    interval_candidates: int = 0
    preflight_skips: int = 0
    preflight_runs: int = 0
    semijoins: int = 0
    semijoin_dropped: int = 0
    hashjoin_rows: int = 0
    relation_pairs: int = 0
    pipeline_fragments: int = 0
    pipeline_fallbacks: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    seconds: float = 0.0
    extra: dict[str, int] = field(default_factory=dict)
    #: Optional span recorder (:class:`repro.engine.trace.Tracer`).  Not a
    #: counter: excluded from :meth:`as_dict`, and merging keeps the first
    #: non-``None`` tracer.  Instrumentation sites guard on ``is None``, so
    #: the default costs nothing on the hot path.
    trace: Optional["Tracer"] = field(default=None, repr=False, compare=False)
    #: Optional armed budget (:class:`repro.engine.limits.BudgetState`).
    #: Rides along exactly like ``trace``: not a counter, excluded from
    #: :meth:`as_dict`, merging keeps the first non-``None`` state, and
    #: check sites guard on ``is None`` so an unbudgeted run does
    #: byte-identical work (the bench_smoke governance guard asserts it).
    budget: Optional["BudgetState"] = field(default=None, repr=False, compare=False)

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment a named ad-hoc counter."""
        self.extra[counter] = self.extra.get(counter, 0) + amount

    @contextmanager
    def timed(self) -> Iterator["EvalStats"]:
        """Accumulate the wall time of the ``with`` body into ``seconds``."""
        started = time.perf_counter()
        try:
            yield self
        finally:
            self.seconds += time.perf_counter() - started

    def as_dict(self) -> dict[str, float]:
        """Flat dict of every counter (for reports)."""
        base: dict[str, float] = {name: getattr(self, name) for name in _COUNTERS}
        base.update(self.extra)
        return base

    @classmethod
    def from_counters(cls, counters: "dict[str, float]") -> "EvalStats":
        """Rebuild an :class:`EvalStats` from an :meth:`as_dict` snapshot.

        The pickle boundary of sharded execution
        (:mod:`repro.engine.shard`) ships counters as plain dicts — a
        worker's stats carry a tracer slot and an armed budget that must
        not cross processes.  Unknown names land in ``extra``, so ad-hoc
        ``bump`` counters round-trip too.
        """
        stats = cls()
        for name, amount in counters.items():
            if name in _COUNTERS:
                setattr(stats, name, amount if name == "seconds" else int(amount))
            else:
                stats.extra[name] = int(amount)
        return stats

    def __add__(self, other: "EvalStats") -> "EvalStats":
        merged = EvalStats(
            **{name: getattr(self, name) + getattr(other, name) for name in _COUNTERS}
        )
        for key in set(self.extra) | set(other.extra):
            merged.extra[key] = self.extra.get(key, 0) + other.extra.get(key, 0)
        merged.trace = self.trace if self.trace is not None else other.trace
        merged.budget = self.budget if self.budget is not None else other.budget
        return merged
