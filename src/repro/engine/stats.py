"""Evaluation statistics.

Both engines thread an :class:`EvalStats` object through matching so
benchmarks and the ablation study can report *work done* (candidates tried,
bindings produced) rather than wall-clock time alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EvalStats"]


@dataclass
class EvalStats:
    """Counters accumulated during one query evaluation."""

    candidates_tried: int = 0
    edge_checks: int = 0
    condition_checks: int = 0
    bindings_produced: int = 0
    index_lookups: int = 0
    full_scans: int = 0
    extra: dict[str, int] = field(default_factory=dict)

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment a named ad-hoc counter."""
        self.extra[counter] = self.extra.get(counter, 0) + amount

    def as_dict(self) -> dict[str, int]:
        """Flat dict of every counter (for reports)."""
        base = {
            "candidates_tried": self.candidates_tried,
            "edge_checks": self.edge_checks,
            "condition_checks": self.condition_checks,
            "bindings_produced": self.bindings_produced,
            "index_lookups": self.index_lookups,
            "full_scans": self.full_scans,
        }
        base.update(self.extra)
        return base

    def __add__(self, other: "EvalStats") -> "EvalStats":
        merged = EvalStats(
            candidates_tried=self.candidates_tried + other.candidates_tried,
            edge_checks=self.edge_checks + other.edge_checks,
            condition_checks=self.condition_checks + other.condition_checks,
            bindings_produced=self.bindings_produced + other.bindings_produced,
            index_lookups=self.index_lookups + other.index_lookups,
            full_scans=self.full_scans + other.full_scans,
        )
        for key in set(self.extra) | set(other.extra):
            merged.extra[key] = self.extra.get(key, 0) + other.extra.get(key, 0)
        return merged
