"""Process-pool sharded corpus execution.

The set-at-a-time pipeline (columnar since :mod:`repro.engine.columns`)
saturates one core; corpus-scale workloads — the same query over hundreds
of documents, or a batch of queries over one collection — need the other
cores, and Python threads cannot provide them for CPU-bound matching.
:class:`ShardedExecutor` fans evaluations out over a
:class:`~concurrent.futures.ProcessPoolExecutor`:

* **Pickle boundary.**  Workers never receive live documents, indexes or
  compiled plans.  A :class:`ShardTask` carries the query's *DSL text* and
  the source documents' *serialized XML* — compact, versionless, and
  trivially picklable.  Each worker parses once and then leans on its own
  process-local shared caches, so a worker evaluating many tasks over one
  corpus pays the parse/index cost once (the task-spec tuple keys a small
  per-worker revival memo).
* **Fork safety.**  The process-wide singletons (``shared_cache``,
  ``shared_plans``, ``global_registry``) register ``os.register_at_fork``
  hooks that reinitialise them — fresh locks, empty state — in forked
  children, and the pool initialiser calls :func:`reset_worker_state`
  explicitly so spawn/forkserver workers get the same guarantee.
* **Budgets per shard.**  A :class:`~repro.engine.limits.QueryBudget` in
  the task is armed inside the worker, so deadlines are measured from the
  shard's own start and a tripped limit is reported as a typed error spec
  on that shard's :class:`ShardOutcome` — sibling shards are untouched.
* **Cooperative cancellation fan-out.**  The driver's
  :class:`~repro.engine.limits.CancelToken` is bridged onto one
  ``multiprocessing.Event`` shared with every worker; worker-side
  evaluations poll it at their ordinary budget check sites and abort with
  :class:`~repro.errors.QueryCancelled`.
* **Merge semantics.**  Per-shard ``EvalStats`` cross the boundary as
  counter dicts and merge by summation (:func:`merge_stats`); result
  documents cross as serialized XML and are re-parsed on the driver.
  Shard outcomes are keyed by their task position, so merged rows are
  order-stable regardless of completion order.

Two granularities are offered: :meth:`ShardedExecutor.run_batch` (one
task per query — the engine behind
``QuerySession.run_batch(executor="process")``) and
:meth:`ShardedExecutor.map_corpus` (one query over many documents,
grouped into element-count-balanced shards via
:func:`repro.engine.estimator.balanced_partition`).  For one giant
document, :func:`shard_document` splits it by top-level subtree and
:func:`merge_shard_results` reassembles the per-shard result documents —
sound for queries whose matches stay inside a single top-level subtree
and whose construct part is collect-style (no cross-shard aggregation).
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Union

from ..errors import (
    BudgetExceeded,
    DeadlineExceeded,
    EvaluationError,
    QueryCancelled,
    ReproError,
)
from ..ssd.model import Document, Element
from .estimator import balanced_partition
from .limits import CancelToken, QueryBudget, arm_budget
from .options import MatchOptions
from .stats import EvalStats

__all__ = [
    "CorpusRun",
    "ShardOutcome",
    "ShardTask",
    "ShardedExecutor",
    "merge_shard_results",
    "merge_stats",
    "reset_worker_state",
    "serialize_sources",
    "shard_document",
]

Sources = Union[Document, Mapping[str, Document]]

#: Revived source sets kept per worker (task specs repeat across a batch).
_REVIVAL_MEMO_BOUND = 8

#: How often (seconds) the driver-side watcher polls the caller's
#: CancelToken to fan cancellation out to the worker processes.
_CANCEL_POLL_INTERVAL = 0.05


# -- task specs (the pickle boundary) ----------------------------------------


@dataclass(frozen=True)
class ShardTask:
    """One picklable unit of work: query text + serialized sources.

    ``sources`` is a tuple of ``(name, xml_text)`` pairs; the single
    reserved name ``""`` means an unnamed single-document source (revived
    as a bare :class:`~repro.ssd.model.Document`, not a mapping).
    ``options`` must not request tracing — span trees cannot cross the
    pickle boundary.
    """

    position: int
    query: str
    sources: tuple[tuple[str, str], ...]
    options: Optional[MatchOptions] = None
    budget: Optional[QueryBudget] = None


@dataclass(frozen=True)
class ShardOutcome:
    """One task's picklable result: serialized document + counter dict.

    ``error`` is a ``(class name, message, details)`` spec rather than the
    exception object — budget errors carry constructor arguments plain
    pickling would lose (:func:`_revive_error` rebuilds the typed error on
    the driver).
    """

    position: int
    result: Optional[str]
    counters: dict[str, float]
    seconds: float
    error: Optional[tuple[str, str, tuple]] = None


def serialize_sources(sources: Sources) -> tuple[tuple[str, str], ...]:
    """Flatten a source document (or named mapping) to the task-spec form."""
    from ..ssd import serialize

    if isinstance(sources, Document):
        return (("", serialize(sources)),)
    return tuple((name, serialize(document)) for name, document in sources.items())


# -- worker side -------------------------------------------------------------

_worker_cancel_event = None
_revived_sources: dict[tuple[tuple[str, str], ...], Sources] = {}


class _ShardCancelToken(CancelToken):
    """A worker-side token that also observes the pool-wide event."""

    __slots__ = ("_shared",)

    def __init__(self, shared) -> None:
        super().__init__()
        self._shared = shared

    def cancelled(self) -> bool:
        if super().cancelled():
            return True
        return self._shared is not None and self._shared.is_set()


def reset_worker_state() -> None:
    """Reinitialise every process-wide singleton in this process.

    Called by the pool initialiser in every worker (idempotent after the
    ``os.register_at_fork`` hooks have already run in a forked child), so
    no worker ever serves parent-process cache entries, plans or metrics.
    """
    from .cache import shared_cache
    from .metrics import global_registry
    from .plan_cache import shared_plans

    shared_cache._reset_after_fork()
    shared_plans._reset_after_fork()
    global_registry._reset_after_fork()
    _revived_sources.clear()


def _cache_sizes() -> tuple[int, int, int]:
    """Probe the process-wide singletons (fork-safety regression tests)."""
    from .cache import shared_cache
    from .metrics import global_registry
    from .plan_cache import shared_plans

    return (len(shared_cache), len(shared_plans), global_registry.queries)


def _initialize_worker(cancel_event) -> None:
    global _worker_cancel_event
    _worker_cancel_event = cancel_event
    reset_worker_state()


def _revive_sources(spec: tuple[tuple[str, str], ...]) -> Sources:
    """Parse a task's serialized sources, memoised per worker process."""
    from ..ssd import parse_document

    sources = _revived_sources.get(spec)
    if sources is None:
        if len(spec) == 1 and spec[0][0] == "":
            sources = parse_document(spec[0][1])
        else:
            sources = {name: parse_document(text) for name, text in spec}
        if len(_revived_sources) >= _REVIVAL_MEMO_BOUND:
            _revived_sources.pop(next(iter(_revived_sources)))
        _revived_sources[spec] = sources
    return sources


def _describe_error(error: ReproError) -> tuple[str, str, tuple]:
    if isinstance(error, BudgetExceeded):
        return (type(error).__name__, str(error), (error.limit, error.allowed, error.spent))
    return (type(error).__name__, str(error), ())


def _revive_error(
    spec: tuple[str, str, tuple], stats: EvalStats
) -> ReproError:
    """Rebuild a typed error from a worker's error spec.

    Budget/deadline/cancellation errors come back as their own classes
    (their attributes matter to callers); every other
    :class:`~repro.errors.ReproError` subtype is revived as a generic
    :class:`~repro.errors.EvaluationError` keeping the original message.
    """
    name, message, details = spec
    if name == "DeadlineExceeded":
        return DeadlineExceeded(*details, stats=stats)
    if name == "BudgetExceeded":
        return BudgetExceeded(*details, stats=stats)
    if name == "QueryCancelled":
        return QueryCancelled(stats)
    return EvaluationError(message)


def _evaluate_shard_task(task: ShardTask) -> ShardOutcome:
    """Worker entry: evaluate one task against process-local caches."""
    from ..ssd import serialize
    from ..xmlgl.evaluator import evaluate_rule, lookup_or_compile
    from .cache import shared_cache
    from .plan_cache import shared_plans

    sources = _revive_sources(task.sources)
    cancel = (
        _ShardCancelToken(_worker_cancel_event)
        if _worker_cancel_event is not None
        else None
    )
    stats = EvalStats()
    # Armed here, not on the driver: the deadline clock starts when the
    # shard starts, and each shard owns its whole budget.  Cancellation is
    # polled at budget check sites, so a cancellable unbudgeted task arms
    # an empty (all-None) budget purely to carry the token.
    effective_budget = task.budget
    if effective_budget is None and cancel is not None:
        effective_budget = QueryBudget()
    arm_budget(stats, effective_budget, cancel)
    result_text: Optional[str] = None
    error_spec: Optional[tuple[str, str, tuple]] = None
    rewrite = task.options.rewrite if task.options is not None else True
    started = time.perf_counter()
    try:
        rule, _, plan = lookup_or_compile(
            task.query,
            sources,
            indexes=shared_cache,
            stats=stats,
            plans=shared_plans,
            rewrite=rewrite,
        )
        result = evaluate_rule(
            rule,
            sources,
            options=task.options,
            stats=stats,
            indexes=shared_cache,
            plan=plan,
        )
        result_text = serialize(result)
    except ReproError as error:
        error_spec = _describe_error(error)
    elapsed = time.perf_counter() - started
    return ShardOutcome(
        position=task.position,
        result=result_text,
        counters=stats.as_dict(),
        seconds=elapsed,
        error=error_spec,
    )


def _evaluate_shard_group(
    tasks: tuple[ShardTask, ...],
) -> tuple[list[ShardOutcome], float]:
    """Worker entry for :meth:`ShardedExecutor.map_corpus`: one shard.

    Evaluates the shard's tasks sequentially and reports the shard's own
    wall time, so the driver can attribute scaling numbers per shard.
    """
    started = time.perf_counter()
    outcomes = [_evaluate_shard_task(task) for task in tasks]
    return outcomes, time.perf_counter() - started


# -- merging -----------------------------------------------------------------


def merge_stats(outcomes: Sequence[ShardOutcome]) -> EvalStats:
    """Sum per-shard counters into one :class:`EvalStats`."""
    merged = EvalStats()
    for outcome in outcomes:
        merged = merged + EvalStats.from_counters(outcome.counters)
    return merged


def merge_shard_results(results: Sequence[Document]) -> Document:
    """Concatenate per-shard result documents under one root.

    The shards of one query produce result documents sharing the construct
    part's root tag; the merged document keeps the first root's tag and
    attributes and appends every shard's root children in shard order.
    Sound for collect-style constructs (each match contributes independent
    children); global aggregations (``count`` over the whole corpus) are
    *not* shard-mergeable and must run single-process.
    """
    if not results:
        raise ValueError("no shard results to merge")
    roots = [document.root for document in results]
    first = next((root for root in roots if root is not None), None)
    if first is None:
        return Document()
    merged_root = Element(first.tag, dict(first.attributes))
    for root in roots:
        if root is None:
            continue
        for child in root.children:
            merged_root.append(child.copy())
    return Document(merged_root)


def shard_document(document: Document, shards: int) -> list[Document]:
    """Split one giant document into ``shards`` by top-level subtree.

    Top-level element subtrees are cut into *contiguous* runs of
    near-equal node count and copied into shard documents whose root
    repeats the original root's tag and attributes — contiguity (unlike
    the corpus-level LPT packing) keeps :func:`merge_shard_results` in
    original document order.  Non-element prolog/epilog content is
    dropped.  Returns at most ``shards`` documents (fewer when there are
    fewer subtrees); a document with no root or no top-level elements
    comes back unsplit.
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    root = document.root
    if root is None:
        return [document]
    tops = root.child_elements()
    if not tops:
        return [document]
    total = sum(top.size() for top in tops)
    groups: list[list[Element]] = [[] for _ in range(min(shards, len(tops)))]
    consumed = 0
    for top in tops:
        # Cut at cumulative-weight thresholds: subtree k goes to the shard
        # its weight prefix falls in, so runs stay contiguous and balanced.
        position = min(
            len(groups) - 1, consumed * len(groups) // max(1, total)
        )
        groups[position].append(top)
        consumed += top.size()
    pieces: list[Document] = []
    for group in groups:
        if not group:
            continue
        shard_root = Element(root.tag, dict(root.attributes))
        for top in group:
            shard_root.append(top.copy())
        pieces.append(Document(shard_root))
    return pieces


@dataclass
class CorpusRun:
    """Outcome of :meth:`ShardedExecutor.map_corpus`.

    ``results``/``errors``/``stats_per_document`` are in corpus order (one
    slot per input document); ``shards`` names the documents each shard
    evaluated, aligned with ``shard_seconds``.  ``merge_seconds`` is the
    driver-side cost of re-parsing result documents and summing stats —
    the overhead the scaling benchmark attributes separately.
    """

    results: list[Optional[Document]]
    errors: list[Optional[ReproError]]
    stats_per_document: list[EvalStats]
    stats: EvalStats
    shards: list[list[str]]
    shard_seconds: list[float]
    merge_seconds: float

    @property
    def ok(self) -> bool:
        return all(error is None for error in self.errors)


def _reject_tracing(options: Optional[MatchOptions]) -> None:
    if options is not None and options.trace:
        raise ValueError(
            "tracing is not supported under process-sharded execution: "
            "span trees cannot cross the pickle boundary; run with the "
            "thread executor or trace a single run() instead"
        )


# -- the executor ------------------------------------------------------------


class ShardedExecutor:
    """Fans picklable shard tasks out over a process pool.

    ``max_workers`` defaults to the CPU count; ``mp_context`` accepts a
    start-method name (``"fork"``, ``"spawn"``, ``"forkserver"``) or a
    ready :mod:`multiprocessing` context, defaulting to the platform
    default.  Fork safety of the process-wide caches is guaranteed either
    way: forked children run the ``register_at_fork`` hooks, and the pool
    initialiser calls :func:`reset_worker_state` in every worker.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        mp_context: Union[str, object, None] = None,
    ) -> None:
        self.max_workers = max_workers if max_workers is not None else (
            os.cpu_count() or 1
        )
        if self.max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if isinstance(mp_context, str):
            self._mp = multiprocessing.get_context(mp_context)
        elif mp_context is not None:
            self._mp = mp_context
        else:
            self._mp = multiprocessing.get_context()

    # -- plumbing ----------------------------------------------------------

    def _fan_out(self, payloads: Sequence, worker, cancel: Optional[CancelToken]):
        """Submit ``payloads`` to a fresh pool, bridging cancellation.

        The caller's :class:`CancelToken` cannot cross the pickle
        boundary; a driver-side watcher thread mirrors it onto one
        ``multiprocessing.Event`` the pool initialiser hands every
        worker, where :class:`_ShardCancelToken` folds it into the
        ordinary cooperative checks.
        """
        event = self._mp.Event() if cancel is not None else None
        if cancel is not None and cancel.cancelled():
            event.set()
        stop_watching = threading.Event()

        def watch() -> None:
            while not stop_watching.wait(_CANCEL_POLL_INTERVAL):
                if cancel.cancelled():
                    event.set()
                    return

        watcher = None
        if cancel is not None:
            watcher = threading.Thread(target=watch, daemon=True)
            watcher.start()
        try:
            with ProcessPoolExecutor(
                max_workers=min(self.max_workers, max(1, len(payloads))),
                mp_context=self._mp,
                initializer=_initialize_worker,
                initargs=(event,),
            ) as pool:
                futures = [pool.submit(worker, payload) for payload in payloads]
                return [future.result() for future in futures]
        finally:
            stop_watching.set()
            if watcher is not None:
                watcher.join()

    # -- batch granularity -------------------------------------------------

    def run_batch(
        self,
        queries: Sequence[str],
        sources: Sources,
        *,
        options: Optional[MatchOptions] = None,
        budget: Optional[QueryBudget] = None,
        cancel: Optional[CancelToken] = None,
    ) -> list[ShardOutcome]:
        """One task per query over the same sources, in input order.

        This is the engine behind
        ``QuerySession.run_batch(executor="process")``; outcomes come back
        ordered by input position with per-task stats, timings and typed
        error specs.
        """
        _reject_tracing(options)
        spec = serialize_sources(sources)
        tasks = [
            ShardTask(
                position=position,
                query=query,
                sources=spec,
                options=options,
                budget=budget,
            )
            for position, query in enumerate(queries)
        ]
        if not tasks:
            return []
        outcomes = self._fan_out(tasks, _evaluate_shard_task, cancel)
        return sorted(outcomes, key=lambda outcome: outcome.position)

    # -- corpus granularity ------------------------------------------------

    def map_corpus(
        self,
        query: str,
        corpus: Mapping[str, Document],
        *,
        shards: Optional[int] = None,
        options: Optional[MatchOptions] = None,
        budget: Optional[QueryBudget] = None,
        cancel: Optional[CancelToken] = None,
    ) -> CorpusRun:
        """Evaluate ``query`` against every corpus document, sharded.

        Documents are grouped into ``shards`` (default ``max_workers``)
        element-count-balanced shards; each worker evaluates its shard's
        documents sequentially against its process-local caches.  Results,
        errors and per-document stats come back in corpus order; the
        merged :attr:`CorpusRun.stats` is the exact sum of the per-shard
        counters.
        """
        _reject_tracing(options)
        from ..ssd import parse_document, serialize

        names = list(corpus)
        if not names:
            return CorpusRun(
                results=[], errors=[], stats_per_document=[],
                stats=EvalStats(), shards=[], shard_seconds=[],
                merge_seconds=0.0,
            )
        weights = [
            corpus[name].root.size() if corpus[name].root is not None else 1
            for name in names
        ]
        groups = balanced_partition(
            weights, shards if shards is not None else self.max_workers
        )
        serialized = {name: serialize(corpus[name]) for name in names}
        payloads = []
        for group in groups:
            payloads.append(
                tuple(
                    ShardTask(
                        position=position,
                        query=query,
                        sources=(("", serialized[names[position]]),),
                        options=options,
                        budget=budget,
                    )
                    for position in group
                )
            )
        shard_returns = self._fan_out(payloads, _evaluate_shard_group, cancel)
        merge_started = time.perf_counter()
        results: list[Optional[Document]] = [None] * len(names)
        errors: list[Optional[ReproError]] = [None] * len(names)
        stats_rows: list[EvalStats] = [EvalStats() for _ in names]
        flat: list[ShardOutcome] = []
        for outcomes, _ in shard_returns:
            for outcome in outcomes:
                flat.append(outcome)
                row_stats = EvalStats.from_counters(outcome.counters)
                stats_rows[outcome.position] = row_stats
                if outcome.error is not None:
                    errors[outcome.position] = _revive_error(
                        outcome.error, row_stats
                    )
                elif outcome.result is not None:
                    results[outcome.position] = parse_document(outcome.result)
        merged = merge_stats(flat)
        merge_seconds = time.perf_counter() - merge_started
        return CorpusRun(
            results=results,
            errors=errors,
            stats_per_document=stats_rows,
            stats=merged,
            shards=[[names[position] for position in group] for group in groups],
            shard_seconds=[seconds for _, seconds in shard_returns],
            merge_seconds=merge_seconds,
        )
