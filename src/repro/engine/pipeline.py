"""Generic set-at-a-time join pipeline.

Both graphical languages compile a query fragment to the same shape — the
paper's shared sub-nodes *are* relational joins — so the pipeline works on
that shape directly and leaves language semantics to the matchers:

* a *variable* per pattern node, with a **candidate pool** (unary relation)
  supplied by the caller, typically from a
  :class:`~repro.engine.index.DocumentIndex` lookup;
* an :class:`~repro.engine.joins.EdgeRelation` per pattern edge holding the
  candidate **pairs** that satisfy it.

:func:`evaluate_forest` then runs the classic acyclic-query plan: choose a
join order from cardinality estimates (pool sizes, which for indexed pools
are exactly the index label counts), root a join tree per connected
component, *fully reduce* pools and relations by Yannakakis semi-joins,
and assemble the answers with hash joins.  The reduction guarantees that
assembly never extends a row that cannot reach a final answer — the
set-at-a-time counterpart of a backtracking search that never backtracks.

The pipeline only accepts **forests** (acyclic join structure); callers
detect cyclic fragments with :func:`is_forest` /
:func:`connected_components` and fall back to their backtracking core for
those, per fragment.
"""

from __future__ import annotations

from array import array
from typing import Any, Hashable, Iterable, Iterator, Optional, Sequence

from .joins import (
    ColumnRelation,
    EdgeRelation,
    join_forest,
    join_forest_columns,
    semijoin_reduce,
    semijoin_reduce_columns,
)
from .planner import plan_order
from .stats import EvalStats
from .trace import span as trace_span

__all__ = [
    "connected_components",
    "is_forest",
    "evaluate_forest",
    "evaluate_forest_columns",
    "relation_for",
    "column_relation_for",
]

Var = Hashable


def connected_components(
    variables: Iterable[Var], edges: Iterable[tuple[Var, Var]]
) -> list[set[Var]]:
    """Undirected connected components, in first-seen variable order."""
    parent: dict[Var, Var] = {}

    def find(var: Var) -> Var:
        root = var
        while parent[root] != root:
            root = parent[root]
        while parent[var] != root:  # path compression
            parent[var], var = root, parent[var]
        return root

    ordered = list(variables)
    for var in ordered:
        parent.setdefault(var, var)
    for left, right in edges:
        left_root, right_root = find(left), find(right)
        if left_root != right_root:
            parent[left_root] = right_root
    groups: dict[Var, set[Var]] = {}
    for var in ordered:
        groups.setdefault(find(var), set()).add(var)
    return list(groups.values())


def is_forest(variables: Iterable[Var], edges: Sequence[tuple[Var, Var]]) -> bool:
    """Whether the undirected (multi)graph is acyclic.

    Parallel edges and self-loops count as cycles — exactly the cases the
    semi-join tree cannot represent.
    """
    variable_list = list(variables)
    if any(left == right for left, right in edges):
        return False
    components = connected_components(variable_list, edges)
    # A forest has exactly |V| - #components edges; multigraph double
    # edges push the count past that.
    return len(edges) == len(variable_list) - len(components)


def evaluate_forest(
    pools: dict[Var, list[Any]],
    relations: Sequence[EdgeRelation],
    stats: EvalStats,
    planner_enabled: bool = True,
) -> Iterator[dict[Var, Any]]:
    """All assignments of a forest-shaped join query, set-at-a-time.

    Args:
        pools: candidate pool per variable (consumed; reduced in place).
        relations: one :class:`EdgeRelation` per pattern edge; the
            undirected graph they induce over ``pools``' keys must be a
            forest (:func:`is_forest`).
        stats: semi-join / hash-join counters accumulate here.
        planner_enabled: when False, keep the pools' insertion order as the
            join order (planner ablation).

    Yields:
        Complete ``{variable: candidate}`` assignments.  Distinct trees of
        the forest combine by cross product, as in the backtracking core.
    """
    if stats.budget is not None:
        stats.budget.poll()
    variables = list(pools)
    adjacency: dict[Var, list[Var]] = {var: [] for var in variables}
    for relation in relations:
        adjacency[relation.left_var].append(relation.right_var)
        adjacency[relation.right_var].append(relation.left_var)

    with trace_span(stats.trace, "plan") as plan_span:
        order = plan_order(
            variables,
            estimate=lambda var: len(pools[var]),
            adjacency=adjacency,
            enabled=planner_enabled,
        )

        # Root the forest along the planner order: the first placed endpoint
        # of each relation becomes the parent of the other.
        relations_by_var: dict[Var, list[EdgeRelation]] = {
            var: [] for var in variables
        }
        for relation in relations:
            relations_by_var[relation.left_var].append(relation)
            relations_by_var[relation.right_var].append(relation)
        placed: set[Var] = set()
        parent_of: dict[Var, tuple[Var, EdgeRelation]] = {}
        for var in order:
            for relation in relations_by_var[var]:
                other = relation.other(var)
                if other in placed:
                    if var in parent_of:
                        raise ValueError(
                            "cyclic join structure: "
                            f"variable {var!r} reaches two placed parents"
                        )
                    parent_of[var] = (other, relation)
            placed.add(var)
        if plan_span is not None:
            plan_span["order"] = [str(var) for var in order]
            plan_span["pool_sizes"] = {
                str(var): len(pools[var]) for var in order
            }
            plan_span["forest"] = [
                {"var": str(var), "parent": str(parent)}
                for var, (parent, _) in parent_of.items()
            ]
            plan_span["planner"] = "cost" if planner_enabled else "input-order"

    if not semijoin_reduce(pools, relations, order, parent_of, stats):
        return
    yield from join_forest(pools, order, parent_of, stats)


def evaluate_forest_columns(
    pools: dict[Var, array],
    relations: Sequence[ColumnRelation],
    stats: EvalStats,
    planner_enabled: bool = True,
) -> tuple[list[Var], list[list[int]]]:
    """All assignments of a forest-shaped join query over int columns.

    The columnar twin of :func:`evaluate_forest`: pools are sorted
    ``pre``-id columns and relations :class:`ColumnRelation`\\ s, so the
    whole plan→reduce→assemble cascade never touches a node object.  Same
    planner, same rooting, same trace spans.

    Returns:
        ``(order, rows)`` — the join order and the assembled rows, each a
        flat int list aligned with ``order``.  Callers materialise nodes
        against the index's ``pre -> element`` side table.
    """
    if stats.budget is not None:
        stats.budget.poll()
    variables = list(pools)
    adjacency: dict[Var, list[Var]] = {var: [] for var in variables}
    for relation in relations:
        adjacency[relation.left_var].append(relation.right_var)
        adjacency[relation.right_var].append(relation.left_var)

    with trace_span(stats.trace, "plan") as plan_span:
        order = plan_order(
            variables,
            estimate=lambda var: len(pools[var]),
            adjacency=adjacency,
            enabled=planner_enabled,
        )
        relations_by_var: dict[Var, list[ColumnRelation]] = {
            var: [] for var in variables
        }
        for relation in relations:
            relations_by_var[relation.left_var].append(relation)
            relations_by_var[relation.right_var].append(relation)
        placed: set[Var] = set()
        parent_of: dict[Var, tuple[Var, ColumnRelation]] = {}
        for var in order:
            for relation in relations_by_var[var]:
                other = relation.other(var)
                if other in placed:
                    if var in parent_of:
                        raise ValueError(
                            "cyclic join structure: "
                            f"variable {var!r} reaches two placed parents"
                        )
                    parent_of[var] = (other, relation)
            placed.add(var)
        if plan_span is not None:
            plan_span["order"] = [str(var) for var in order]
            plan_span["pool_sizes"] = {
                str(var): len(pools[var]) for var in order
            }
            plan_span["forest"] = [
                {"var": str(var), "parent": str(parent)}
                for var, (parent, _) in parent_of.items()
            ]
            plan_span["planner"] = "cost" if planner_enabled else "input-order"
            plan_span["columnar"] = True

    if not semijoin_reduce_columns(pools, relations, order, parent_of, stats):
        return list(order), []
    return list(order), join_forest_columns(pools, order, parent_of, stats)


def column_relation_for(
    left_var: Var,
    right_var: Var,
    pairs: tuple[array, array],
    stats: EvalStats,
) -> ColumnRelation:
    """Materialise a :class:`ColumnRelation`, tallying like :func:`relation_for`.

    ``pairs`` is the ``(left column, right column)`` output of a
    :mod:`repro.engine.columns` kernel.  Budget row-bounding happens at the
    kernel call site (counts are known before materialisation), so this
    only mirrors the ``edge_checks`` / ``relation_pairs`` accounting.
    """
    relation = ColumnRelation(left_var, right_var, pairs[0], pairs[1])
    stats.edge_checks += 1
    stats.relation_pairs += len(relation)
    return relation


def relation_for(
    left_var: Var,
    right_var: Var,
    pairs: Iterable[tuple[Any, Any]],
    stats: EvalStats,
    key=id,
) -> EdgeRelation:
    """Materialise an :class:`EdgeRelation`, tallying its size.

    One wholesale ``edge_checks`` bump per relation mirrors the interval
    convention: pairs drawn from index-backed pools satisfy their edge *by
    construction*, so they are counted as ``relation_pairs``, not as
    per-candidate trials.
    """
    if stats.budget is not None:
        pairs = stats.budget.bounded_rows(pairs)
    relation = EdgeRelation(left_var, right_var, pairs, key=key)
    stats.edge_checks += 1
    stats.relation_pairs += len(relation)
    return relation
