"""Evaluation options shared by both matchers.

:class:`MatchOptions` collects the engine-selection and ablation knobs the
XML-GL document matcher and the WG-Log graph matcher both honour:

* ``engine`` — the evaluation strategy:

  - ``"adaptive"`` (default): per-fragment cost-based selection.  Each
    coverable query fragment is costed with the document's statistics
    (:mod:`repro.engine.estimator`) and runs on whichever of the two
    engines below is estimated cheaper
    (:func:`repro.engine.planner.choose_fragment_engine`); the shape-based
    *hard* fallbacks (ordered / negated / cyclic fragments) apply exactly
    as under ``"pipeline"``.
  - ``"pipeline"``: set-at-a-time evaluation, forced.  The query is
    compiled into per-node candidate pools plus binary edge relations, a
    Yannakakis-style semi-join reduction removes dangling candidates over a
    cost-chosen join tree, and hash joins assemble the final binding set.
    Fragments the pipeline cannot cover — undirected cycles, ordered arcs,
    negation, path edges — fall back to the backtracking core *per
    fragment*, so one uncooperative corner of a query does not forfeit
    set-at-a-time evaluation for the rest.
  - ``"backtracking"``: the node-at-a-time core with interval-index
    candidate narrowing (the PR-1 engine; differential oracle for the
    pipeline).
  - ``"naive"``: backtracking with indexes disabled — full scans and
    per-candidate structural checks (the ablation baseline).

* ``use_planner`` / ``use_index`` — the EXT-A1 ablation switches carried
  over from the node-at-a-time engine.  ``use_index=False`` implies the
  naive engine (the pipeline builds its pools and relations from the
  index, so it degrades to backtracking without one).

* ``rewrite`` — run the static query-rewrite layer
  (:mod:`repro.analysis.rewrite`) before planning: canonicalization,
  containment-based minimization and condition simplification.  On by
  default; ``False`` is the escape hatch (``repro run --no-rewrite``)
  that evaluates the drawn query verbatim — the ablation switch for the
  rewrite layer, and the way out should a rewrite rule ever prove
  unsound in the field.

* ``columnar`` — let the set-at-a-time path run on the columnar kernels
  (:mod:`repro.engine.columns`): candidate pools and edge relations as
  flat sorted ``pre``-id columns, node objects materialised only at
  hash-join assembly.  On by default; ``False`` pins the historical
  tuple-of-nodes pipeline (the ablation/differential switch, mirroring
  ``rewrite``).  Only the interval-indexed XML-GL pipeline has a columnar
  twin — backtracking, naive and WG-Log evaluation ignore the flag.

* ``trace`` — record a span tree (:mod:`repro.engine.trace`) of the
  evaluation.  The matchers attach a fresh
  :class:`~repro.engine.trace.Tracer` to the evaluation's ``EvalStats``
  unless the caller installed one already; sessions expose the recorded
  tree on ``QueryCycle.trace`` / ``BatchResult.trace``.

* ``budget`` — resource limits (:class:`repro.engine.limits.QueryBudget`):
  deadline, work-unit ceiling, bindings / result-node / join-row caps, and
  the ``on_limit`` raise-vs-partial policy.  Armed onto the evaluation's
  ``EvalStats`` at query start, mirroring the tracer convention; ``None``
  (the default) means ungoverned and costs nothing on the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from .limits import QueryBudget

__all__ = ["ENGINES", "MatchOptions"]

#: Recognised values of :attr:`MatchOptions.engine`.
ENGINES = ("adaptive", "pipeline", "backtracking", "naive")


@dataclass
class MatchOptions:
    """Evaluation switches (engine choice + ablation knobs EXT-A1)."""

    use_planner: bool = True
    use_index: bool = True
    engine: str = "adaptive"
    rewrite: bool = True
    columnar: bool = True
    trace: bool = False
    budget: Optional["QueryBudget"] = None

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}"
            )

    def resolved_engine(self) -> str:
        """The engine that will actually run.

        ``"naive"`` forces scans regardless of ``use_index``; conversely,
        ``use_index=False`` demotes the adaptive/pipeline engines to
        backtracking (which then scans), preserving the historical meaning
        of the ablation flag for callers that never mention engines — the
        cost model and the set-at-a-time plans both feed on the index, so
        neither exists without one.
        """
        if self.engine == "naive":
            return "naive"
        if self.engine in ("adaptive", "pipeline") and not self.use_index:
            return "backtracking"
        return self.engine

    def scans_only(self) -> bool:
        """Whether evaluation must avoid the index (naive/ablation mode)."""
        return self.engine == "naive" or not self.use_index
