"""Resource governance: query budgets, deadlines and cooperative cancellation.

The ROADMAP's serving-side north star needs *bounded, predictable* response
behaviour: a pathological query — a deep ``*``-edge descent over a large
document, an exploding hash join — must stop at a declared limit instead of
running away with the process.  This module is that governor:

* :class:`QueryBudget` — the declarative limits a caller attaches to one
  evaluation: a wall-clock deadline, a work-unit ceiling, caps on bindings,
  result nodes and materialised join rows, plus the ``on_limit`` policy
  (``"raise"`` a typed error vs. return a ``"partial"`` truncated result).
* :class:`BudgetState` — one *armed* budget: the deadline resolved to an
  absolute clock value, counters for work/rows consumed so far, and the
  cooperative :meth:`~BudgetState.charge` / :meth:`~BudgetState.poll`
  checks the engines call at their existing instrumentation sites.
* :class:`CancelToken` — a thread-safe flag another thread may set; the
  owning evaluation notices it at its next check site and raises
  :class:`~repro.errors.QueryCancelled`.

Like tracing, governance is **pay-for-use**: the state rides on
:attr:`repro.engine.stats.EvalStats.budget` (``None`` by default) and every
check site guards on ``is None``, so an unbudgeted run does byte-identical
work (the bench_smoke ``governance`` guard asserts exactly that).  The
deadline clock is only consulted every :data:`CLOCK_STRIDE` work units —
cheap enough for per-candidate charging, tight enough that a budgeted
evaluation over tens of thousands of nodes stops well within ~2× its
deadline.

The degradation ladder (documented in DESIGN.md § Resource governance):

1. a set-at-a-time fragment whose materialised relations or hash-join rows
   would exceed ``max_hashjoin_rows`` **degrades** to the backtracking core
   for that fragment (fallback reason ``budget``, counter
   ``degraded_fragments``) — slower, but bounded memory;
2. a limit the ladder cannot absorb raises :class:`BudgetExceeded` /
   :class:`DeadlineExceeded` carrying the partial ``EvalStats``;
3. under ``on_limit="partial"`` the matchers catch step 2 and return the
   bindings gathered so far, flagged ``stats.extra["truncated"]``, so the
   construct step still produces a well-formed result document.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Optional

from ..errors import BudgetExceeded, DeadlineExceeded, QueryCancelled

if TYPE_CHECKING:
    from ..ssd.model import Element
    from .stats import EvalStats

__all__ = [
    "ON_LIMIT_POLICIES",
    "QueryBudget",
    "BudgetState",
    "CancelToken",
    "arm_budget",
    "mark_truncated",
    "truncate_element",
]

#: Recognised values of :attr:`QueryBudget.on_limit`.
ON_LIMIT_POLICIES = ("raise", "partial")

#: Work units charged between consultations of the deadline clock / cancel
#: token.  Small enough that a budgeted hot loop notices a deadline within
#: a fraction of the stride's wall time; large enough that
#: ``time.monotonic()`` stays off the per-candidate path.
CLOCK_STRIDE = 256


class CancelToken:
    """A thread-safe cancellation flag shared with a running evaluation.

    The evaluation polls the token cooperatively at its budget check sites;
    :meth:`cancel` may be called from any thread (e.g. to abort a whole
    ``run_batch`` fan-out).  Tokens are reusable across queries — every row
    of a batch can share one.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation; checked at the next cooperative site."""
        self._event.set()

    def cancelled(self) -> bool:
        return self._event.is_set()

    def reset(self) -> None:
        """Clear the flag (reuse the token for another run)."""
        self._event.clear()


@dataclass(frozen=True)
class QueryBudget:
    """Declarative resource limits for one query evaluation.

    All limits default to ``None`` (unlimited); a budget with every field
    ``None`` is legal and costs one no-op check per site.  Fields:

    * ``deadline_ms`` — wall-clock deadline, measured from the moment the
      budget is *armed* (query start), in milliseconds.
    * ``max_work`` — cooperative work units: candidates tried, edge checks,
      pool entries scanned, semi-join passes… roughly the same currency as
      ``EvalStats.candidates_tried + edge_checks``.
    * ``max_bindings`` — cap on bindings produced by matching.
    * ``max_result_nodes`` — cap on nodes in the constructed result
      document (checked by the construct step).
    * ``max_hashjoin_rows`` — memory-ish cap on materialised relation pairs
      plus hash-join rows; the pipeline *degrades* the offending fragment
      to backtracking before giving up (see the module docstring's ladder).
    * ``on_limit`` — ``"raise"`` (default) propagates the typed error;
      ``"partial"`` returns the truncated result gathered so far, flagged
      ``stats.extra["truncated"]``.
    """

    deadline_ms: Optional[float] = None
    max_work: Optional[int] = None
    max_bindings: Optional[int] = None
    max_result_nodes: Optional[int] = None
    max_hashjoin_rows: Optional[int] = None
    on_limit: str = "raise"

    def __post_init__(self) -> None:
        if self.on_limit not in ON_LIMIT_POLICIES:
            raise ValueError(
                f"unknown on_limit policy {self.on_limit!r}; "
                f"expected one of {ON_LIMIT_POLICIES}"
            )
        for name in (
            "deadline_ms",
            "max_work",
            "max_bindings",
            "max_result_nodes",
            "max_hashjoin_rows",
        ):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be non-negative, got {value!r}")

    @property
    def partial(self) -> bool:
        """Whether limit trips should yield truncated results."""
        return self.on_limit == "partial"

    def arm(
        self,
        stats: Optional["EvalStats"] = None,
        cancel: Optional[CancelToken] = None,
    ) -> "BudgetState":
        """Start the clock: bind this budget to one evaluation's stats."""
        return BudgetState(self, stats=stats, cancel=cancel)


class BudgetState:
    """One armed :class:`QueryBudget`: absolute deadline + consumption.

    Rides on ``EvalStats.budget`` exactly as the tracer rides on
    ``EvalStats.trace``; check sites guard on ``stats.budget is None`` so
    the unarmed path costs one attribute read.  Not thread-safe — each
    evaluation owns its state (``run_batch`` arms one per row) — except
    for the :class:`CancelToken`, which is shared by design.
    """

    __slots__ = (
        "budget",
        "stats",
        "cancel",
        "deadline_at",
        "work",
        "rows",
        "_countdown",
        "_polling",
    )

    def __init__(
        self,
        budget: QueryBudget,
        stats: Optional["EvalStats"] = None,
        cancel: Optional[CancelToken] = None,
    ) -> None:
        self.budget = budget
        self.stats = stats
        self.cancel = cancel
        self.deadline_at = (
            time.monotonic() + budget.deadline_ms / 1000.0
            if budget.deadline_ms is not None
            else None
        )
        self.work = 0
        self.rows = 0
        # Only tick the clock when there is a clock to tick.
        self._polling = self.deadline_at is not None or cancel is not None
        self._countdown = CLOCK_STRIDE

    # -- raising ------------------------------------------------------------

    def _exceed(self, limit: str, allowed: Any, spent: Any) -> None:
        if self.stats is not None:
            self.stats.bump("budget_exceeded")
        if limit == "deadline_ms":
            raise DeadlineExceeded(limit, allowed, round(spent, 3), self.stats)
        raise BudgetExceeded(limit, allowed, spent, self.stats)

    # -- cooperative checks ---------------------------------------------------

    def poll(self) -> None:
        """Immediate deadline + cancellation check (stage boundaries)."""
        if self.cancel is not None and self.cancel.cancelled():
            raise QueryCancelled(self.stats)
        if self.deadline_at is not None:
            now = time.monotonic()
            if now > self.deadline_at:
                allowed = self.budget.deadline_ms
                assert allowed is not None
                spent = allowed + (now - self.deadline_at) * 1000.0
                self._exceed("deadline_ms", allowed, spent)

    def charge(self, units: int = 1) -> None:
        """Consume ``units`` of work; the per-candidate check site.

        Work limits are enforced exactly; the deadline clock and the cancel
        token are consulted every :data:`CLOCK_STRIDE` units.
        """
        self.work += units
        max_work = self.budget.max_work
        if max_work is not None and self.work > max_work:
            self._exceed("max_work", max_work, self.work)
        if self._polling:
            self._countdown -= units
            if self._countdown <= 0:
                self._countdown = CLOCK_STRIDE
                self.poll()

    def add_rows(self, count: int) -> None:
        """Account materialised relation pairs / hash-join rows."""
        self.rows += count
        max_rows = self.budget.max_hashjoin_rows
        if max_rows is not None and self.rows > max_rows:
            self._exceed("max_hashjoin_rows", max_rows, self.rows)
        self.charge(count)

    def bounded_rows(self, pairs: Iterable[Any]) -> Iterator[Any]:
        """Wrap a pair iterator so every yielded row is accounted."""
        for pair in pairs:
            self.add_rows(1)
            yield pair

    def check_bindings(self, produced: int) -> None:
        """Enforce ``max_bindings`` against the bindings produced so far."""
        max_bindings = self.budget.max_bindings
        if max_bindings is not None and produced > max_bindings:
            self._exceed("max_bindings", max_bindings, produced)

    def check_result_nodes(self, nodes: int) -> None:
        """Enforce ``max_result_nodes`` against a constructed result."""
        max_nodes = self.budget.max_result_nodes
        if max_nodes is not None and nodes > max_nodes:
            self._exceed("max_result_nodes", max_nodes, nodes)

    # -- degradation ----------------------------------------------------------

    def would_exceed_rows(self, estimate: int) -> bool:
        """Whether materialising ``estimate`` more rows must trip the cap.

        The pipeline asks this *before* evaluating a fragment set-at-a-time
        so it can degrade to backtracking instead of failing mid-join.
        """
        max_rows = self.budget.max_hashjoin_rows
        return max_rows is not None and self.rows + estimate > max_rows


def arm_budget(
    stats: "EvalStats",
    budget: Optional[QueryBudget],
    cancel: Optional[CancelToken] = None,
) -> Optional[BudgetState]:
    """Attach an armed budget to ``stats`` unless one is armed already.

    Mirrors the tracer-attachment convention: the outermost entry point
    (session, evaluator, or a direct ``match``/``embeddings`` call) arms;
    inner layers see ``stats.budget`` set and leave it alone, so one
    deadline spans parse-to-construct.  Returns the armed state (or the
    existing one, or ``None`` when there is nothing to arm).
    """
    if stats.budget is not None:
        return stats.budget
    if budget is None:
        return None
    state = budget.arm(stats=stats, cancel=cancel)
    stats.budget = state
    return state


def mark_truncated(stats: "EvalStats", limit: str) -> None:
    """Flag a partial result on its stats (and the metrics counters).

    ``stats.extra["truncated"]`` is the per-result flag the acceptance
    contract names; ``truncated_results`` is the fleet-facing counter the
    metrics registry aggregates; ``truncated_by_<limit>`` records which
    limit cut the run short.  Every extra stays an *integer* counter —
    ``EvalStats.as_dict`` feeds the metrics totals, which sum.
    """
    stats.extra["truncated"] = 1
    stats.bump("truncated_results")
    stats.bump(f"truncated_by_{limit}")
    if stats.trace is not None:
        stats.trace.event("truncated", limit=limit)


def truncate_element(root: "Element", max_nodes: int) -> int:
    """Prune ``root``'s subtree, in place, to at most ``max_nodes`` nodes.

    Keeps a document-order prefix of the tree: once the node allowance is
    spent, remaining children are dropped wholesale, so every kept element
    retains its ancestors and the result stays well-formed.  Counting
    matches :meth:`Element.size` (every node — elements, text, comments —
    costs one).  Returns the number of nodes dropped.
    """
    from ..ssd.model import Element

    if max_nodes < 1:
        max_nodes = 1  # the root itself is never dropped

    before = root.size()
    allowance = max_nodes - 1  # the root costs one

    def prune(element: "Element") -> None:
        nonlocal allowance
        kept: list[Any] = []
        for child in element.children:
            cost = child.size() if isinstance(child, Element) else 1
            if cost <= allowance:
                allowance -= cost
                kept.append(child)
            elif isinstance(child, Element) and allowance >= 1:
                allowance -= 1
                kept.append(child)
                prune(child)
            else:
                allowance = 0
            if allowance <= 0:
                break
        element.children = kept

    prune(root)
    return before - root.size()
