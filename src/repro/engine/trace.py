"""Span-based evaluation tracing.

Every engine stage — parse, pre-flight, index lookup, fragment planning,
semi-join reduction, hash-join assembly, construction — can record what it
did and how long it took as a tree of :class:`Span` objects collected by a
:class:`Tracer`.  Tracing is **opt-in and pay-for-use**: the tracer rides
on :attr:`repro.engine.stats.EvalStats.trace` (``None`` by default), and
every instrumentation site guards on that attribute, so a disabled trace
costs one attribute read and an ``is None`` test per *stage*, never per
candidate.  Enable it with ``MatchOptions(trace=True)`` or by attaching a
tracer yourself::

    stats = EvalStats()
    stats.trace = Tracer()
    match(graph, document, options=options, index=index, stats=stats)
    print(stats.trace.render_text())

Span names and their attributes are part of the public observability
contract (documented in DESIGN.md § Observability); :mod:`repro.explain`
turns the recorded tree into the ``EXPLAIN`` report, and tests may rely on
the names staying stable:

========================  ===================================================
span / event              recorded by
========================  ===================================================
``parse``                 session / CLI / explain — DSL text to Rule
``plan.cache.hit``        event: :func:`repro.xmlgl.evaluator.lookup_or_compile`
                          served a compiled plan (attr ``key``)
``plan.cache.miss``       event: plan-cache lookup missed (attr ``key``)
``plan.cache.compile``    :func:`repro.xmlgl.evaluator.lookup_or_compile`
                          compiling the plan after a miss (attr ``key``)
``preflight``             :func:`repro.xmlgl.evaluator.rule_bindings`
                          (attr ``cached`` when served from a compiled plan)
``index.lookup``          :meth:`repro.engine.cache.DocumentIndexCache.get`
                          (attr ``outcome``: hit / built / raced)
``match``                 evaluator / WG-Log ``embeddings`` (attr ``engine``)
``match.fragment``        per connected query fragment (attrs ``variables``,
                          ``decision``: pipeline / backtracking / fallback,
                          ``reason``; adaptive cost decisions carry
                          ``est_pipeline`` / ``est_backtracking``)
``fragment.pools``        XML-GL pool construction (attr ``sizes``)
``fragment.relations``    edge-relation build (attr ``pairs``)
``plan``                  :func:`repro.engine.pipeline.evaluate_forest`
                          (attrs ``order``, ``forest``)
``reduce``                semi-join reduction; ``semijoin`` events carry
                          ``var``, ``before``, ``after``, ``direction``
``assemble``              hash-join assembly (attr ``rows``)
``construct``             :func:`repro.xmlgl.evaluator.evaluate_rule`
========================  ===================================================
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional

__all__ = ["Span", "Tracer", "span"]

#: Test-only fault-injection hook (:mod:`repro.engine.faults`).  When set,
#: it is called with each span *name* as the stage opens — exactly once per
#: site, whether or not a tracer is attached: :func:`span` fires it only on
#: the no-tracer path, :meth:`Tracer.span` always.  ``None`` in production;
#: the guard is one global read per stage, never per candidate.
_SITE_HOOK: Optional[Callable[[str], None]] = None


class Span:
    """One traced stage: a name, a duration, attributes and child spans.

    Attribute assignment is dict-style (``span["rows"] = 10``) so call
    sites can attach facts discovered mid-stage.  Instantaneous *events*
    (semi-join passes) are zero-duration child spans.
    """

    __slots__ = ("name", "start", "end", "attributes", "children")

    def __init__(self, name: str, start: float, **attributes: Any) -> None:
        self.name = name
        self.start = start
        self.end = start
        self.attributes: dict[str, Any] = dict(attributes)
        self.children: list[Span] = []

    def __setitem__(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def __getitem__(self, key: str) -> Any:
        return self.attributes[key]

    @property
    def seconds(self) -> float:
        return self.end - self.start

    def find(self, name: str) -> list["Span"]:
        """All descendant spans (self included) with the given name."""
        found = [self] if self.name == name else []
        for child in self.children:
            found.extend(child.find(name))
        return found

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready view (durations in seconds, children recursive)."""
        return {
            "name": self.name,
            "seconds": round(self.seconds, 9),
            "attributes": dict(self.attributes),
            "children": [child.as_dict() for child in self.children],
        }


class Tracer:
    """Collects a forest of spans for one evaluation.

    Not thread-safe: each evaluation owns its tracer, exactly as it owns
    its :class:`~repro.engine.stats.EvalStats` (``run_batch`` hands every
    query its own pair).
    """

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Record a stage spanning the ``with`` body; yields the span."""
        if _SITE_HOOK is not None:
            _SITE_HOOK(name)
        opened = Span(name, time.perf_counter(), **attributes)
        if self._stack:
            self._stack[-1].children.append(opened)
        else:
            self.roots.append(opened)
        self._stack.append(opened)
        try:
            yield opened
        finally:
            opened.end = time.perf_counter()
            self._stack.pop()

    def event(self, name: str, **attributes: Any) -> Span:
        """Record an instantaneous fact under the current span."""
        stamp = time.perf_counter()
        recorded = Span(name, stamp, **attributes)
        if self._stack:
            self._stack[-1].children.append(recorded)
        else:
            self.roots.append(recorded)
        return recorded

    def find(self, name: str) -> list[Span]:
        """All spans with the given name, depth-first over every root."""
        found: list[Span] = []
        for root in self.roots:
            found.extend(root.find(name))
        return found

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready view of the whole trace."""
        return {"spans": [root.as_dict() for root in self.roots]}

    def render_text(self, min_seconds: float = 0.0) -> str:
        """Indented one-line-per-span rendering of the trace tree."""
        lines: list[str] = []

        def visit(node: Span, depth: int) -> None:
            # Filter timed leaf spans below the threshold; zero-duration
            # events (semi-join passes) always render.
            if not node.children and 0 < node.seconds < min_seconds:
                return
            attrs = ", ".join(
                f"{key}={_short(value)}" for key, value in node.attributes.items()
            )
            duration = f"{node.seconds * 1000:.3f}ms" if node.seconds else "·"
            lines.append(
                "  " * depth + f"{node.name}  {duration}" + (f"  [{attrs}]" if attrs else "")
            )
            for child in node.children:
                visit(child, depth + 1)

        for root in self.roots:
            visit(root, 0)
        return "\n".join(lines)


def _short(value: Any, limit: int = 60) -> str:
    text = str(value)
    return text if len(text) <= limit else text[: limit - 3] + "..."


@contextmanager
def span(tracer: Optional[Tracer], name: str, **attributes: Any) -> Iterator[Optional[Span]]:
    """``tracer.span`` when tracing, a no-op context otherwise.

    Call sites on warm (per-stage, not per-candidate) paths use this to
    avoid an if/else at every instrumentation point::

        with span(stats.trace, "reduce"):
            ...
    """
    if tracer is None:
        if _SITE_HOOK is not None:
            _SITE_HOOK(name)
        yield None
        return
    with tracer.span(name, **attributes) as opened:
        yield opened
