"""Document indexes for query evaluation.

The XML-GL matcher scans documents for elements matching pattern nodes; a
:class:`DocumentIndex` turns those scans into hash lookups and supplies the
label frequencies the planner's selectivity estimates use.

On top of the tag/attribute maps the index carries a **gap-based pre/post
interval encoding**: every element gets ``(pre, post, depth, parent)``
labels where ``pre`` orders elements by document position and ``post`` is
the largest ``pre`` label inside the subtree.  Labels are spaced
:data:`LABEL_GAP` apart at build time, so the structural predicates the
matchers hammer on stay two integer comparisons *and* a single-subtree
edit can label the new nodes inside the touched gap instead of relabeling
the whole document:

* ancestor/descendant — ``pre(a) < pre(d) <= post(a)``,
* document-order comparison — a ``pre`` comparison,
* "elements with tag T inside the subtree of P" — a :mod:`bisect` range
  over the per-tag label-sorted arrays instead of a subtree walk.

Mutability contract
-------------------
Indexes are **maintained, not rebuilt**, under the typed mutation API
(:mod:`repro.engine.mutate`): ``note_insert`` / ``note_delete`` /
``note_set_attribute`` update the label maps, per-tag/attribute pools and
the mutable :class:`~repro.engine.estimator.StatisticsBuilder` in
``O(k log n + k * depth)`` for a ``k``-node edit, falling back to a full
relabel only when an edit point's gap is exhausted (amortized away by the
gap spacing).  Structural edits bump :attr:`stats_epoch` so plan-cache
keys embedding the old epoch can never serve stale plans; attribute and
value edits do not (they move cost inputs, not plan validity).  Mutation
is not thread-safe against concurrent readers — callers serialize
(the server wraps the mutable head in a read/write lock).

The columnar kernels (:mod:`repro.engine.columns`) need *dense* pre ids —
they use them as positions into flat ``array('i')`` columns — so the
dense view (``element_table`` / ``post_column`` / ``parent_pre_column`` /
``all_pres`` / ``tag_pres`` / ``pres_of``) is derived lazily from the gap
labels and cached until the next structural edit.  Gap labels and dense
ranks are two coordinate systems: ``position()`` / ``interval()`` speak
labels, the column accessors speak ranks, and no caller may mix them.
"""

from __future__ import annotations

import itertools
from array import array
from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator, Optional

from ..ssd.model import Document, Element
from .estimator import DocumentStatistics, StatisticsBuilder

__all__ = ["DocumentIndex", "LABEL_GAP"]

#: Label spacing at (re)build time: consecutive document-order elements
#: sit ``LABEL_GAP`` apart, leaving ``LABEL_GAP - 1`` free integers per
#: edit point before a local insert must fall back to a full relabel.
LABEL_GAP = 64

#: Monotonic stamp handed to each index at construction and re-stamped on
#: every committed *structural* mutation, so plan-cache keys embedding an
#: old one can never serve stale plans.  ``itertools.count`` is atomic
#: under the GIL — no lock needed.
_STATS_EPOCHS = itertools.count(1)


class _DenseView:
    """Dense-rank snapshot of the gap labels for the columnar kernels.

    Ranks are positions in the label-sorted order, i.e. classic dense pre
    numbers; the columns are indexable by rank exactly like the flat
    arrays the kernels were written against.
    """

    __slots__ = (
        "elements",
        "rank_of_label",
        "rank_by_id",
        "post_column",
        "parent_pre_column",
        "all_pres",
        "tag_pres",
    )

    def __init__(
        self,
        order: list[int],
        element_of: dict[int, Element],
        post_of: dict[int, int],
        parent_of: dict[int, int],
    ) -> None:
        rank = {label: position for position, label in enumerate(order)}
        self.rank_of_label = rank
        self.elements = [element_of[label] for label in order]
        self.rank_by_id = {
            id(element): position
            for position, element in enumerate(self.elements)
        }
        self.post_column = array("i", (rank[post_of[label]] for label in order))
        self.parent_pre_column = array(
            "i",
            (
                rank[parent_of[label]] if parent_of[label] >= 0 else -1
                for label in order
            ),
        )
        self.all_pres = array("i", range(len(order)))
        #: Per-tag rank columns, filled on demand.
        self.tag_pres: dict[str, list[int]] = {}


class DocumentIndex:
    """Label / attribute / interval index over one (mutable) document."""

    def __init__(self, document: Document) -> None:
        self._document = document
        self._doc_revision = 0
        self._dense: Optional[_DenseView] = None
        self._statistics: Optional[DocumentStatistics] = None
        self._counters = {
            "labels_assigned": 0,
            "labels_removed": 0,
            "relabels": 0,
            "relabel_labels": 0,
            "stats_nodes": 0,
            "dense_rebuilds": 0,
            "structural_ops": 0,
            "attribute_ops": 0,
            "value_ops": 0,
        }
        elements, parent_pre, depths = self._assign_labels()
        self._stats = StatisticsBuilder.collect(elements, parent_pre, depths)
        self._stats_epoch = next(_STATS_EPOCHS)

    def _assign_labels(self) -> tuple[list[Element], list[int], list[int]]:
        """(Re)derive every label structure from the current tree.

        Labels come out ``dense_pre * LABEL_GAP``.  Returns the dense
        pre-order temporaries for the statistics collector.
        """
        elements: list[Element] = []
        parent_pre: list[int] = []
        depths: list[int] = []
        root = self._document.root
        stack: list[tuple[Element, int, int]] = (
            [(root, -1, 0)] if root is not None else []
        )
        while stack:
            element, ppre, depth = stack.pop()
            pre = len(elements)
            elements.append(element)
            parent_pre.append(ppre)
            depths.append(depth)
            stack.extend(
                (child, pre, depth + 1)
                for child in reversed(element.child_elements())
            )

        # post = pre + subtree_size - 1; accumulate sizes bottom-up.
        count = len(elements)
        sizes = [1] * count
        for pre in range(count - 1, 0, -1):
            sizes[parent_pre[pre]] += sizes[pre]

        label_of: dict[int, int] = {}
        element_of: dict[int, Element] = {}
        post_of: dict[int, int] = {}
        parent_of: dict[int, int] = {}
        depth_of: dict[int, int] = {}
        order: list[int] = []
        tag_labels: dict[str, list[int]] = {}
        tag_elements: dict[str, list[Element]] = {}
        attr_labels: dict[str, list[int]] = {}
        attr_elements: dict[str, list[Element]] = {}
        for pre, element in enumerate(elements):
            label = pre * LABEL_GAP
            label_of[id(element)] = label
            element_of[label] = element
            post_of[label] = (pre + sizes[pre] - 1) * LABEL_GAP
            ppre = parent_pre[pre]
            parent_of[label] = ppre * LABEL_GAP if ppre >= 0 else -1
            depth_of[label] = depths[pre]
            order.append(label)
            tag_labels.setdefault(element.tag, []).append(label)
            tag_elements.setdefault(element.tag, []).append(element)
            for name in element.attributes:
                attr_labels.setdefault(name, []).append(label)
                attr_elements.setdefault(name, []).append(element)

        self._label_of = label_of
        self._element_of = element_of
        self._post_of = post_of
        self._parent_of = parent_of
        self._depth_of = depth_of
        self._order = order
        self._tag_labels = tag_labels
        self._tag_elements = tag_elements
        self._attr_labels = attr_labels
        self._attr_elements = attr_elements
        self._tag_tuples: dict[str, tuple[Element, ...]] = {}
        self._attr_tuples: dict[str, tuple[Element, ...]] = {}
        self._element_count = count
        self._dense = None
        return elements, parent_pre, depths

    def _relabel(self) -> None:
        """Full fallback relabel (gap exhausted); statistics untouched."""
        self._counters["relabels"] += 1
        self._assign_labels()
        self._counters["relabel_labels"] += self._element_count

    def _dense_view(self) -> _DenseView:
        view = self._dense
        if view is None:
            view = self._dense = _DenseView(
                self._order, self._element_of, self._post_of, self._parent_of
            )
            self._counters["dense_rebuilds"] += 1
        return view

    # -- lookups ------------------------------------------------------------

    @property
    def document(self) -> Document:
        """The indexed document."""
        return self._document

    def elements_with_tag(self, tag: str) -> tuple[Element, ...]:
        """All elements with ``tag``, document order (immutable)."""
        cached = self._tag_tuples.get(tag)
        if cached is None:
            pool = self._tag_elements.get(tag)
            if pool is None:
                return ()
            cached = self._tag_tuples[tag] = tuple(pool)
        return cached

    def elements_with_attribute(self, name: str) -> tuple[Element, ...]:
        """All elements carrying attribute ``name``, document order."""
        cached = self._attr_tuples.get(name)
        if cached is None:
            pool = self._attr_elements.get(name)
            if pool is None:
                return ()
            cached = self._attr_tuples[name] = tuple(pool)
        return cached

    def all_elements(self) -> Iterator[Element]:
        """Every element, document order."""
        element_of = self._element_of
        return (element_of[label] for label in self._order)

    def position(self, element: Element) -> int:
        """Document-order ``pre`` label of ``element``.

        Labels are order-comparable but *not* dense — use the column
        accessors for anything that indexes into arrays.
        """
        return self._label_of[id(element)]

    def covers(self, element: Element) -> bool:
        """Whether ``element`` currently belongs to the indexed document."""
        return id(element) in self._label_of

    # -- interval encoding ----------------------------------------------------

    def interval(self, element: Element) -> tuple[int, int]:
        """``(pre, post)`` labels of ``element``'s subtree."""
        pre = self._label_of[id(element)]
        return pre, self._post_of[pre]

    def depth(self, element: Element) -> int:
        """Nesting depth of ``element`` (root = 0)."""
        return self._depth_of[self._label_of[id(element)]]

    def is_ancestor(self, ancestor: Element, descendant: Element) -> bool:
        """Proper ancestor test via two integer comparisons."""
        a = self._label_of[id(ancestor)]
        d = self._label_of[id(descendant)]
        return a < d <= self._post_of[a]

    def descendants(self, element: Element) -> list[Element]:
        """Proper descendants of ``element``, document order (O(result))."""
        pre = self._label_of[id(element)]
        post = self._post_of[pre]
        order = self._order
        lo = bisect_right(order, pre)
        hi = bisect_right(order, post)
        element_of = self._element_of
        return [element_of[label] for label in order[lo:hi]]

    def descendants_with_tag(self, element: Element, tag: str) -> tuple[Element, ...]:
        """Descendants of ``element`` with ``tag`` via a bisect range."""
        labels = self._tag_labels.get(tag)
        if not labels:
            return ()
        pre = self._label_of[id(element)]
        lo = bisect_right(labels, pre)
        hi = bisect_right(labels, self._post_of[pre])
        return tuple(self._tag_elements[tag][lo:hi])

    # -- columns (repro.engine.columns kernels) -------------------------------

    def element_table(self) -> list[Element]:
        """The dense ``pre rank -> element`` side table (read-only).

        This is what lets the columnar pipeline defer node materialisation
        to hash-join assembly: every intermediate stays an int column.
        """
        return self._dense_view().elements

    def post_column(self) -> array:
        """``pre rank -> post rank`` as a flat int column."""
        return self._dense_view().post_column

    def parent_pre_column(self) -> array:
        """``pre rank -> parent's pre rank`` (``-1`` at the root)."""
        return self._dense_view().parent_pre_column

    def all_pres(self) -> array:
        """Every pre rank, ascending — the wildcard pool column (shared,
        read-only by convention)."""
        return self._dense_view().all_pres

    def tag_pres(self, tag: str) -> list[int]:
        """Sorted pre ranks of elements with ``tag`` (shared, read-only)."""
        view = self._dense_view()
        cached = view.tag_pres.get(tag)
        if cached is None:
            rank = view.rank_of_label
            cached = view.tag_pres[tag] = [
                rank[label] for label in self._tag_labels.get(tag, ())
            ]
        return cached

    def pres_of(self, elements: Iterable[Element]) -> array:
        """Pre-rank column of ``elements`` (kept in the iteration order)."""
        rank_by_id = self._dense_view().rank_by_id
        return array("i", (rank_by_id[id(element)] for element in elements))

    # -- statistics -----------------------------------------------------------

    @property
    def statistics(self) -> DocumentStatistics:
        """Cost-model statistics (re-snapshotted lazily after mutations)."""
        snapshot = self._statistics
        if snapshot is None:
            snapshot = self._statistics = self._stats.snapshot()
        return snapshot

    @property
    def stats_epoch(self) -> int:
        """Monotonic structural stamp; plan-cache keys embed it."""
        return self._stats_epoch

    @property
    def doc_revision(self) -> int:
        """Revision of the last committed mutation batch (0 = pristine)."""
        return self._doc_revision

    def maintenance_counters(self) -> dict[str, int]:
        """Incremental-maintenance work counters (copy; bench/telemetry)."""
        return dict(self._counters)

    def element_count(self) -> int:
        """Total number of elements."""
        return self._element_count

    def tag_count(self, tag: str) -> int:
        """Number of elements with ``tag``."""
        return len(self._tag_labels.get(tag, ()))

    def tag_count_within(self, element: Element, tag: Optional[str]) -> int:
        """Number of ``tag`` elements inside ``element``'s subtree.

        ``None`` counts every proper descendant.  Costs two bisects.
        """
        pre = self._label_of[id(element)]
        post = self._post_of[pre]
        if tag is None:
            order = self._order
            return bisect_right(order, post) - bisect_right(order, pre)
        labels = self._tag_labels.get(tag)
        if not labels:
            return 0
        return bisect_right(labels, post) - bisect_right(labels, pre)

    def tags(self) -> set[str]:
        """The set of tags occurring in the document."""
        return set(self._tag_labels)

    def selectivity(self, tag: Optional[str]) -> int:
        """Estimated candidate count for a pattern node.

        ``None`` (wildcard) costs the whole document.
        """
        if tag is None:
            return self._element_count
        return self.tag_count(tag)

    # -- incremental maintenance (repro.engine.mutate) ------------------------

    def note_insert(self, parent: Element, root: Element) -> int:
        """Register subtree ``root``, freshly attached under ``parent``.

        Called *after* the tree edit.  Labels the new nodes inside the gap
        between their document-order neighbours (full relabel only when
        the gap is exhausted), splices the per-tag/attribute pools, fixes
        ancestor ``post`` labels in O(depth), and applies the statistics
        delta.  Returns the subtree's node count.
        """
        # Subtree walk in pre-order, tracking relative structure.
        nodes: list[tuple[Element, int]] = []
        stack: list[tuple[Element, int]] = [(root, 0)]
        while stack:
            element, rel = stack.pop()
            nodes.append((element, rel))
            stack.extend(
                (child, rel + 1)
                for child in reversed(element.child_elements())
            )
        k = len(nodes)
        index_of = {id(element): i for i, (element, _) in enumerate(nodes)}
        sizes = [1] * k
        for i in range(k - 1, 0, -1):
            sizes[index_of[id(nodes[i][0].parent)]] += sizes[i]

        parent_label = self._label_of[id(parent)]
        parent_depth = self._depth_of[parent_label]
        chain = [parent.tag]
        chain.extend(anc.tag for anc in parent.ancestors())
        self._counters["stats_nodes"] += self._stats.add_subtree(
            root, parent_depth, chain, len(parent.child_elements())
        )
        self._statistics = None
        self._counters["structural_ops"] += 1

        # Document-order boundary: the label just before the new subtree
        # (the previous sibling subtree's last node, or the parent itself)
        # and the first label after it.
        siblings = parent.child_elements()
        slot = next(i for i, sibling in enumerate(siblings) if sibling is root)
        if slot == 0:
            prev_label = parent_label
        else:
            prev_label = self._post_of[self._label_of[id(siblings[slot - 1])]]
        i0 = bisect_right(self._order, prev_label)
        next_label = self._order[i0] if i0 < len(self._order) else None
        if next_label is None:
            step = LABEL_GAP
        else:
            gap = next_label - prev_label - 1
            if gap < k:
                # Gap exhausted at this edit point: relabel everything
                # from the tree (which already contains the new subtree).
                self._relabel()
                return k
            step = (next_label - prev_label) // (k + 1) or 1
        labels = [prev_label + step * (i + 1) for i in range(k)]
        self._counters["labels_assigned"] += k

        new_tags: dict[str, tuple[list[int], list[Element]]] = {}
        new_attrs: dict[str, tuple[list[int], list[Element]]] = {}
        for i, (element, rel) in enumerate(nodes):
            label = labels[i]
            self._label_of[id(element)] = label
            self._element_of[label] = element
            self._depth_of[label] = parent_depth + 1 + rel
            self._post_of[label] = labels[i + sizes[i] - 1]
            self._parent_of[label] = (
                parent_label
                if element is root
                else labels[index_of[id(element.parent)]]
            )
            slot_lists = new_tags.setdefault(element.tag, ([], []))
            slot_lists[0].append(label)
            slot_lists[1].append(element)
            for name in element.attributes:
                slot_lists = new_attrs.setdefault(name, ([], []))
                slot_lists[0].append(label)
                slot_lists[1].append(element)
        self._order[i0:i0] = labels
        # All new labels fall inside one previously label-free interval,
        # so each pool splice is a single contiguous insertion.
        for tag, (tag_ls, tag_es) in new_tags.items():
            pool_labels = self._tag_labels.setdefault(tag, [])
            pool_elements = self._tag_elements.setdefault(tag, [])
            at = bisect_right(pool_labels, prev_label)
            pool_labels[at:at] = tag_ls
            pool_elements[at:at] = tag_es
            self._tag_tuples.pop(tag, None)
        for name, (attr_ls, attr_es) in new_attrs.items():
            pool_labels = self._attr_labels.setdefault(name, [])
            pool_elements = self._attr_elements.setdefault(name, [])
            at = bisect_right(pool_labels, prev_label)
            pool_labels[at:at] = attr_ls
            pool_elements[at:at] = attr_es
            self._attr_tuples.pop(name, None)

        # Ancestors whose subtree used to end at the boundary now end at
        # the new subtree's last node.
        last = labels[-1]
        walk: Optional[Element] = parent
        while isinstance(walk, Element):
            walk_label = self._label_of[id(walk)]
            if self._post_of[walk_label] != prev_label:
                break
            self._post_of[walk_label] = last
            walk = walk.parent  # type: ignore[assignment]
        self._element_count += k
        self._dense = None
        return k

    def note_delete(self, root: Element) -> int:
        """Register the pending detach of subtree ``root``.

        Called *before* the tree edit (label maps and the parent chain
        must still be intact).  Returns the subtree's node count.
        """
        parent = root.parent
        assert isinstance(parent, Element), "root element deletion unsupported"
        lo = self._label_of[id(root)]
        hi = self._post_of[lo]
        order = self._order
        i = bisect_left(order, lo)
        j = bisect_right(order, hi)
        removed = order[i:j]
        k = len(removed)

        parent_label = self._label_of[id(parent)]
        chain = [parent.tag]
        chain.extend(anc.tag for anc in parent.ancestors())
        self._counters["stats_nodes"] += self._stats.remove_subtree(
            root,
            self._depth_of[parent_label],
            chain,
            len(parent.child_elements()) - 1,
        )
        self._statistics = None
        self._counters["structural_ops"] += 1

        # Ancestors whose subtree ended inside the removed range now end
        # just before it (at worst at the parent's own label).
        prev_remaining = order[i - 1]
        walk: Optional[Element] = parent
        while isinstance(walk, Element):
            walk_label = self._label_of[id(walk)]
            if self._post_of[walk_label] != hi:
                break
            self._post_of[walk_label] = prev_remaining
            walk = walk.parent  # type: ignore[assignment]

        touched_tags: set[str] = set()
        touched_attrs: set[str] = set()
        for label in removed:
            element = self._element_of.pop(label)
            del self._label_of[id(element)]
            del self._post_of[label]
            del self._parent_of[label]
            del self._depth_of[label]
            touched_tags.add(element.tag)
            touched_attrs.update(element.attributes)
        del order[i:j]
        # The removed labels were one contiguous range, so each pool loses
        # a single contiguous slice.
        for tag in touched_tags:
            pool_labels = self._tag_labels[tag]
            a = bisect_left(pool_labels, lo)
            b = bisect_right(pool_labels, hi)
            del pool_labels[a:b]
            del self._tag_elements[tag][a:b]
            if not pool_labels:
                del self._tag_labels[tag]
                del self._tag_elements[tag]
            self._tag_tuples.pop(tag, None)
        for name in touched_attrs:
            pool_labels = self._attr_labels.get(name)
            if pool_labels is None:
                continue
            a = bisect_left(pool_labels, lo)
            b = bisect_right(pool_labels, hi)
            del pool_labels[a:b]
            del self._attr_elements[name][a:b]
            if not pool_labels:
                del self._attr_labels[name]
                del self._attr_elements[name]
            self._attr_tuples.pop(name, None)
        self._element_count -= k
        self._counters["labels_removed"] += k
        self._dense = None
        return k

    def note_set_attribute(
        self, element: Element, name: str, old: Optional[str], new: Optional[str]
    ) -> None:
        """Register one attribute edit (already applied to ``element``)."""
        self._counters["attribute_ops"] += 1
        self._stats.set_attribute(name, old, new)
        self._statistics = None
        if (old is None) == (new is None):
            return  # value-only change: pools unaffected
        label = self._label_of[id(element)]
        if new is not None:
            pool_labels = self._attr_labels.setdefault(name, [])
            pool_elements = self._attr_elements.setdefault(name, [])
            at = bisect_left(pool_labels, label)
            pool_labels.insert(at, label)
            pool_elements.insert(at, element)
        else:
            pool_labels = self._attr_labels[name]
            at = bisect_left(pool_labels, label)
            del pool_labels[at]
            del self._attr_elements[name][at]
            if not pool_labels:
                del self._attr_labels[name]
                del self._attr_elements[name]
        self._attr_tuples.pop(name, None)

    def note_value_update(self, element: Element) -> None:
        """Register a text rewrite under ``element`` (labels untouched)."""
        self._counters["value_ops"] += 1

    def commit_revision(self, revision: int, structural: bool) -> None:
        """Seal one committed mutation batch into this index."""
        self._doc_revision = revision
        if structural:
            self._stats_epoch = next(_STATS_EPOCHS)
