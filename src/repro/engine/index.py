"""Document indexes for query evaluation.

The XML-GL matcher scans documents for elements matching pattern nodes; a
:class:`DocumentIndex` turns those scans into hash lookups and supplies the
label frequencies the planner's selectivity estimates use.  Indexes are
built once per document and are immutable snapshots — mutate the document
and you rebuild (the engines treat documents as frozen during evaluation).
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..ssd.model import Document, Element

__all__ = ["DocumentIndex"]


class DocumentIndex:
    """Label / attribute / position index over one document."""

    def __init__(self, document: Document) -> None:
        self._document = document
        self._by_tag: dict[str, list[Element]] = {}
        self._by_attribute: dict[str, list[Element]] = {}
        self._positions: dict[int, int] = {}
        self._element_count = 0
        for position, element in enumerate(document.iter()):
            self._element_count += 1
            self._by_tag.setdefault(element.tag, []).append(element)
            self._positions[id(element)] = position
            for name in element.attributes:
                self._by_attribute.setdefault(name, []).append(element)

    # -- lookups ------------------------------------------------------------

    @property
    def document(self) -> Document:
        """The indexed document."""
        return self._document

    def elements_with_tag(self, tag: str) -> list[Element]:
        """All elements with ``tag``, document order."""
        return self._by_tag.get(tag, [])

    def elements_with_attribute(self, name: str) -> list[Element]:
        """All elements carrying attribute ``name``, document order."""
        return self._by_attribute.get(name, [])

    def all_elements(self) -> Iterator[Element]:
        """Every element, document order."""
        return self._document.iter()

    def position(self, element: Element) -> int:
        """Document-order position of ``element`` (elements only)."""
        return self._positions[id(element)]

    # -- statistics -----------------------------------------------------------

    def element_count(self) -> int:
        """Total number of elements."""
        return self._element_count

    def tag_count(self, tag: str) -> int:
        """Number of elements with ``tag``."""
        return len(self._by_tag.get(tag, ()))

    def tags(self) -> set[str]:
        """The set of tags occurring in the document."""
        return set(self._by_tag)

    def selectivity(self, tag: Optional[str]) -> int:
        """Estimated candidate count for a pattern node.

        ``None`` (wildcard) costs the whole document.
        """
        if tag is None:
            return self._element_count
        return self.tag_count(tag)
