"""Document indexes for query evaluation.

The XML-GL matcher scans documents for elements matching pattern nodes; a
:class:`DocumentIndex` turns those scans into hash lookups and supplies the
label frequencies the planner's selectivity estimates use.

On top of the tag/attribute maps the index carries a **pre/post-order
interval encoding** assigned in one construction pass: every element gets
``(pre, post, depth, parent_pre)`` where ``pre`` is its document-order
position and ``post`` the largest ``pre`` in its subtree.  That makes the
structural predicates the matchers hammer on cheap:

* ancestor/descendant — two integer comparisons
  (``pre(a) < pre(d) <= post(a)``),
* document-order comparison — a ``pre`` comparison,
* "elements with tag T inside the subtree of P" — a :mod:`bisect` range
  over the per-tag pre-sorted arrays instead of a subtree walk.

Indexes are built once per document and are immutable snapshots — mutate
the document and you rebuild (the engines treat documents as frozen during
evaluation; :mod:`repro.engine.cache` holds the shared snapshots and is
invalidated explicitly).
"""

from __future__ import annotations

import itertools
from array import array
from bisect import bisect_right
from typing import Iterable, Iterator, Optional

from ..ssd.model import Document, Element
from .estimator import DocumentStatistics

__all__ = ["DocumentIndex"]

#: Monotonic stamp handed to each index at construction.  A rebuilt index
#: (after a document mutation and cache invalidation) gets a new epoch, so
#: plan-cache keys embedding the old one can never serve stale plans.
#: ``itertools.count`` is atomic under the GIL — no lock needed.
_STATS_EPOCHS = itertools.count(1)


class DocumentIndex:
    """Label / attribute / interval index over one document."""

    def __init__(self, document: Document) -> None:
        self._document = document
        by_tag: dict[str, list[Element]] = {}
        tag_pres: dict[str, list[int]] = {}
        by_attribute: dict[str, list[Element]] = {}
        self._pre: dict[int, int] = {}          # id(element) -> pre number
        self._elements: list[Element] = []      # pre -> element
        self._depth: list[int] = []             # pre -> depth (root = 0)
        self._parent_pre: list[int] = []        # pre -> parent's pre (-1 at root)

        root = document.root
        stack: list[tuple[Element, int, int]] = (
            [(root, -1, 0)] if root is not None else []
        )
        while stack:
            element, parent_pre, depth = stack.pop()
            pre = len(self._elements)
            self._elements.append(element)
            self._pre[id(element)] = pre
            self._depth.append(depth)
            self._parent_pre.append(parent_pre)
            by_tag.setdefault(element.tag, []).append(element)
            tag_pres.setdefault(element.tag, []).append(pre)
            for name in element.attributes:
                by_attribute.setdefault(name, []).append(element)
            stack.extend(
                (child, pre, depth + 1)
                for child in reversed(element.child_elements())
            )

        # post numbers: children are contiguous after their parent in pre
        # order, so post = pre + subtree_size - 1; accumulate sizes bottom-up.
        count = len(self._elements)
        sizes = [1] * count
        for pre in range(count - 1, 0, -1):
            sizes[self._parent_pre[pre]] += sizes[pre]
        self._post: list[int] = [pre + sizes[pre] - 1 for pre in range(count)]
        self._element_count = count

        # Flat int columns for the columnar kernels (repro.engine.columns):
        # pre -> post and pre -> parent's pre as array('i') so numpy can
        # view them zero-copy, plus a per-tag sorted pre column.
        self._post_column = array("i", self._post)
        self._parent_pre_column = array("i", self._parent_pre)
        self._all_pres = array("i", range(count))

        # Freeze the pools: lookups hand them straight to callers, and the
        # matchers slice them, so they must be immutable.
        self._by_tag: dict[str, tuple[Element, ...]] = {
            tag: tuple(pool) for tag, pool in by_tag.items()
        }
        self._tag_pres: dict[str, list[int]] = tag_pres
        self._by_attribute: dict[str, tuple[Element, ...]] = {
            name: tuple(pool) for name, pool in by_attribute.items()
        }

        # Cost-model statistics ride on the index snapshot (collected once,
        # same immutability contract); the epoch versions them for the
        # compiled-plan cache.
        self._statistics = DocumentStatistics.collect(
            self._elements, self._parent_pre, self._depth
        )
        self._stats_epoch = next(_STATS_EPOCHS)

    # -- lookups ------------------------------------------------------------

    @property
    def document(self) -> Document:
        """The indexed document."""
        return self._document

    def elements_with_tag(self, tag: str) -> tuple[Element, ...]:
        """All elements with ``tag``, document order (immutable)."""
        return self._by_tag.get(tag, ())

    def elements_with_attribute(self, name: str) -> tuple[Element, ...]:
        """All elements carrying attribute ``name``, document order."""
        return self._by_attribute.get(name, ())

    def all_elements(self) -> Iterator[Element]:
        """Every element, document order."""
        return iter(self._elements)

    def position(self, element: Element) -> int:
        """Document-order position (= pre number) of ``element``."""
        return self._pre[id(element)]

    def covers(self, element: Element) -> bool:
        """Whether ``element`` belongs to the indexed document."""
        return id(element) in self._pre

    # -- interval encoding ----------------------------------------------------

    def interval(self, element: Element) -> tuple[int, int]:
        """``(pre, post)`` of ``element``'s subtree."""
        pre = self._pre[id(element)]
        return pre, self._post[pre]

    def depth(self, element: Element) -> int:
        """Nesting depth of ``element`` (root = 0)."""
        return self._depth[self._pre[id(element)]]

    def is_ancestor(self, ancestor: Element, descendant: Element) -> bool:
        """Proper ancestor test via two integer comparisons."""
        a = self._pre[id(ancestor)]
        d = self._pre[id(descendant)]
        return a < d <= self._post[a]

    def descendants(self, element: Element) -> list[Element]:
        """Proper descendants of ``element``, document order (O(result))."""
        pre = self._pre[id(element)]
        return self._elements[pre + 1 : self._post[pre] + 1]

    def descendants_with_tag(self, element: Element, tag: str) -> tuple[Element, ...]:
        """Descendants of ``element`` with ``tag`` via a bisect range."""
        pres = self._tag_pres.get(tag)
        if not pres:
            return ()
        pre = self._pre[id(element)]
        lo = bisect_right(pres, pre)
        hi = bisect_right(pres, self._post[pre])
        return self._by_tag[tag][lo:hi]

    # -- columns (repro.engine.columns kernels) -------------------------------

    def element_table(self) -> list[Element]:
        """The ``pre -> element`` side table (read-only by convention).

        This is what lets the columnar pipeline defer node materialisation
        to hash-join assembly: every intermediate stays an int column.
        """
        return self._elements

    def post_column(self) -> array:
        """``pre -> post`` as a flat int column."""
        return self._post_column

    def parent_pre_column(self) -> array:
        """``pre -> parent's pre`` (``-1`` at the root) as an int column."""
        return self._parent_pre_column

    def all_pres(self) -> array:
        """Every pre id, ascending — the wildcard pool column (shared,
        read-only by convention)."""
        return self._all_pres

    def tag_pres(self, tag: str) -> list[int]:
        """Sorted pre ids of elements with ``tag`` (shared, read-only)."""
        return self._tag_pres.get(tag, [])

    def pres_of(self, elements: Iterable[Element]) -> array:
        """Pre-id column of ``elements`` (kept in the iteration order)."""
        pre = self._pre
        return array("i", (pre[id(element)] for element in elements))

    # -- statistics -----------------------------------------------------------

    @property
    def statistics(self) -> DocumentStatistics:
        """Cost-model statistics collected at index build (immutable)."""
        return self._statistics

    @property
    def stats_epoch(self) -> int:
        """Monotonic stamp of this snapshot; plan-cache keys embed it."""
        return self._stats_epoch

    def element_count(self) -> int:
        """Total number of elements."""
        return self._element_count

    def tag_count(self, tag: str) -> int:
        """Number of elements with ``tag``."""
        return len(self._by_tag.get(tag, ()))

    def tag_count_within(self, element: Element, tag: Optional[str]) -> int:
        """Number of ``tag`` elements inside ``element``'s subtree.

        ``None`` counts every proper descendant.  Costs two bisects.
        """
        pre = self._pre[id(element)]
        if tag is None:
            return self._post[pre] - pre
        pres = self._tag_pres.get(tag)
        if not pres:
            return 0
        return bisect_right(pres, self._post[pre]) - bisect_right(pres, pre)

    def tags(self) -> set[str]:
        """The set of tags occurring in the document."""
        return set(self._by_tag)

    def selectivity(self, tag: Optional[str]) -> int:
        """Estimated candidate count for a pattern node.

        ``None`` (wildcard) costs the whole document.
        """
        if tag is None:
            return self._element_count
        return self.tag_count(tag)
