"""Variable bindings as relations.

A query match produces a :class:`Binding` — an immutable mapping from
variable names to bound values (document nodes, graph node ids, or atomic
values).  A :class:`BindingSet` is an ordered collection of bindings over a
common variable set and supports the relational operations the construction
side needs: projection, selection, natural join, union, difference, grouping
and duplicate elimination.

Bound values may be unhashable or compare by identity (document nodes), so
set-like operations key on value *identity keys* computed by
:func:`value_key`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Optional

__all__ = ["Binding", "BindingSet", "value_key"]


def value_key(value: Any) -> Any:
    """A hashable key identifying a bound value.

    Document/graph nodes are identified by ``id()`` (binding semantics are
    by occurrence, not by structural equality); atomic values by themselves.
    """
    if isinstance(value, (str, int, float, bool, frozenset, tuple)) or value is None:
        return value
    return id(value)


class Binding(Mapping[str, Any]):
    """One immutable variable assignment."""

    __slots__ = ("_values",)

    def __init__(self, values: Optional[Mapping[str, Any]] = None) -> None:
        self._values: dict[str, Any] = dict(values or {})

    # Mapping protocol ------------------------------------------------------

    def __getitem__(self, variable: str) -> Any:
        return self._values[variable]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    # Operations --------------------------------------------------------------

    def extended(self, variable: str, value: Any) -> "Binding":
        """A new binding with one extra variable (must be fresh)."""
        if variable in self._values:
            raise KeyError(f"variable {variable!r} already bound")
        merged = dict(self._values)
        merged[variable] = value
        return Binding(merged)

    def project(self, variables: Iterable[str]) -> "Binding":
        """Restriction to ``variables`` (missing ones are an error)."""
        return Binding({v: self._values[v] for v in variables})

    def compatible(self, other: "Binding") -> bool:
        """True when shared variables agree (by identity key)."""
        for variable in self._values.keys() & other._values.keys():
            if value_key(self._values[variable]) != value_key(other._values[variable]):
                return False
        return True

    def merged(self, other: "Binding") -> "Binding":
        """Union of two compatible bindings."""
        merged = dict(self._values)
        merged.update(other._values)
        return Binding(merged)

    def key(self, variables: Optional[Iterable[str]] = None) -> tuple:
        """Hashable identity of this binding (over ``variables`` or all)."""
        names = sorted(variables if variables is not None else self._values)
        return tuple((n, value_key(self._values[n])) for n in names)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self._values.items())
        return f"Binding({inner})"


class BindingSet:
    """An ordered bag of bindings supporting relational operations."""

    __slots__ = ("_bindings",)

    def __init__(self, bindings: Optional[Iterable[Binding]] = None) -> None:
        self._bindings: list[Binding] = list(bindings or [])

    # -- basics ---------------------------------------------------------------

    def __iter__(self) -> Iterator[Binding]:
        return iter(self._bindings)

    def __len__(self) -> int:
        return len(self._bindings)

    def __bool__(self) -> bool:
        return bool(self._bindings)

    def __getitem__(self, index: int) -> Binding:
        return self._bindings[index]

    def add(self, binding: Binding) -> None:
        """Append one binding."""
        self._bindings.append(binding)

    def variables(self) -> set[str]:
        """Union of variable names over all bindings."""
        names: set[str] = set()
        for binding in self._bindings:
            names |= set(binding)
        return names

    # -- relational algebra -----------------------------------------------------

    def select(self, predicate: Callable[[Binding], bool]) -> "BindingSet":
        """Bindings satisfying ``predicate``."""
        return BindingSet(b for b in self._bindings if predicate(b))

    def project(self, variables: Iterable[str]) -> "BindingSet":
        """Project every binding onto ``variables`` (keeps duplicates)."""
        names = list(variables)
        return BindingSet(b.project(names) for b in self._bindings)

    def join(self, other: "BindingSet") -> "BindingSet":
        """Natural join on shared variables (hash join)."""
        if not self._bindings or not other._bindings:
            return BindingSet()
        shared = sorted(self.variables() & other.variables())
        if not shared:
            return BindingSet(
                a.merged(b) for a in self._bindings for b in other._bindings
            )
        table: dict[tuple, list[Binding]] = {}
        for binding in self._bindings:
            table.setdefault(binding.key(shared), []).append(binding)
        joined = BindingSet()
        for other_binding in other._bindings:
            for mine in table.get(other_binding.key(shared), ()):
                joined.add(mine.merged(other_binding))
        return joined

    def union(self, other: "BindingSet") -> "BindingSet":
        """Bag union preserving order."""
        return BindingSet([*self._bindings, *other._bindings])

    def minus(self, other: "BindingSet") -> "BindingSet":
        """Bindings whose shared-variable restriction is absent from ``other``.

        This is the anti-join used by negated subpatterns.
        """
        shared = sorted(self.variables() & other.variables())
        if not shared:
            return BindingSet() if other._bindings else BindingSet(self._bindings)
        present = {b.key(shared) for b in other._bindings}
        return BindingSet(
            b for b in self._bindings if b.key(shared) not in present
        )

    def distinct(self, variables: Optional[Iterable[str]] = None) -> "BindingSet":
        """Duplicate elimination by identity key (over all or given vars)."""
        names = list(variables) if variables is not None else None
        seen: set[tuple] = set()
        result = BindingSet()
        for binding in self._bindings:
            key = binding.key(names if names is not None else None)
            if key not in seen:
                seen.add(key)
                result.add(binding)
        return result

    def group_by(self, variables: Iterable[str]) -> list[tuple[Binding, "BindingSet"]]:
        """Partition into groups sharing values on ``variables``.

        Returns (group-key binding, member set) pairs in first-seen order.
        """
        names = list(variables)
        groups: dict[tuple, tuple[Binding, BindingSet]] = {}
        for binding in self._bindings:
            key = binding.key(names)
            if key not in groups:
                groups[key] = (binding.project(names), BindingSet())
            groups[key][1].add(binding)
        return list(groups.values())

    def order_by(
        self, sort_key: Callable[[Binding], Any], reverse: bool = False
    ) -> "BindingSet":
        """Stable sort by ``sort_key``."""
        return BindingSet(sorted(self._bindings, key=sort_key, reverse=reverse))

    def values(self, variable: str) -> list[Any]:
        """The value bound to ``variable`` in each binding (in order)."""
        return [b[variable] for b in self._bindings]

    def __repr__(self) -> str:
        return f"BindingSet({len(self._bindings)} bindings over {sorted(self.variables())})"
