"""Predicate AST for query conditions.

Graphical queries annotate pattern nodes with predicates ("price < 50",
"year = 1999", name wildcards).  This module defines a small expression
tree shared by both languages:

* operands — constants, the textual *content* of a bound node, a named
  *attribute* of a bound node, the *name* (tag/label) of a bound node, and
  arithmetic over operands;
* conditions — comparisons over operands, regular-expression match,
  conjunction, disjunction and negation.

Evaluation is against a :class:`~repro.engine.bindings.Binding` plus a
:class:`ValueAccessor` that knows how to read content/attributes/names from
whatever node type the host language binds (XML elements, G-Log nodes).
Type mismatches (ordering a number against a word) make the enclosing
comparison *false* rather than raising, matching the filter semantics of
query languages.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Optional, Protocol, Union

from ..errors import EvaluationError
from ..ssd.datatypes import coerce, compare, equal_atoms
from ..ssd.model import Element
from .bindings import Binding

__all__ = [
    "ValueAccessor",
    "DocumentAccessor",
    "Const",
    "ContentOf",
    "AttributeOf",
    "NameOf",
    "Arith",
    "Comparison",
    "Regex",
    "And",
    "Or",
    "Not",
    "TRUE",
    "condition_variables",
    "Operand",
    "Condition",
]


class ValueAccessor(Protocol):
    """Reads atomic views of bound nodes for condition evaluation."""

    def content(self, value: Any) -> Any:
        """Textual/atomic content of a bound node."""

    def attribute(self, value: Any, name: str) -> Optional[Any]:
        """Named attribute of a bound node, or ``None``."""

    def name(self, value: Any) -> str:
        """Tag / label of a bound node."""


class DocumentAccessor:
    """Default accessor for XML :class:`~repro.ssd.model.Element` bindings."""

    def content(self, value: Any) -> Any:
        if isinstance(value, Element):
            return value.text_content()
        return value

    def attribute(self, value: Any, name: str) -> Optional[Any]:
        if isinstance(value, Element):
            return value.get(name)
        return None

    def name(self, value: Any) -> str:
        if isinstance(value, Element):
            return value.tag
        raise EvaluationError(f"value {value!r} has no name")


# ---------------------------------------------------------------------------
# Operands
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Const:
    """A literal value."""

    value: Any

    def evaluate(self, binding: Binding, accessor: ValueAccessor) -> Any:
        return self.value

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class ContentOf:
    """Textual content of the node bound to ``variable``."""

    variable: str

    def evaluate(self, binding: Binding, accessor: ValueAccessor) -> Any:
        return accessor.content(binding[self.variable])

    def __str__(self) -> str:
        return self.variable


@dataclass(frozen=True)
class AttributeOf:
    """Attribute ``name`` of the node bound to ``variable``."""

    variable: str
    name: str

    def evaluate(self, binding: Binding, accessor: ValueAccessor) -> Any:
        return accessor.attribute(binding[self.variable], self.name)

    def __str__(self) -> str:
        return f"{self.variable}.{self.name}"


@dataclass(frozen=True)
class NameOf:
    """Tag / label of the node bound to ``variable``."""

    variable: str

    def evaluate(self, binding: Binding, accessor: ValueAccessor) -> Any:
        return accessor.name(binding[self.variable])

    def __str__(self) -> str:
        return f"name({self.variable})"


_ARITH_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


@dataclass(frozen=True)
class Arith:
    """Arithmetic over two operands (operands coerced to numbers)."""

    op: str
    left: "Operand"
    right: "Operand"

    def __post_init__(self) -> None:
        if self.op not in _ARITH_OPS:
            raise EvaluationError(f"unknown arithmetic operator {self.op!r}")

    def evaluate(self, binding: Binding, accessor: ValueAccessor) -> Any:
        left = coerce(self.left.evaluate(binding, accessor))
        right = coerce(self.right.evaluate(binding, accessor))
        if not isinstance(left, (int, float)) or not isinstance(right, (int, float)):
            raise TypeError(f"arithmetic on non-numbers: {left!r} {self.op} {right!r}")
        try:
            return _ARITH_OPS[self.op](left, right)
        except ZeroDivisionError:
            raise TypeError("division by zero")

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


Operand = Union[Const, ContentOf, AttributeOf, NameOf, Arith]


# ---------------------------------------------------------------------------
# Conditions
# ---------------------------------------------------------------------------

_COMPARISON_OPS = {"=", "!=", "<", "<=", ">", ">="}


@dataclass(frozen=True)
class Comparison:
    """``left op right`` with the paper's loose typing.

    Equality uses :func:`~repro.ssd.datatypes.equal_atoms`; ordering uses
    :func:`~repro.ssd.datatypes.compare`.  A ``None`` operand (missing
    attribute) or a type mismatch makes the comparison false.
    """

    op: str
    left: Operand
    right: Operand

    def __post_init__(self) -> None:
        if self.op not in _COMPARISON_OPS:
            raise EvaluationError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, binding: Binding, accessor: ValueAccessor) -> bool:
        try:
            left = self.left.evaluate(binding, accessor)
            right = self.right.evaluate(binding, accessor)
        except (TypeError, KeyError):
            return False
        if left is None or right is None:
            return False
        if self.op == "=":
            return equal_atoms(left, right)
        if self.op == "!=":
            return not equal_atoms(left, right)
        try:
            delta = compare(left, right)
        except TypeError:
            return False
        if self.op == "<":
            return delta < 0
        if self.op == "<=":
            return delta <= 0
        if self.op == ">":
            return delta > 0
        return delta >= 0

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class Regex:
    """Full-match of a regular expression against an operand's text."""

    operand: Operand
    pattern: str

    def evaluate(self, binding: Binding, accessor: ValueAccessor) -> bool:
        try:
            value = self.operand.evaluate(binding, accessor)
        except (TypeError, KeyError):
            return False
        if value is None:
            return False
        return re.fullmatch(self.pattern, str(value)) is not None

    def __str__(self) -> str:
        return f"{self.operand} ~ /{self.pattern}/"


@dataclass(frozen=True)
class And:
    """Conjunction of conditions."""

    conditions: tuple["Condition", ...]

    def evaluate(self, binding: Binding, accessor: ValueAccessor) -> bool:
        return all(c.evaluate(binding, accessor) for c in self.conditions)

    def __str__(self) -> str:
        return "(" + " and ".join(str(c) for c in self.conditions) + ")"


@dataclass(frozen=True)
class Or:
    """Disjunction of conditions."""

    conditions: tuple["Condition", ...]

    def evaluate(self, binding: Binding, accessor: ValueAccessor) -> bool:
        return any(c.evaluate(binding, accessor) for c in self.conditions)

    def __str__(self) -> str:
        return "(" + " or ".join(str(c) for c in self.conditions) + ")"


@dataclass(frozen=True)
class Not:
    """Negation of a condition."""

    condition: "Condition"

    def evaluate(self, binding: Binding, accessor: ValueAccessor) -> bool:
        return not self.condition.evaluate(binding, accessor)

    def __str__(self) -> str:
        return f"not {self.condition}"


@dataclass(frozen=True)
class _True:
    """The always-true condition (useful default)."""

    def evaluate(self, binding: Binding, accessor: ValueAccessor) -> bool:
        return True

    def __str__(self) -> str:
        return "true"


TRUE = _True()

Condition = Union[Comparison, Regex, And, Or, Not, _True]


def condition_variables(condition: "Condition") -> set[str]:
    """The set of binding variables a condition reads."""

    def of_operand(operand: Operand) -> set[str]:
        if isinstance(operand, Const):
            return set()
        if isinstance(operand, (ContentOf, NameOf)):
            return {operand.variable}
        if isinstance(operand, AttributeOf):
            return {operand.variable}
        if isinstance(operand, Arith):
            return of_operand(operand.left) | of_operand(operand.right)
        raise EvaluationError(f"unknown operand {operand!r}")

    if isinstance(condition, Comparison):
        return of_operand(condition.left) | of_operand(condition.right)
    if isinstance(condition, Regex):
        return of_operand(condition.operand)
    if isinstance(condition, (And, Or)):
        result: set[str] = set()
        for sub in condition.conditions:
            result |= condition_variables(sub)
        return result
    if isinstance(condition, Not):
        return condition_variables(condition.condition)
    if isinstance(condition, _True):
        return set()
    raise EvaluationError(f"unknown condition {condition!r}")
