"""Columnar kernels over sorted ``pre``-id arrays.

The set-at-a-time pipeline originally materialised candidate pools as
lists of node objects and edge relations as lists of ``(Element,
Element)`` tuples; every semi-join then re-hashed object identities.  The
interval index already assigns every element a dense integer ``pre``
number, so pools and relations can instead be **columns**: flat sorted
``array('i')`` vectors of pre ids, with the index's ``pre -> element``
side table deferring object materialisation to hash-join assembly.

This module holds the int-only kernels that representation enables:

* :func:`intersect_sorted` — semi-joins as sorted-array intersections
  (galloping binary search when one side is much smaller);
* :func:`containment_pairs` / :func:`containment_count` — an
  ancestor/descendant arc between two pools, answered per parent by two
  binary searches over the child pre column against the parent's
  ``(pre, post]`` interval;
* :func:`direct_pairs` — a parent/child arc, answered per child by one
  lookup in the ``parent_pre`` column and a membership probe into the
  parent pool.

Every kernel has a pure-Python ``array('i')`` implementation and an
optional numpy fast path behind a feature probe: numpy is **not** a
dependency — when it is importable (and ``REPRO_COLUMNS`` is not
``python``) large inputs take the vectorised route, otherwise everything
runs on :mod:`array` + :mod:`bisect`.  Both paths produce identical
output; ``REPRO_COLUMNS=python`` / ``REPRO_COLUMNS=numpy`` pin the
backend for differential testing.
"""

from __future__ import annotations

import os
from array import array
from bisect import bisect_left, bisect_right
from typing import Iterable, Optional, Sequence

__all__ = [
    "HAVE_NUMPY",
    "backend",
    "column",
    "containment_count",
    "containment_pairs",
    "direct_pairs",
    "intersect_sorted",
    "member_filter",
    "unique_sorted",
]

try:  # feature probe — numpy is optional, never required
    import numpy as _np
except Exception:  # pragma: no cover - exercised only without numpy
    _np = None

#: Whether the numpy fast path is available in this process.
HAVE_NUMPY = _np is not None

#: Backend pin: ``auto`` (default), ``python``, or ``numpy``.
_FORCED = os.environ.get("REPRO_COLUMNS", "auto").strip().lower()

#: Below this input size the numpy call overhead beats the win.
_NUMPY_MIN = 256


def backend() -> str:
    """The backend large kernels will use: ``"numpy"`` or ``"python"``."""
    if _FORCED == "python" or _np is None:
        return "python"
    return "numpy"


def _use_numpy(size: int) -> bool:
    if _np is None or _FORCED == "python":
        return False
    return _FORCED == "numpy" or size >= _NUMPY_MIN


def _as_np(col: Sequence[int]):
    """Zero-copy numpy view of an ``array('i')`` (copying otherwise)."""
    if isinstance(col, array):
        return _np.frombuffer(col, dtype=_np.int32)
    return _np.asarray(col, dtype=_np.int32)


def _from_np(values) -> array:
    out = array("i")
    out.frombytes(values.astype(_np.int32, copy=False).tobytes())
    return out


def column(values: Iterable[int] = ()) -> array:
    """A fresh int column."""
    return array("i", values)


def unique_sorted(values: Iterable[int]) -> array:
    """Sorted de-duplicated column from arbitrary int values."""
    return array("i", sorted(set(values)))


def intersect_sorted(a: Sequence[int], b: Sequence[int]) -> array:
    """Intersection of two sorted unique columns, sorted ascending.

    Gallops the smaller column through the larger via binary search when
    the size ratio is lopsided; otherwise streams the smaller side through
    a membership set (both O-optimal in CPython for their regime).
    """
    if len(a) > len(b):
        a, b = b, a
    if not a or not b:
        return array("i")
    if _use_numpy(len(b)):
        na, nb = _as_np(a), _as_np(b)
        idx = _np.searchsorted(nb, na)
        idx_c = _np.minimum(idx, len(nb) - 1)
        return _from_np(na[nb[idx_c] == na])
    out = array("i")
    if len(b) >= 16 * len(a):
        hi = len(b)
        for value in a:
            i = bisect_left(b, value, 0, hi)
            if i < hi and b[i] == value:
                out.append(value)
    else:
        members = set(b)
        out.extend(value for value in a if value in members)
    return out


def containment_count(
    parent_pres: Sequence[int],
    posts: Sequence[int],
    child_pres: Sequence[int],
) -> int:
    """Number of pairs :func:`containment_pairs` would materialise."""
    if not parent_pres or not child_pres:
        return 0
    if _use_numpy(len(parent_pres) + len(child_pres)):
        np_child = _as_np(child_pres)
        np_parent = _as_np(parent_pres)
        np_posts = _as_np(posts)
        los = _np.searchsorted(np_child, np_parent, side="right")
        his = _np.searchsorted(np_child, np_posts[np_parent], side="right")
        return int((his - los).sum())
    total = 0
    hi_bound = len(child_pres)
    for pre in parent_pres:
        lo = bisect_right(child_pres, pre)
        if lo >= hi_bound:
            continue
        total += bisect_right(child_pres, posts[pre], lo) - lo
    return total


def containment_pairs(
    parent_pres: Sequence[int],
    posts: Sequence[int],
    child_pres: Sequence[int],
) -> tuple[array, array]:
    """All ``(ancestor pre, descendant pre)`` pairs between two pools.

    ``parent_pres`` and ``child_pres`` must be sorted ascending; ``posts``
    is the full ``pre -> post`` column of the index.  A child ``c`` is a
    proper descendant of parent ``p`` iff ``p < c <= post[p]``, so each
    parent contributes one contiguous bisect range of the child column.
    Output is sorted lexicographically by ``(parent, child)``.
    """
    left = array("i")
    right = array("i")
    if not parent_pres or not child_pres:
        return left, right
    if _use_numpy(len(parent_pres) + len(child_pres)):
        np_child = _as_np(child_pres)
        np_parent = _as_np(parent_pres)
        np_posts = _as_np(posts)
        los = _np.searchsorted(np_child, np_parent, side="right")
        his = _np.searchsorted(np_child, np_posts[np_parent], side="right")
        counts = his - los
        total = int(counts.sum())
        if total == 0:
            return left, right
        reps = _np.repeat(_np.arange(len(np_parent)), counts)
        # Each output slot maps to one child index: its parent's ``lo``
        # plus the slot's offset within the parent's run.
        offsets = _np.arange(total) - _np.repeat(
            counts.cumsum() - counts, counts
        )
        return (
            _from_np(np_parent[reps]),
            _from_np(np_child[los[reps] + offsets]),
        )
    hi_bound = len(child_pres)
    for pre in parent_pres:
        lo = bisect_right(child_pres, pre)
        if lo >= hi_bound:
            continue
        hi = bisect_right(child_pres, posts[pre], lo)
        if hi > lo:
            left.extend(array("i", [pre]) * (hi - lo))
            right.extend(child_pres[lo:hi])
    return left, right


def direct_pairs(
    parent_pres: Sequence[int],
    parent_pre_column: Sequence[int],
    child_pres: Sequence[int],
) -> tuple[array, array]:
    """All ``(parent pre, child pre)`` pairs joined by the parent pointer.

    ``parent_pre_column`` is the full ``pre -> parent's pre`` column
    (``-1`` at the root).  Each child costs one column read plus one
    membership probe into the sorted parent pool.  Output is sorted by
    child; within one parent, children ascend.
    """
    left = array("i")
    right = array("i")
    if not parent_pres or not child_pres:
        return left, right
    if _use_numpy(len(child_pres)):
        np_child = _as_np(child_pres)
        np_parents_of = _as_np(parent_pre_column)[np_child]
        np_pool = _as_np(parent_pres)
        idx = _np.searchsorted(np_pool, np_parents_of)
        idx_c = _np.minimum(idx, len(np_pool) - 1)
        mask = (np_parents_of >= 0) & (np_pool[idx_c] == np_parents_of)
        return _from_np(np_parents_of[mask]), _from_np(np_child[mask])
    members = set(parent_pres)
    for pre in child_pres:
        parent = parent_pre_column[pre]
        if parent >= 0 and parent in members:
            left.append(parent)
            right.append(pre)
    return left, right


def member_filter(pool: Sequence[int], keep: Optional[set]) -> array:
    """``pool`` restricted to members of ``keep`` (order preserved)."""
    if keep is None:
        return array("i", pool)
    return array("i", (value for value in pool if value in keep))
