"""Shared query-evaluation machinery: bindings, conditions, indexes, planning."""

from .bindings import Binding, BindingSet, value_key
from .conditions import (
    And,
    Arith,
    AttributeOf,
    Comparison,
    Condition,
    Const,
    ContentOf,
    DocumentAccessor,
    NameOf,
    Not,
    Operand,
    Or,
    Regex,
    TRUE,
    condition_variables,
)
from .cache import DocumentIndexCache, get_index, invalidate, shared_cache
from .index import DocumentIndex
from .joins import EdgeRelation, equijoin_key
from .metrics import MetricsRegistry, global_registry
from .narrowing import intersect_pools
from .options import MatchOptions
from .pipeline import connected_components, evaluate_forest, is_forest
from .planner import plan_order
from .stats import EvalStats
from .trace import Span, Tracer

__all__ = [
    "Binding", "BindingSet", "value_key",
    "Const", "ContentOf", "AttributeOf", "NameOf", "Arith",
    "Comparison", "Regex", "And", "Or", "Not", "TRUE",
    "Condition", "Operand", "DocumentAccessor", "condition_variables",
    "DocumentIndex", "DocumentIndexCache", "get_index", "invalidate",
    "shared_cache", "intersect_pools", "plan_order", "EvalStats",
    "MatchOptions", "EdgeRelation", "equijoin_key",
    "connected_components", "evaluate_forest", "is_forest",
    "Span", "Tracer", "MetricsRegistry", "global_registry",
]
