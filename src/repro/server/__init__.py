"""The asyncio multi-tenant query service (``repro serve``).

Layer map (event loop on the left, CPU on the right — the EdgeDB-style
compiler/IO split the ROADMAP names):

* :mod:`repro.server.http` — minimal asyncio HTTP/1.1, JSON in/out
* :mod:`repro.server.admission` — per-tenant admit/queue/reject gates
* :mod:`repro.server.config` — :class:`TenantConfig` budget templates
  and :class:`ServerConfig`
* :mod:`repro.server.store` — named, versioned, immutable documents
* :mod:`repro.server.service` — :class:`QueryService` itself, plus
  :class:`BackgroundServer` and the blocking :func:`run_forever`
* :mod:`repro.server.client` — the blocking Python client
* :mod:`repro.server.smoke` — the CI end-to-end smoke check
"""

from .admission import AdmissionRejected, TenantGate
from .client import ServiceClient, ServiceError
from .config import DEFAULT_TENANT, ServerConfig, TenantConfig
from .service import BackgroundServer, PreparedQuery, QueryService, run_forever
from .store import DocumentStore, StoredDocument, UnknownDocument

__all__ = [
    "AdmissionRejected",
    "BackgroundServer",
    "DEFAULT_TENANT",
    "DocumentStore",
    "PreparedQuery",
    "QueryService",
    "ServerConfig",
    "ServiceClient",
    "ServiceError",
    "StoredDocument",
    "TenantConfig",
    "TenantGate",
    "UnknownDocument",
    "run_forever",
]
