"""Named, versioned document registry for the query service.

The service serves queries over documents loaded *ahead* of the request
path (at startup via ``repro serve --document NAME=FILE``, or at runtime
through the ``POST /documents`` admin endpoint).  Every load of a name
creates a new immutable **version**.  Version objects are *genuinely*
immutable: the mutation endpoint never touches a loaded version in place.
Instead, the first mutation of a name forks a distinguished mutable
**head** — a deep copy of the latest version (:meth:`DocumentStore.head`)
— and all typed mutations apply to the head incrementally from then on.
Clients that pinned a version number keep reading their frozen snapshot
(its indexes and cached plans stay valid forever); clients that omit the
version read the head once one exists, the latest version otherwise.
Re-loading a name through ``add`` supersedes the head: mutations made to
the old head are not servable afterwards (the fresh load wins), which is
the documented admin escape hatch.

Concurrent head access is guarded by a per-name read/write lock
(:class:`ReadWriteLock`): query evaluation over the head shares read
locks, the mutation path takes the write lock, so a reader can never
observe a half-applied batch.  Pinned-version queries never lock.

Thread-safety: ``add`` happens on the event loop (admin endpoint) or the
startup thread, ``get`` on executor workers — one lock guards the maps.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Optional

from ..errors import ReproError
from ..ssd.model import Document

__all__ = [
    "DocumentStore",
    "ReadWriteLock",
    "StoredDocument",
    "UnknownDocument",
]


class ReadWriteLock:
    """A writer-preferring read/write lock for mutable-head access.

    Many readers (query evaluations) may hold it concurrently; one writer
    (a mutation commit) excludes everything.  Waiting writers block *new*
    readers, so a stream of long queries cannot starve mutations.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    class _Guard:
        def __init__(self, acquire, release) -> None:
            self._acquire = acquire
            self._release = release

        def __enter__(self):
            self._acquire()
            return self

        def __exit__(self, *exc_info):
            self._release()

    def reading(self) -> "_Guard":
        return self._Guard(self.acquire_read, self.release_read)

    def writing(self) -> "_Guard":
        return self._Guard(self.acquire_write, self.release_write)


class UnknownDocument(ReproError):
    """Raised when a query names a document (or version) the store lacks."""


@dataclass(frozen=True)
class StoredDocument:
    """One version of a named document.

    ``head=False`` entries are immutable snapshots; the (at most one per
    name) ``head=True`` entry is the live mutable fork — its ``version``
    is the version it was forked from, and its node count changes with
    every committed batch (``describe`` re-measures).
    """

    name: str
    version: int
    document: Document
    #: Node count (``Element.size`` of the root) — cheap capacity signal.
    nodes: int
    #: ``time.time()`` at load, for the admin listing.
    loaded_at: float
    #: Whether this is the mutable head fork rather than a frozen version.
    head: bool = False

    def describe(self) -> dict[str, Any]:
        root = self.document.root
        return {
            "name": self.name,
            "version": self.version,
            "nodes": root.size() if self.head and root is not None else self.nodes,
            "loaded_at": self.loaded_at,
            "head": self.head,
        }


class DocumentStore:
    """Thread-safe name → version list registry."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._versions: dict[str, list[StoredDocument]] = {}
        self._heads: dict[str, StoredDocument] = {}
        self._head_locks: dict[str, ReadWriteLock] = {}
        self._superseded: Optional[StoredDocument] = None

    def add(self, name: str, document: Document) -> StoredDocument:
        """Register ``document`` as the next version of ``name``.

        A fresh load supersedes any mutable head of the name: the head
        (and the mutations accumulated on it) stops being servable.
        Returns the superseded head via :meth:`pop_superseded_head` so the
        service can tear down its session and subscriptions.
        """
        if not name:
            raise ReproError("document name must be non-empty")
        root = document.root
        nodes = root.size() if root is not None else 0
        with self._lock:
            versions = self._versions.setdefault(name, [])
            stored = StoredDocument(
                name=name,
                version=len(versions) + 1,
                document=document,
                nodes=nodes,
                loaded_at=time.time(),
            )
            versions.append(stored)
            self._superseded = self._heads.pop(name, None)
        return stored

    def pop_superseded_head(self) -> Optional[StoredDocument]:
        """The head the last :meth:`add` superseded, once (else ``None``)."""
        with self._lock:
            superseded = self._superseded
            self._superseded = None
        return superseded

    def head(self, name: Optional[str] = None) -> StoredDocument:
        """The mutable head of ``name``, forked on first use.

        The fork is a deep copy of the latest immutable version — the
        copy-on-first-mutation point.  Later calls return the same head;
        every committed batch mutates it incrementally in place (under
        the name's write lock).
        """
        with self._lock:
            name = self._resolve_name(name)
            existing = self._heads.get(name)
            if existing is not None:
                return existing
            versions = self._versions.get(name)
            if not versions:
                raise UnknownDocument(f"unknown document {name!r}")
            latest = versions[-1]
        # Copy outside the lock: deep-copying a large document must not
        # stall unrelated lookups.  A racing second fork is resolved by
        # re-checking under the lock (first fork wins).
        fork = latest.document.copy()
        with self._lock:
            existing = self._heads.get(name)
            if existing is not None:
                return existing
            head = StoredDocument(
                name=name,
                version=latest.version,
                document=fork,
                nodes=latest.nodes,
                loaded_at=time.time(),
                head=True,
            )
            self._heads[name] = head
            return head

    def head_lock(self, name: Optional[str] = None) -> ReadWriteLock:
        """The per-name read/write lock guarding head access."""
        with self._lock:
            name = self._resolve_name(name)
            lock = self._head_locks.get(name)
            if lock is None:
                lock = ReadWriteLock()
                self._head_locks[name] = lock
            return lock

    def _resolve_name(self, name: Optional[str]) -> str:
        """``None`` → the single stored name (lock held by caller)."""
        if name is None:
            if len(self._versions) != 1:
                raise UnknownDocument(
                    "no document named and the store holds "
                    f"{len(self._versions)} (name one explicitly)"
                )
            return next(iter(self._versions))
        return name

    def add_xml(self, name: str, xml_text: str) -> StoredDocument:
        """Parse ``xml_text`` and register it (the admin-endpoint path)."""
        from ..ssd import parse_document

        return self.add(name, parse_document(xml_text))

    def get(
        self, name: Optional[str] = None, version: Optional[int] = None
    ) -> StoredDocument:
        """Resolve a (name, version) reference; ``None`` means latest.

        With ``name=None`` the store must hold exactly one name — the
        single-document deployment shorthand.  Once a name has a mutable
        head, the version-less reference resolves to the head (the live
        document); pin a version number to keep a frozen snapshot.
        """
        with self._lock:
            name = self._resolve_name(name)
            versions = self._versions.get(name)
            if not versions:
                raise UnknownDocument(f"unknown document {name!r}")
            if version is None:
                head = self._heads.get(name)
                return head if head is not None else versions[-1]
            if not 1 <= version <= len(versions):
                raise UnknownDocument(
                    f"document {name!r} has no version {version} "
                    f"(latest is {len(versions)})"
                )
            return versions[version - 1]

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._versions)

    def describe(self) -> list[dict[str, Any]]:
        """Admin listing: one entry per name with its version history."""
        with self._lock:
            return [
                {
                    "name": name,
                    "latest": len(versions),
                    "versions": [stored.describe() for stored in versions],
                    **(
                        {"head": self._heads[name].describe()}
                        if name in self._heads
                        else {}
                    ),
                }
                for name, versions in sorted(self._versions.items())
            ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._versions)
