"""Named, versioned document registry for the query service.

The service serves queries over documents loaded *ahead* of the request
path (at startup via ``repro serve --document NAME=FILE``, or at runtime
through the ``POST /documents`` admin endpoint).  Every load of a name
creates a new immutable **version** — documents are never mutated in
place, so the shared index cache and plan cache stay valid for as long as
any client still pins an old version.  Queries name a document (and
optionally a version); omitting the version means "latest", and omitting
the name is allowed only while the store holds exactly one name.

Thread-safety: ``add`` happens on the event loop (admin endpoint) or the
startup thread, ``get`` on executor workers — one lock guards the maps.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Optional

from ..errors import ReproError
from ..ssd.model import Document

__all__ = ["DocumentStore", "StoredDocument", "UnknownDocument"]


class UnknownDocument(ReproError):
    """Raised when a query names a document (or version) the store lacks."""


@dataclass(frozen=True)
class StoredDocument:
    """One immutable version of a named document."""

    name: str
    version: int
    document: Document
    #: Node count (``Element.size`` of the root) — cheap capacity signal.
    nodes: int
    #: ``time.time()`` at load, for the admin listing.
    loaded_at: float

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "version": self.version,
            "nodes": self.nodes,
            "loaded_at": self.loaded_at,
        }


class DocumentStore:
    """Thread-safe name → version list registry."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._versions: dict[str, list[StoredDocument]] = {}

    def add(self, name: str, document: Document) -> StoredDocument:
        """Register ``document`` as the next version of ``name``."""
        if not name:
            raise ReproError("document name must be non-empty")
        root = document.root
        nodes = root.size() if root is not None else 0
        with self._lock:
            versions = self._versions.setdefault(name, [])
            stored = StoredDocument(
                name=name,
                version=len(versions) + 1,
                document=document,
                nodes=nodes,
                loaded_at=time.time(),
            )
            versions.append(stored)
        return stored

    def add_xml(self, name: str, xml_text: str) -> StoredDocument:
        """Parse ``xml_text`` and register it (the admin-endpoint path)."""
        from ..ssd import parse_document

        return self.add(name, parse_document(xml_text))

    def get(
        self, name: Optional[str] = None, version: Optional[int] = None
    ) -> StoredDocument:
        """Resolve a (name, version) reference; ``None`` means latest.

        With ``name=None`` the store must hold exactly one name — the
        single-document deployment shorthand.
        """
        with self._lock:
            if name is None:
                if len(self._versions) != 1:
                    raise UnknownDocument(
                        "no document named and the store holds "
                        f"{len(self._versions)} (name one explicitly)"
                    )
                name = next(iter(self._versions))
            versions = self._versions.get(name)
            if not versions:
                raise UnknownDocument(f"unknown document {name!r}")
            if version is None:
                return versions[-1]
            if not 1 <= version <= len(versions):
                raise UnknownDocument(
                    f"document {name!r} has no version {version} "
                    f"(latest is {len(versions)})"
                )
            return versions[version - 1]

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._versions)

    def describe(self) -> list[dict[str, Any]]:
        """Admin listing: one entry per name with its version history."""
        with self._lock:
            return [
                {
                    "name": name,
                    "latest": len(versions),
                    "versions": [stored.describe() for stored in versions],
                }
                for name, versions in sorted(self._versions.items())
            ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._versions)
