"""The asyncio multi-tenant query service.

:class:`QueryService` is the ROADMAP's "millions of users" front-end: a
long-running asyncio HTTP/JSON server over the existing engine, organised
as the EdgeDB-style split the ROADMAP names —

* the **event loop** owns I/O, admission control and governance: it
  parses requests, resolves the tenant, overlays the tenant's
  :class:`~repro.engine.limits.QueryBudget` template, and admits/queues/
  rejects through per-tenant :class:`~repro.server.admission.TenantGate`\\ s;
* **executor workers** own the CPU: admitted evaluations run on a shared
  :class:`~concurrent.futures.ThreadPoolExecutor` through
  :meth:`repro.session.QuerySession.execute` (the thread-safe serving
  path), so the loop never blocks on matching.

Documents are named, immutable versions in a
:class:`~repro.server.store.DocumentStore`; the service keeps one shared
:class:`~repro.session.QuerySession` per stored version, all folding into
one service-wide :class:`~repro.engine.metrics.MetricsRegistry` — which
is exactly why the ``run()`` error-path metrics fix matters end to end:
``/metrics`` error counts are only trustworthy because *failed*
evaluations record too.

Endpoints (JSON in, JSON out):

===============================  ============================================
``POST /query``                  evaluate query text or a prepared digest
``POST /batch``                  evaluate a list of queries (thread/process)
``POST /prepare``                register a (parameterized) prepared query
``GET  /healthz``                liveness: ok + document/tenant counts
``GET  /metrics``                engine registry + per-tenant metrics
``GET  /documents``              the store's name/version listing
``POST /documents``              admin: load a new document version
``POST /documents/NAME/mutate``  apply a typed mutation batch to the head
``POST /subscriptions``          register a continuous query on a head
``GET  /subscriptions/ID/deltas``  long-poll the subscription's deltas
``DELETE /subscriptions/ID``     close and detach a subscription
``POST /shutdown``               begin a clean shutdown (drains, then exits)
===============================  ============================================

Mutation and continuous queries ride the mutable-head machinery of the
store (:mod:`repro.server.store`): loaded versions stay frozen, the first
mutation of a name forks a live head, typed batches maintain its cached
index incrementally, and version-less queries read the head under a
per-name read lock (mutations take the write lock).  Subscriptions attach
to the head's shared session; their deltas are drained — admission-gated
per tenant like every evaluation — through the long-poll endpoint.

Prepared queries use ``${name}`` placeholders (bare ``$ID`` is already
DSL syntax for construct attributes).  Parameter values substitute as DSL
literals; because DSL strings have no escape mechanism, a string value
containing *both* quote characters is rejected rather than silently
corrupted.  Un-parameterized prepared queries are keyed by the plan
cache's canonical digest, so semantically equal texts share one digest
(and one compiled plan); parameterized templates are keyed by their
template text, and every substituted instance still shares compiled
plans through the plan cache's canonical keying.
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
import hashlib
import re
import threading
import time
from dataclasses import dataclass, replace
from typing import Any, Callable, Mapping, Optional

from ..engine.bindings import Binding
from ..engine.metrics import MetricsRegistry
from ..engine.mutate import MutationResult, ops_from_spec
from ..engine.subscribe import ResultDelta, Subscription
from ..errors import (
    BudgetExceeded,
    QuerySyntaxError,
    ReproError,
    XmlSyntaxError,
)
from ..session import BatchResult, QuerySession
from ..ssd import Document, Element, Node, serialize
from .admission import AdmissionRejected, TenantGate
from .config import _BUDGET_FIELDS, ServerConfig, TenantConfig
from .http import (
    ProtocolError,
    Request,
    Response,
    encode_response,
    json_response,
    read_request,
)
from .store import DocumentStore, StoredDocument, UnknownDocument

__all__ = ["BackgroundServer", "PreparedQuery", "QueryService", "run_forever"]

#: Prepared-query placeholder: ``${name}``.  Bare ``$ID`` is live DSL
#: syntax (construct attributes), so placeholders need the braces.
_PARAM_RE = re.compile(r"\$\{([A-Za-z_][A-Za-z0-9_]*)\}")


class UnknownTenant(ReproError):
    """A request named a tenant the service has no gate for."""


class UnknownPrepared(ReproError):
    """A request referenced a prepared-query digest never registered."""


class UnknownSubscription(ReproError):
    """A request referenced a subscription id the service has no entry for."""


@dataclass
class _ServerSubscription:
    """One registered continuous query: subscription + owning context."""

    subscription: "Subscription"
    session: QuerySession
    document: str
    tenant: str


def _render_param(name: str, value: Any) -> str:
    """Render one parameter value as a DSL literal."""
    if isinstance(value, bool):
        raise ReproError(f"parameter {name!r}: booleans are not DSL literals")
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        if '"' not in value:
            return f'"{value}"'
        if "'" not in value:
            return f"'{value}'"
        raise ReproError(
            f"parameter {name!r} contains both quote characters; DSL "
            "strings have no escape mechanism"
        )
    raise ReproError(
        f"parameter {name!r} has unsupported type {type(value).__name__}; "
        "pass a string or a number"
    )


@dataclass(frozen=True)
class PreparedQuery:
    """One registered prepared query (template text + parameter names)."""

    digest: str
    text: str
    params: tuple[str, ...]

    def substitute(self, values: Mapping[str, Any]) -> str:
        """The executable query text with every placeholder bound."""
        missing = [name for name in self.params if name not in values]
        if missing:
            raise ReproError(
                f"prepared query {self.digest[:12]} missing parameters: "
                f"{missing}"
            )
        extra = sorted(set(values) - set(self.params))
        if extra:
            raise ReproError(
                f"prepared query {self.digest[:12]} got unknown parameters: "
                f"{extra}"
            )
        rendered = {
            name: _render_param(name, values[name]) for name in self.params
        }
        return _PARAM_RE.sub(lambda m: rendered[m.group(1)], self.text)


def canonical_digest(text: str) -> str:
    """The plan cache's canonical digest for un-parameterized query text."""
    from ..analysis.rewrite import canonical_rule_text, rewrite_rule
    from ..xmlgl.dsl import parse_rule

    rewritten, _report = rewrite_rule(parse_rule(text))
    return hashlib.sha256(canonical_rule_text(rewritten).encode()).hexdigest()


def _stats_summary(row: BatchResult) -> dict[str, Any]:
    """The client-facing per-query stats block."""
    counters = row.stats.as_dict()
    return {
        "bindings_produced": counters.get("bindings_produced", 0),
        "work": counters.get("work", 0),
        "plan_cache_hits": counters.get("plan_cache_hits", 0),
        "plan_cache_misses": counters.get("plan_cache_misses", 0),
        "truncated": bool(row.stats.extra.get("truncated", False)),
    }


def _row_payload(row: BatchResult) -> dict[str, Any]:
    """One evaluation outcome as a JSON-ready mapping."""
    payload: dict[str, Any] = {
        "ok": row.ok,
        "seconds": row.seconds,
        "stats": _stats_summary(row),
    }
    if row.ok:
        assert row.result is not None
        root = row.result.root
        payload["result"] = serialize(root) if root is not None else ""
    else:
        payload["error"] = {
            "type": type(row.error).__name__,
            "message": str(row.error),
        }
    return payload


def _binding_payload(binding: Binding) -> dict[str, Any]:
    """One binding row as a JSON-ready mapping (elements serialize to XML)."""
    row: dict[str, Any] = {}
    for variable in binding:
        value = binding[variable]
        if isinstance(value, Element):
            row[variable] = {"kind": "element", "xml": serialize(value)}
        elif isinstance(value, Node):
            row[variable] = {"kind": "node", "value": str(value)}
        elif isinstance(value, (str, int, float, bool)) or value is None:
            row[variable] = {"kind": "value", "value": value}
        else:
            row[variable] = {"kind": "value", "value": str(value)}
    return row


def _delta_payload(delta: ResultDelta) -> dict[str, Any]:
    return {
        "revision": delta.revision,
        "added": [_binding_payload(binding) for binding in delta.added],
        "removed": [_binding_payload(binding) for binding in delta.removed],
    }


def _error_status(error: BaseException) -> int:
    """Map an exception to the HTTP status the service answers with."""
    if isinstance(error, AdmissionRejected):
        return 429
    if isinstance(
        error,
        (UnknownDocument, UnknownTenant, UnknownPrepared, UnknownSubscription),
    ):
        return 404
    if isinstance(error, BudgetExceeded):  # DeadlineExceeded is a subclass
        return 408
    if isinstance(error, (QuerySyntaxError, XmlSyntaxError)):
        return 400
    if isinstance(error, ProtocolError):
        return error.status
    if isinstance(error, ReproError):
        return 422
    return 500


class QueryService:
    """The service: store + sessions + gates + executor + HTTP front."""

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        store: Optional[DocumentStore] = None,
    ) -> None:
        from concurrent.futures import ThreadPoolExecutor

        self.config = config if config is not None else ServerConfig()
        self.store = store if store is not None else DocumentStore()
        #: Service-wide engine registry: every session folds into it, so
        #: ``/metrics`` aggregates successes *and* failures across tenants.
        self.metrics = MetricsRegistry()
        self.gates: dict[str, TenantGate] = {
            tenant.name: TenantGate(tenant)
            for tenant in self.config.tenant_roster()
        }
        #: Per-tenant engine registries, recorded alongside the service one
        #: so ``/metrics`` can attribute totals tenant by tenant.
        self.tenant_metrics: dict[str, MetricsRegistry] = {
            name: MetricsRegistry() for name in self.gates
        }
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.max_workers,
            thread_name_prefix="repro-serve",
        )
        # Session keys are (name, version) for frozen snapshots and
        # (name, "head") for the mutable fork — one shared session per
        # servable document either way.
        self._sessions: dict[tuple[str, Any], QuerySession] = {}
        self._sessions_lock = threading.Lock()
        self._prepared: dict[str, PreparedQuery] = {}
        self._subscriptions: dict[str, _ServerSubscription] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set[asyncio.Task] = set()
        self._shutdown = asyncio.Event()
        self._started_at = time.monotonic()
        self.port: Optional[int] = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections (``port=0`` → ephemeral)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()

    async def wait_shutdown(self) -> None:
        await self._shutdown.wait()

    def request_shutdown(self) -> None:
        self._shutdown.set()

    async def close(self) -> None:
        """Stop accepting, close connections, drain the executor.

        ``Server.wait_closed`` does not wait for in-flight handlers, so
        open keep-alive connections are cancelled explicitly — the
        handler treats cancellation as a quiet close.  The executor is
        drained last (``wait=True``): after :meth:`close` returns there
        are zero service threads left, which the CI smoke job asserts.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Wake parked long-polls before cancelling their connections, so
        # no default-executor thread sleeps out its timeout after close.
        with self._sessions_lock:
            entries = list(self._subscriptions.values())
        for entry in entries:
            entry.subscription.close()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._pool.shutdown(wait=True)

    # -- documents & sessions ------------------------------------------------

    def add_document(self, name: str, document: Document) -> StoredDocument:
        stored = self.store.add(name, document)
        self._drop_superseded_head()
        return stored

    def _drop_superseded_head(self) -> None:
        """Tear down the session/subscriptions of a head a re-load killed."""
        superseded = self.store.pop_superseded_head()
        if superseded is None:
            return
        with self._sessions_lock:
            session = self._sessions.pop((superseded.name, "head"), None)
            dead = [
                sid
                for sid, entry in self._subscriptions.items()
                if entry.session is session
            ]
            entries = [self._subscriptions.pop(sid) for sid in dead]
        for entry in entries:
            entry.subscription.close()

    def _session_for(self, stored: StoredDocument) -> QuerySession:
        """The shared session serving one stored document version."""
        key = (stored.name, "head" if stored.head else stored.version)
        with self._sessions_lock:
            session = self._sessions.get(key)
            if session is None:
                session = QuerySession(stored.document, metrics=self.metrics)
                self._sessions[key] = session
            return session

    def _tenant(self, name: Optional[str]) -> TenantGate:
        gate = self.gates.get(name if name else self.config.default_tenant)
        if gate is None:
            raise UnknownTenant(
                f"unknown tenant {name!r}; configured: {sorted(self.gates)}"
            )
        return gate

    def _read_guard(self, stored: StoredDocument):
        """A read lock over the mutable head; a no-op for frozen versions."""
        if stored.head:
            return self.store.head_lock(stored.name).reading()
        return contextlib.nullcontext()

    # -- request handling ----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        read_request(
                            reader,
                            max_body_bytes=self.config.max_body_bytes,
                        ),
                        timeout=self.config.idle_timeout_s,
                    )
                except (asyncio.TimeoutError, asyncio.IncompleteReadError):
                    break
                except ProtocolError as exc:
                    writer.write(
                        encode_response(
                            json_response(
                                {"error": {"type": "ProtocolError",
                                           "message": str(exc)}},
                                status=exc.status,
                            ),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                response = await self._dispatch(request)
                keep = request.keep_alive and response.status < 500
                writer.write(encode_response(response, keep_alive=keep))
                await writer.drain()
                if not keep:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # shutdown cancelled this connection: close quietly (the task
            # ends cleanly, so the loop doesn't log a phantom exception)
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _dispatch(self, request: Request) -> Response:
        if self._shutdown.is_set() and request.path != "/healthz":
            return json_response(
                {"error": {"type": "ShuttingDown",
                           "message": "service is shutting down"}},
                status=503,
            )
        route = (request.method, request.path)
        handler: Optional[Callable] = {
            ("POST", "/query"): self._handle_query,
            ("POST", "/batch"): self._handle_batch,
            ("POST", "/prepare"): self._handle_prepare,
            ("GET", "/healthz"): self._handle_healthz,
            ("GET", "/metrics"): self._handle_metrics,
            ("GET", "/documents"): self._handle_documents_get,
            ("POST", "/documents"): self._handle_documents_post,
            ("POST", "/subscriptions"): self._handle_subscribe,
            ("POST", "/shutdown"): self._handle_shutdown,
        }.get(route)
        args: tuple = ()
        if handler is None:
            # Path-parameter routes: NAME/ID segments are percent-free
            # single path components.
            mutate = re.fullmatch(r"/documents/([^/]+)/mutate", request.path)
            deltas = re.fullmatch(
                r"/subscriptions/([^/]+)/deltas", request.path
            )
            drop = re.fullmatch(r"/subscriptions/([^/]+)", request.path)
            if mutate is not None and request.method == "POST":
                handler, args = self._handle_mutate, (mutate.group(1),)
            elif deltas is not None and request.method == "GET":
                handler, args = self._handle_deltas, (deltas.group(1),)
            elif drop is not None and request.method == "DELETE":
                handler, args = self._handle_unsubscribe, (drop.group(1),)
        if handler is None:
            known_path = request.path in {
                "/query", "/batch", "/prepare", "/healthz", "/metrics",
                "/documents", "/subscriptions", "/shutdown",
            } or re.fullmatch(
                r"/documents/[^/]+/mutate|/subscriptions/[^/]+(/deltas)?",
                request.path,
            )
            status = 405 if known_path else 404
            return json_response(
                {"error": {"type": "NoSuchRoute",
                           "message": f"{request.method} {request.path}"}},
                status=status,
            )
        try:
            return await handler(request, *args)
        except (ProtocolError, ReproError) as exc:
            return json_response(
                {"error": {"type": type(exc).__name__, "message": str(exc)}},
                status=_error_status(exc),
            )
        except Exception as exc:  # a bug, not a client error
            return json_response(
                {"error": {"type": type(exc).__name__, "message": str(exc)}},
                status=500,
            )

    # -- endpoint handlers ---------------------------------------------------

    def _resolve_query_text(self, payload: Mapping[str, Any]) -> str:
        """Query text from ``query`` or ``prepared``+``params``."""
        text = payload.get("query")
        digest = payload.get("prepared")
        if (text is None) == (digest is None):
            raise ProtocolError(
                400, "pass exactly one of 'query' (text) or 'prepared' (digest)"
            )
        if text is not None:
            if not isinstance(text, str):
                raise ProtocolError(400, "'query' must be a string")
            return text
        prepared = self._prepared.get(digest)
        if prepared is None:
            raise UnknownPrepared(f"no prepared query with digest {digest!r}")
        params = payload.get("params", {})
        if not isinstance(params, Mapping):
            raise ProtocolError(400, "'params' must be an object")
        return prepared.substitute(params)

    def _resolve_budget(
        self, payload: Mapping[str, Any], tenant: TenantConfig
    ):
        """The effective budget: tenant template tightened by the request."""
        request_budget = payload.get("budget", {})
        if not isinstance(request_budget, Mapping):
            raise ProtocolError(400, "'budget' must be an object")
        unknown = sorted(
            set(request_budget) - set(_BUDGET_FIELDS) - {"on_limit"}
        )
        if unknown:
            raise ProtocolError(400, f"unknown budget fields: {unknown}")
        for name in _BUDGET_FIELDS:
            value = request_budget.get(name)
            if value is not None and not isinstance(value, (int, float)):
                raise ProtocolError(400, f"budget field {name!r} must be a number")
        return tenant.overlay(request_budget)

    async def _admit_and_run(
        self,
        gate: TenantGate,
        work: Callable[[], Any],
        *,
        error_of: Callable[[Any], bool] = lambda outcome: False,
    ) -> Any:
        """Admission-gated executor hand-off; the loop never blocks on CPU.

        ``error_of`` inspects the outcome (e.g. a :class:`BatchResult`
        whose captured error never raises) so the gate's error counter
        matches what the client actually observed.
        """
        await gate.acquire()
        error = True
        try:
            outcome = await asyncio.get_running_loop().run_in_executor(
                self._pool, work
            )
            error = error_of(outcome)
            return outcome
        finally:
            gate.release(error=error)

    async def _handle_query(self, request: Request) -> Response:
        payload = request.json()
        if not isinstance(payload, Mapping):
            raise ProtocolError(400, "request body must be a JSON object")
        text = self._resolve_query_text(payload)
        gate = self._tenant(payload.get("tenant"))
        budget = self._resolve_budget(payload, gate.config)
        stored = self.store.get(payload.get("document"), payload.get("version"))
        session = self._session_for(stored)
        registry = self.tenant_metrics[gate.config.name]

        def work() -> BatchResult:
            # The per-call bundle replaces the session defaults wholesale,
            # so budget=None here means an unlimited tenant genuinely runs
            # unbudgeted.
            with self._read_guard(stored):
                row = session.execute(
                    text, options=replace(session.defaults, budget=budget)
                )
            registry.record(
                row.stats, seconds=row.seconds, query=text,
                error=row.error is not None,
            )
            return row

        row = await self._admit_and_run(
            gate, work, error_of=lambda outcome: outcome.error is not None
        )
        status = 200 if row.ok else _error_status(row.error)
        return json_response(
            {"tenant": gate.config.name,
             "document": {"name": stored.name, "version": stored.version,
                          "head": stored.head},
             **_row_payload(row)},
            status=status,
        )

    async def _handle_batch(self, request: Request) -> Response:
        payload = request.json()
        if not isinstance(payload, Mapping):
            raise ProtocolError(400, "request body must be a JSON object")
        queries = payload.get("queries")
        if not isinstance(queries, list) or not all(
            isinstance(q, str) for q in queries
        ):
            raise ProtocolError(400, "'queries' must be a list of strings")
        executor = payload.get("executor", "thread")
        if executor not in ("thread", "process"):
            raise ProtocolError(400, "'executor' must be 'thread' or 'process'")
        gate = self._tenant(payload.get("tenant"))
        budget = self._resolve_budget(payload, gate.config)
        stored = self.store.get(payload.get("document"), payload.get("version"))
        session = self._session_for(stored)
        registry = self.tenant_metrics[gate.config.name]

        def work() -> list[BatchResult]:
            with self._read_guard(stored):
                rows = session.run_batch(
                    queries,
                    options=replace(session.defaults, budget=budget),
                    executor=executor,
                )
            for row in rows:
                registry.record(
                    row.stats, seconds=row.seconds,
                    query=row.source_text, error=row.error is not None,
                )
            return rows

        rows = await self._admit_and_run(
            gate, work,
            error_of=lambda outcome: any(r.error is not None for r in outcome),
        )
        return json_response(
            {"tenant": gate.config.name,
             "document": {"name": stored.name, "version": stored.version,
                          "head": stored.head},
             "rows": [_row_payload(row) for row in rows]}
        )

    async def _handle_prepare(self, request: Request) -> Response:
        payload = request.json()
        if not isinstance(payload, Mapping):
            raise ProtocolError(400, "request body must be a JSON object")
        text = payload.get("query")
        if not isinstance(text, str):
            raise ProtocolError(400, "'query' must be a string")
        params = tuple(dict.fromkeys(_PARAM_RE.findall(text)))
        loop = asyncio.get_running_loop()
        if params:
            # Validate the template's syntax by substituting throwaway
            # literals (a string, then a number — either shape must parse).
            digest = hashlib.sha256(text.encode()).hexdigest()
            prepared = PreparedQuery(digest=digest, text=text, params=params)
            from ..xmlgl.dsl import parse_rule

            def validate() -> None:
                for probe in ('"0"', "0"):
                    try:
                        parse_rule(
                            _PARAM_RE.sub(probe, text)
                        )
                        return
                    except QuerySyntaxError:
                        continue
                raise QuerySyntaxError(
                    "prepared template does not parse with placeholder "
                    "values substituted"
                )

            await loop.run_in_executor(self._pool, validate)
        else:
            # No placeholders: key by the plan cache's canonical digest so
            # semantically equal texts map onto one prepared entry.
            digest = await loop.run_in_executor(
                self._pool, functools.partial(canonical_digest, text)
            )
            prepared = PreparedQuery(digest=digest, text=text, params=())
        self._prepared[digest] = prepared
        return json_response({"digest": digest, "params": list(params)})

    async def _handle_healthz(self, request: Request) -> Response:
        return json_response(
            {
                "status": "shutting-down" if self._shutdown.is_set() else "ok",
                "documents": len(self.store),
                "tenants": sorted(self.gates),
                "prepared": len(self._prepared),
                "uptime_s": time.monotonic() - self._started_at,
            }
        )

    async def _handle_metrics(self, request: Request) -> Response:
        return json_response(
            {
                "engine": self.metrics.snapshot(),
                "tenants": {
                    name: {
                        "admission": gate.snapshot(),
                        "engine": self.tenant_metrics[name].snapshot(),
                    }
                    for name, gate in sorted(self.gates.items())
                },
            }
        )

    async def _handle_documents_get(self, request: Request) -> Response:
        return json_response({"documents": self.store.describe()})

    async def _handle_documents_post(self, request: Request) -> Response:
        payload = request.json()
        if not isinstance(payload, Mapping):
            raise ProtocolError(400, "request body must be a JSON object")
        name = payload.get("name")
        xml_text = payload.get("xml")
        if not isinstance(name, str) or not isinstance(xml_text, str):
            raise ProtocolError(400, "'name' and 'xml' must be strings")
        loop = asyncio.get_running_loop()

        def load() -> StoredDocument:
            loaded = self.store.add_xml(name, xml_text)
            self._drop_superseded_head()
            return loaded

        stored = await loop.run_in_executor(self._pool, load)
        return json_response(stored.describe())

    # -- mutation & continuous queries ---------------------------------------

    async def _handle_mutate(self, request: Request, name: str) -> Response:
        """Apply one typed mutation batch to the document's mutable head.

        The batch spec (``ops`` — see
        :func:`repro.engine.mutate.ops_from_spec`) is validated in full
        before anything applies; the commit runs on an executor worker
        under the name's write lock, maintaining the head's cached index
        in place and notifying every attached subscription before the
        lock drops.
        """
        payload = request.json()
        if not isinstance(payload, Mapping):
            raise ProtocolError(400, "request body must be a JSON object")
        ops = payload.get("ops")
        if not isinstance(ops, list):
            raise ProtocolError(400, "'ops' must be a list of op objects")
        gate = self._tenant(payload.get("tenant"))

        def work() -> tuple[StoredDocument, MutationResult, int]:
            stored = self.store.head(name)
            session = self._session_for(stored)
            with self.store.head_lock(stored.name).writing():
                batch = ops_from_spec(stored.document, ops)
                result = session.mutate(batch)
            return stored, result, len(session.subscriptions())

        stored, result, notified = await self._admit_and_run(gate, work)
        return json_response(
            {
                "tenant": gate.config.name,
                "document": {
                    "name": stored.name,
                    "version": stored.version,
                    "head": True,
                },
                "revision": result.doc_revision,
                "applied": result.applied,
                "structural": result.structural,
                "nodes_added": result.nodes_added,
                "nodes_removed": result.nodes_removed,
                "subscriptions_notified": notified,
            }
        )

    async def _handle_subscribe(self, request: Request) -> Response:
        """Register a continuous query against a document's mutable head.

        Subscribing forks the head if the name has none yet (the query
        must watch the *live* document, not a frozen version).  The
        initial evaluation runs eagerly under the read lock; mutation
        commits then re-evaluate or skip per the query's footprint.
        """
        payload = request.json()
        if not isinstance(payload, Mapping):
            raise ProtocolError(400, "request body must be a JSON object")
        text = self._resolve_query_text(payload)
        gate = self._tenant(payload.get("tenant"))
        name = payload.get("document")
        if name is not None and not isinstance(name, str):
            raise ProtocolError(400, "'document' must be a string")

        def work() -> tuple[StoredDocument, _ServerSubscription]:
            stored = self.store.head(name)
            session = self._session_for(stored)
            with self.store.head_lock(stored.name).reading():
                subscription = session.subscribe(text)
            return stored, _ServerSubscription(
                subscription=subscription,
                session=session,
                document=stored.name,
                tenant=gate.config.name,
            )

        stored, entry = await self._admit_and_run(gate, work)
        with self._sessions_lock:
            self._subscriptions[entry.subscription.id] = entry
        return json_response(
            {
                "id": entry.subscription.id,
                "tenant": entry.tenant,
                "document": {
                    "name": stored.name,
                    "version": stored.version,
                    "head": True,
                },
                "rows": len(entry.subscription.rows()),
                "revision": entry.subscription.last_revision,
            }
        )

    def _subscription(self, subscription_id: str) -> _ServerSubscription:
        with self._sessions_lock:
            entry = self._subscriptions.get(subscription_id)
        if entry is None:
            raise UnknownSubscription(
                f"no subscription with id {subscription_id!r}"
            )
        return entry

    async def _handle_deltas(
        self, request: Request, subscription_id: str
    ) -> Response:
        """Long-poll a subscription's queued deltas.

        ``?timeout_s=N`` blocks up to ``N`` seconds (capped at 30) for the
        first delta; the default drains whatever is queued immediately.
        Only the drain is admission-gated — a parked long-poll must not
        consume the tenant's concurrency slot while it sleeps, so the
        wait itself runs before admission and the (cheap) drain after.
        """
        entry = self._subscription(subscription_id)
        gate = self._tenant(entry.tenant)
        raw_timeout = request.query.get("timeout_s", "0")
        try:
            timeout = min(max(float(raw_timeout), 0.0), 30.0)
        except ValueError:
            raise ProtocolError(400, "'timeout_s' must be a number") from None
        if timeout > 0 and not entry.subscription.pending:
            # Park without holding an admission slot: the bounded wait
            # only watches the pending queue (no draining), the drain
            # below runs under admission.
            await asyncio.get_running_loop().run_in_executor(
                None,
                functools.partial(entry.subscription.wait_pending, timeout),
            )

        def work() -> list[ResultDelta]:
            return entry.subscription.poll()

        deltas = await self._admit_and_run(gate, work)
        return json_response(
            {
                "id": entry.subscription.id,
                "revision": entry.subscription.last_revision,
                "closed": entry.subscription.closed,
                "deltas": [_delta_payload(delta) for delta in deltas],
            }
        )

    async def _handle_unsubscribe(
        self, request: Request, subscription_id: str
    ) -> Response:
        entry = self._subscription(subscription_id)
        with self._sessions_lock:
            self._subscriptions.pop(subscription_id, None)
        entry.session.unsubscribe(entry.subscription)
        return json_response({"id": subscription_id, "closed": True})

    async def _handle_shutdown(self, request: Request) -> Response:
        self._shutdown.set()
        return json_response({"status": "shutting-down"})


async def _serve(
    service: QueryService,
    on_ready: Optional[Callable[[QueryService], None]] = None,
) -> None:
    """Start, announce, handle signals, wait for shutdown, drain."""
    import signal

    await service.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, service.request_shutdown)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    if on_ready is not None:
        on_ready(service)
    try:
        await service.wait_shutdown()
    finally:
        await service.close()


def run_forever(
    config: ServerConfig,
    store: Optional[DocumentStore] = None,
    on_ready: Optional[Callable[[QueryService], None]] = None,
) -> None:
    """Blocking entry point for ``repro serve``."""
    service = QueryService(config, store=store)
    asyncio.run(_serve(service, on_ready))


class BackgroundServer:
    """A :class:`QueryService` on a dedicated event-loop thread.

    The harness tests and the CI smoke job use this to run the service
    inside one process: ``start()`` blocks until the port is bound,
    ``stop()`` requests shutdown and joins the thread (executor drained,
    zero leaked threads).
    """

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        store: Optional[DocumentStore] = None,
    ) -> None:
        self.service = QueryService(config, store=store)
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._failure: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True
        )

    @property
    def port(self) -> int:
        assert self.service.port is not None, "server not started"
        return self.service.port

    @property
    def address(self) -> tuple[str, int]:
        return (self.service.config.host, self.port)

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            await self.service.start()
            self._ready.set()
            try:
                await self.service.wait_shutdown()
            finally:
                await self.service.close()

        try:
            asyncio.run(main())
        except BaseException as exc:  # surface bind errors to start()
            self._failure = exc
            self._ready.set()

    def start(self, timeout: float = 10.0) -> "BackgroundServer":
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ReproError("background server failed to start in time")
        if self._failure is not None:
            raise ReproError(
                f"background server failed to start: {self._failure}"
            ) from self._failure
        return self

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.service.request_shutdown)
        self._thread.join(timeout)
        if self._thread.is_alive():  # pragma: no cover - defensive
            raise ReproError("background server failed to stop in time")

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
