"""Per-tenant admission control for the asyncio service.

Each tenant owns one :class:`TenantGate` living on the event loop (no
locks — every transition happens on the loop thread).  A request moves
through a three-state machine, documented in DESIGN.md § Query service:

* **ADMITTED** — ``running < max_concurrency``: the request takes a slot
  immediately and its evaluation is handed to the executor.
* **QUEUED** — slots are full but the queue has room: the request parks
  on a future; :meth:`TenantGate.release` promotes the eldest live waiter
  when a slot frees (FIFO), so queued work drains in arrival order.
* **REJECTED** — slots *and* queue are full: :class:`AdmissionRejected`
  propagates as HTTP 429 without touching the executor, so overload
  sheds at the cheapest possible point.

One tenant's pathology cannot starve another: gates are fully
independent — separate slots, separate queues, separate counters — and
the shared executor is only reached by admitted requests, bounded to
``sum(max_concurrency)`` across tenants.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Any

from ..errors import ReproError
from .config import TenantConfig

__all__ = ["AdmissionRejected", "TenantGate"]


class AdmissionRejected(ReproError):
    """Raised when a tenant's slots and queue are both full (HTTP 429)."""

    def __init__(self, tenant: str, running: int, queued: int) -> None:
        self.tenant = tenant
        self.running = running
        self.queued = queued
        super().__init__(
            f"tenant {tenant!r} is saturated: {running} running, "
            f"{queued} queued (admission rejected; retry later)"
        )


class TenantGate:
    """One tenant's admission state; event-loop confined."""

    def __init__(self, config: TenantConfig) -> None:
        self.config = config
        self.running = 0
        self._queue: deque[asyncio.Future] = deque()
        # lifetime counters (surfaced by /metrics)
        self.admitted = 0
        self.rejected = 0
        self.completed = 0
        self.errors = 0
        self.queued_total = 0
        self.queue_peak = 0

    @property
    def queued(self) -> int:
        return len(self._queue)

    async def acquire(self) -> None:
        """Admit, queue, or raise :class:`AdmissionRejected`."""
        if self.running < self.config.max_concurrency:
            self.running += 1
            self.admitted += 1
            return
        if len(self._queue) >= self.config.max_queue:
            self.rejected += 1
            raise AdmissionRejected(
                self.config.name, self.running, len(self._queue)
            )
        waiter: asyncio.Future = asyncio.get_running_loop().create_future()
        self._queue.append(waiter)
        self.queued_total += 1
        self.queue_peak = max(self.queue_peak, len(self._queue))
        try:
            await waiter
        except asyncio.CancelledError:
            if waiter.done() and not waiter.cancelled():
                # Promoted in the same tick we were cancelled: the slot
                # was already transferred to us — hand it straight on.
                self._leave()
            else:
                self._queue.remove(waiter)
            raise

    def release(self, *, error: bool = False) -> None:
        """An admitted request finished; promote the eldest live waiter."""
        self.completed += 1
        if error:
            self.errors += 1
        self._leave()

    def _leave(self) -> None:
        self.running -= 1
        while self._queue:
            waiter = self._queue.popleft()
            if waiter.cancelled():
                continue
            self.running += 1
            self.admitted += 1
            waiter.set_result(None)
            return

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready admission counters for /metrics."""
        return {
            "max_concurrency": self.config.max_concurrency,
            "max_queue": self.config.max_queue,
            "running": self.running,
            "queued": len(self._queue),
            "admitted": self.admitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "errors": self.errors,
            "queued_total": self.queued_total,
            "queue_peak": self.queue_peak,
        }
