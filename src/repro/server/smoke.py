"""End-to-end smoke check: ``python -m repro.server.smoke``.

The CI server-smoke job runs this module.  It must prove, in a few
seconds, that the whole serving stack holds together in one process:

1. record the baseline thread set,
2. start the service on an **ephemeral** port (``port=0``),
3. poll ``/healthz`` until live,
4. register a prepared query and run it through the Python client,
5. verify the result matches a direct :meth:`QuerySession.run`,
6. with ``--subscriptions``: subscribe a continuous query, mutate the
   document through the typed endpoint, and long-poll the delta,
7. shut down cleanly and assert **zero leaked threads** — the executor
   and the event-loop thread must both be gone.

Exit status 0 on success; any failure raises (non-zero exit).
"""

from __future__ import annotations

import sys
import threading
import time

SMOKE_XML = (
    "<bib>"
    "<book year='1995'><title>DB Systems</title></book>"
    "<book year='1999'><title>XML-GL</title></book>"
    "</bib>"
)

SMOKE_QUERY = (
    "query { book as B { @year as Y } where Y >= ${year} } "
    "construct { hits { B } }"
)


SMOKE_WATCH_QUERY = (
    "query { book as B { @year as Y } } construct { hits { B } }"
)


def run_smoke(verbose: bool = True, subscriptions: bool = False) -> None:
    from ..session import QuerySession
    from ..ssd import parse_document, serialize
    from .client import ServiceClient
    from .config import ServerConfig, TenantConfig
    from .service import BackgroundServer
    from .store import DocumentStore

    def say(message: str) -> None:
        if verbose:
            print(f"smoke: {message}")

    baseline = set(threading.enumerate())
    store = DocumentStore()
    store.add("bib", parse_document(SMOKE_XML))
    config = ServerConfig(
        port=0,
        max_workers=2,
        tenants=(TenantConfig(name="smoke", max_concurrency=2, max_queue=4),),
    )
    server = BackgroundServer(config, store=store).start()
    say(f"listening on 127.0.0.1:{server.port}")

    client = ServiceClient(port=server.port)
    try:
        deadline = time.monotonic() + 10.0
        while True:
            try:
                health = client.healthz()
                if health["status"] == "ok":
                    break
            except OSError:
                pass
            if time.monotonic() > deadline:
                raise AssertionError("healthz never became ready")
            time.sleep(0.05)
        say(f"healthz ok ({health['documents']} documents)")

        prepared = client.prepare(SMOKE_QUERY)
        assert prepared["params"] == ["year"], prepared
        outcome = client.query(
            prepared=prepared["digest"],
            params={"year": 1999},
            document="bib",
            tenant="smoke",
        )
        assert outcome["ok"], outcome
        expected_doc = QuerySession(parse_document(SMOKE_XML)).run(
            SMOKE_QUERY.replace("${year}", "1999")
        )
        assert expected_doc.root is not None
        expected = serialize(expected_doc.root)
        assert outcome["result"] == expected, (outcome["result"], expected)
        say("prepared query result matches direct QuerySession.run")

        metrics = client.metrics()
        admission = metrics["tenants"]["smoke"]["admission"]
        assert admission["completed"] >= 1 and admission["errors"] == 0, admission
        say("metrics consistent")

        if subscriptions:
            sub = client.subscribe(
                SMOKE_WATCH_QUERY, document="bib", tenant="smoke"
            )
            assert sub["rows"] == 2, sub
            say(f"subscribed {sub['id']} ({sub['rows']} initial rows)")
            committed = client.mutate(
                "bib",
                [{
                    "op": "insert",
                    "parent": [],
                    "xml": "<book year='2002'><title>SSD</title></book>",
                    "index": 2,
                }],
                tenant="smoke",
            )
            assert committed["applied"] == 1 and committed["structural"], committed
            drained = client.deltas(sub["id"], timeout_s=5.0)
            assert len(drained["deltas"]) == 1, drained
            delta = drained["deltas"][0]
            assert len(delta["added"]) == 1 and not delta["removed"], delta
            say(f"delta delivered at revision {delta['revision']}")
            # A mutation the query's footprint does not cover must not wake it.
            client.mutate(
                "bib",
                [{"op": "update_value", "target": [0, 0], "value": "DBs"}],
                tenant="smoke",
            )
            drained = client.deltas(sub["id"])
            assert drained["deltas"] == [], drained
            client.unsubscribe(sub["id"])
            say("irrelevant mutation skipped; unsubscribed")

        client.shutdown()
    finally:
        client.close()
        server.stop()

    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        leaked = [
            t for t in threading.enumerate()
            if t not in baseline and t.is_alive()
        ]
        if not leaked:
            break
        time.sleep(0.05)
    else:
        raise AssertionError(f"leaked threads after shutdown: {leaked}")
    say("clean shutdown, zero leaked threads")


if __name__ == "__main__":
    run_smoke(subscriptions="--subscriptions" in sys.argv[1:])
    sys.exit(0)
