"""Configuration model for the multi-tenant query service.

Two frozen dataclasses describe a deployment:

* :class:`TenantConfig` — one tenant's governance contract: a
  :class:`~repro.engine.limits.QueryBudget` template (every budget field a
  tenant-wide default, overlayable per request) plus the admission knobs
  ``max_concurrency`` (evaluations in flight) and ``max_queue`` (requests
  parked waiting for a slot before the service answers 429).
* :class:`ServerConfig` — the service itself: bind address, executor
  sizing and the tenant roster.  ``port=0`` binds an ephemeral port (the
  bound address is reported once the server starts — tests and the CI
  smoke job rely on it).

Budget *overlay* semantics (:meth:`TenantConfig.overlay`): a request may
only ever **tighten** its tenant's template — each numeric field resolves
to the minimum of the tenant value and the request value (either may be
unset), so no client escapes its governance contract by asking nicely.
``on_limit`` is the exception: it selects failure *shape* (typed error vs
truncated result), not resource ceilings, so the request value wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from ..engine.limits import ON_LIMIT_POLICIES, QueryBudget

__all__ = ["ServerConfig", "TenantConfig", "DEFAULT_TENANT"]

#: Name of the tenant requests fall back to when they name none.
DEFAULT_TENANT = "public"

#: Budget fields a request may overlay (all tighten-only).
_BUDGET_FIELDS = (
    "deadline_ms",
    "max_work",
    "max_bindings",
    "max_result_nodes",
    "max_hashjoin_rows",
)


def _tighter(a: Optional[float], b: Optional[float]) -> Optional[float]:
    """The stricter of two optional limits (``None`` = unlimited)."""
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's governance contract (budget template + admission caps)."""

    name: str
    max_concurrency: int = 8
    max_queue: int = 16
    deadline_ms: Optional[float] = None
    max_work: Optional[int] = None
    max_bindings: Optional[int] = None
    max_result_nodes: Optional[int] = None
    max_hashjoin_rows: Optional[int] = None
    on_limit: str = "raise"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.max_concurrency < 1:
            raise ValueError(
                f"max_concurrency must be >= 1, got {self.max_concurrency}"
            )
        if self.max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {self.max_queue}")
        if self.on_limit not in ON_LIMIT_POLICIES:
            raise ValueError(
                f"unknown on_limit policy {self.on_limit!r}; "
                f"expected one of {ON_LIMIT_POLICIES}"
            )

    def budget_template(self) -> Optional[QueryBudget]:
        """The tenant-wide budget, or ``None`` when every field is unset."""
        values = {name: getattr(self, name) for name in _BUDGET_FIELDS}
        if all(value is None for value in values.values()):
            return None
        return QueryBudget(on_limit=self.on_limit, **values)

    def overlay(self, request: Mapping[str, Any]) -> Optional[QueryBudget]:
        """The effective budget for one request: template tightened.

        ``request`` holds the (already type-checked) per-request budget
        fields; unknown keys are the caller's problem — this method reads
        only the known budget fields plus ``on_limit``.  Returns ``None``
        when neither side sets any ceiling, so unlimited tenants stay
        genuinely unbudgeted (the session layer treats an explicit
        ``budget=None`` as "off").
        """
        values = {
            name: _tighter(getattr(self, name), request.get(name))
            for name in _BUDGET_FIELDS
        }
        if all(value is None for value in values.values()):
            return None
        on_limit = request.get("on_limit") or self.on_limit
        return QueryBudget(on_limit=on_limit, **values)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TenantConfig":
        """Build from a JSON-ish mapping, rejecting unknown keys loudly."""
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown tenant config keys: {unknown}")
        return cls(**dict(data))

    @classmethod
    def from_spec(cls, spec: str) -> "TenantConfig":
        """Parse a CLI spec: ``NAME[,key=value]...``.

        Example: ``analytics,max_concurrency=2,max_queue=4,deadline_ms=100``.
        Integer fields parse as ``int``, ``deadline_ms`` as ``float``,
        ``on_limit`` as text.
        """
        head, _, rest = spec.partition(",")
        name = head.strip()
        data: dict[str, Any] = {"name": name}
        if rest:
            for item in rest.split(","):
                key, sep, raw = item.partition("=")
                key = key.strip()
                if not sep or not key:
                    raise ValueError(
                        f"tenant spec items must be key=value, got {item!r}"
                    )
                if key == "on_limit":
                    data[key] = raw.strip()
                elif key == "deadline_ms":
                    data[key] = float(raw)
                else:
                    data[key] = int(raw)
        return cls.from_dict(data)


@dataclass(frozen=True)
class ServerConfig:
    """Service-level settings: bind address, executor sizing, tenants."""

    host: str = "127.0.0.1"
    port: int = 8601
    max_workers: int = 8
    default_tenant: str = DEFAULT_TENANT
    tenants: tuple[TenantConfig, ...] = field(default_factory=tuple)
    #: Seconds an idle keep-alive connection is held open.
    idle_timeout_s: float = 60.0
    #: Hard cap on a request body (bytes); oversized requests get 413.
    max_body_bytes: int = 8 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {self.max_workers}")
        if self.idle_timeout_s <= 0:
            raise ValueError("idle_timeout_s must be positive")
        if self.max_body_bytes < 1:
            raise ValueError("max_body_bytes must be positive")
        names = [tenant.name for tenant in self.tenants]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate tenant names in config: {sorted(names)}")

    def tenant_roster(self) -> tuple[TenantConfig, ...]:
        """The configured tenants plus an auto-created default tenant.

        The default tenant (requests that name none) is always present;
        an explicit entry under :attr:`default_tenant` overrides the
        auto-created unlimited-budget one.
        """
        if any(tenant.name == self.default_tenant for tenant in self.tenants):
            return self.tenants
        return (*self.tenants, TenantConfig(name=self.default_tenant))
