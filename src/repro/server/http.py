"""Minimal asyncio HTTP/1.1 plumbing for the query service.

The service speaks just enough HTTP for a JSON API — request line,
headers, ``Content-Length`` bodies, keep-alive — on plain
``asyncio.StreamReader``/``StreamWriter`` pairs.  No external web
framework: the container ships only the stdlib, and the endpoint surface
(six routes, JSON in/JSON out) does not justify one.  Anything the parser
does not understand raises :class:`ProtocolError` with the right status
code, which the connection loop turns into an error response and a
connection close.

Deliberately out of scope: chunked transfer encoding, pipelining,
multipart, TLS (terminate upstream), HTTP/2.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Optional
from urllib.parse import parse_qsl, urlsplit

__all__ = [
    "ProtocolError",
    "Request",
    "Response",
    "encode_response",
    "json_response",
    "read_request",
]

#: Hard cap on the request head (request line + headers).
MAX_HEAD_BYTES = 64 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(Exception):
    """A malformed or unacceptable request; ``status`` maps to HTTP."""

    def __init__(self, status: int, message: str) -> None:
        self.status = status
        super().__init__(message)


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes

    def json(self) -> Any:
        """The body decoded as JSON (``{}`` when empty)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(400, f"request body is not valid JSON: {exc}")

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


@dataclass
class Response:
    """One HTTP response ready for :func:`encode_response`."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)


def json_response(payload: Any, status: int = 200) -> Response:
    """A JSON :class:`Response` (sorted keys, trailing newline for curl)."""
    body = json.dumps(payload, sort_keys=True).encode() + b"\n"
    return Response(status=status, body=body)


async def read_request(
    reader: asyncio.StreamReader, *, max_body_bytes: int
) -> Optional[Request]:
    """Read one request; ``None`` on a clean EOF before any bytes.

    Raises :class:`ProtocolError` on malformed input and
    ``asyncio.IncompleteReadError`` when the peer hangs up mid-request.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # idle keep-alive connection closed cleanly
        raise ProtocolError(400, "connection closed mid-request")
    except asyncio.LimitOverrunError:
        raise ProtocolError(413, f"request head exceeds {MAX_HEAD_BYTES} bytes")
    if len(head) > MAX_HEAD_BYTES:
        raise ProtocolError(413, f"request head exceeds {MAX_HEAD_BYTES} bytes")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(400, f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    split = urlsplit(target)
    query = dict(parse_qsl(split.query))
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    if "transfer-encoding" in headers:
        raise ProtocolError(400, "chunked transfer encoding is not supported")
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ProtocolError(400, f"bad Content-Length: {length_text!r}")
    if length < 0:
        raise ProtocolError(400, f"bad Content-Length: {length_text!r}")
    if length > max_body_bytes:
        raise ProtocolError(
            413, f"request body of {length} bytes exceeds cap {max_body_bytes}"
        )
    body = await reader.readexactly(length) if length else b""
    return Request(
        method=method.upper(),
        path=split.path,
        query=query,
        headers=headers,
        body=body,
    )


def encode_response(response: Response, *, keep_alive: bool = True) -> bytes:
    """Serialize a :class:`Response` as HTTP/1.1 wire bytes."""
    reason = _REASONS.get(response.status, "Unknown")
    head = [
        f"HTTP/1.1 {response.status} {reason}",
        f"Content-Type: {response.content_type}",
        f"Content-Length: {len(response.body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in response.headers.items():
        head.append(f"{name}: {value}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + response.body
