"""Blocking Python client for the query service.

A thin JSON wrapper over :class:`http.client.HTTPConnection` with
keep-alive — enough for tests, the CI smoke job and scripts, without
pulling a third-party HTTP stack into the container.  One
:class:`ServiceClient` holds one connection; it is **not** thread-safe
(one client per thread — the load test does exactly that, which also
exercises the server's connection concurrency).

Non-2xx responses raise :class:`ServiceError`, carrying the HTTP status
and the server's structured error payload; responses that are valid but
describe a failed evaluation (``/batch`` rows) come back as plain data.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Mapping, Optional

from ..errors import ReproError

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(ReproError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, payload: Any) -> None:
        self.status = status
        self.payload = payload
        detail = payload
        if isinstance(payload, Mapping) and "error" in payload:
            detail = payload["error"]
        super().__init__(f"HTTP {status}: {detail}")


class ServiceClient:
    """One keep-alive connection to a running :class:`QueryService`."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8601, timeout: float = 30.0
    ) -> None:
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)

    # -- plumbing ------------------------------------------------------------

    def request(
        self, method: str, path: str, payload: Optional[Mapping[str, Any]] = None
    ) -> Any:
        """One round trip; JSON in, JSON out, :class:`ServiceError` on non-2xx."""
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        try:
            self._conn.request(method, path, body=body, headers=headers)
            response = self._conn.getresponse()
            raw = response.read()
        except (ConnectionError, http.client.HTTPException, OSError):
            # The connection died (e.g. server restarted); reconnect once.
            self._conn.close()
            self._conn.request(method, path, body=body, headers=headers)
            response = self._conn.getresponse()
            raw = response.read()
        data = json.loads(raw) if raw else None
        if not 200 <= response.status < 300:
            raise ServiceError(response.status, data)
        return data

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- endpoints -----------------------------------------------------------

    def healthz(self) -> dict[str, Any]:
        return self.request("GET", "/healthz")

    def metrics(self) -> dict[str, Any]:
        return self.request("GET", "/metrics")

    def query(
        self,
        query: Optional[str] = None,
        *,
        prepared: Optional[str] = None,
        params: Optional[Mapping[str, Any]] = None,
        document: Optional[str] = None,
        version: Optional[int] = None,
        tenant: Optional[str] = None,
        budget: Optional[Mapping[str, Any]] = None,
    ) -> dict[str, Any]:
        """Evaluate one query (text or prepared digest); the full payload."""
        body: dict[str, Any] = {}
        if query is not None:
            body["query"] = query
        if prepared is not None:
            body["prepared"] = prepared
        if params is not None:
            body["params"] = dict(params)
        if document is not None:
            body["document"] = document
        if version is not None:
            body["version"] = version
        if tenant is not None:
            body["tenant"] = tenant
        if budget is not None:
            body["budget"] = dict(budget)
        return self.request("POST", "/query", body)

    def batch(
        self,
        queries: list[str],
        *,
        executor: str = "thread",
        document: Optional[str] = None,
        version: Optional[int] = None,
        tenant: Optional[str] = None,
        budget: Optional[Mapping[str, Any]] = None,
    ) -> dict[str, Any]:
        body: dict[str, Any] = {"queries": queries, "executor": executor}
        if document is not None:
            body["document"] = document
        if version is not None:
            body["version"] = version
        if tenant is not None:
            body["tenant"] = tenant
        if budget is not None:
            body["budget"] = dict(budget)
        return self.request("POST", "/batch", body)

    def prepare(self, query: str) -> dict[str, Any]:
        """Register a prepared query; returns ``{"digest", "params"}``."""
        return self.request("POST", "/prepare", {"query": query})

    def documents(self) -> dict[str, Any]:
        return self.request("GET", "/documents")

    def add_document(self, name: str, xml_text: str) -> dict[str, Any]:
        return self.request("POST", "/documents", {"name": name, "xml": xml_text})

    def mutate(
        self,
        name: str,
        ops: list[Mapping[str, Any]],
        *,
        tenant: Optional[str] = None,
    ) -> dict[str, Any]:
        """Apply a typed mutation batch to ``name``'s mutable head.

        ``ops`` is the JSON wire form of
        :func:`repro.engine.mutate.ops_from_spec` (``insert`` / ``delete``
        / ``update_value`` / ``update_attribute`` entries with
        element-child index paths).
        """
        body: dict[str, Any] = {"ops": list(ops)}
        if tenant is not None:
            body["tenant"] = tenant
        return self.request("POST", f"/documents/{name}/mutate", body)

    def subscribe(
        self,
        query: str,
        *,
        document: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> dict[str, Any]:
        """Register a continuous query; returns ``{"id", "rows", ...}``."""
        body: dict[str, Any] = {"query": query}
        if document is not None:
            body["document"] = document
        if tenant is not None:
            body["tenant"] = tenant
        return self.request("POST", "/subscriptions", body)

    def deltas(
        self, subscription_id: str, *, timeout_s: float = 0.0
    ) -> dict[str, Any]:
        """Drain a subscription's deltas, long-polling up to ``timeout_s``."""
        path = f"/subscriptions/{subscription_id}/deltas"
        if timeout_s:
            path += f"?timeout_s={timeout_s}"
        return self.request("GET", path)

    def unsubscribe(self, subscription_id: str) -> dict[str, Any]:
        return self.request("DELETE", f"/subscriptions/{subscription_id}")

    def shutdown(self) -> dict[str, Any]:
        return self.request("POST", "/shutdown")
