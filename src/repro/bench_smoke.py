"""Benchmark smoke-runner: the ``bench_ext_*`` workloads at small sizes.

Runs the representative matcher queries from the extension benchmarks
(``bench_ext_ablation``, ``bench_ext_paths``, ``bench_ext_scaling``,
``bench_fig_q3_join``, ``bench_fig_q4_deep``) on all four evaluation
engines — the cost-based **adaptive** selector (default), the
set-at-a-time semi-join **pipeline**, the interval-**indexed**
backtracking core and the **naive** full-scan ablation — and writes a
JSON report (``BENCH_matcher.json``) with
per-query wall time and :class:`~repro.engine.stats.EvalStats` counters,
so successive PRs leave a perf trajectory to compare against::

    PYTHONPATH=src python -m repro.bench_smoke            # small sizes
    PYTHONPATH=src python -m repro.bench_smoke --repeat 9 -o BENCH_matcher.json
    PYTHONPATH=src python -m repro.bench_smoke -o /tmp/b.json \
        --baseline BENCH_matcher.json --append-history     # CI mode

``work`` is ``candidates_tried + edge_checks``; ``work_ratio`` is
naive-work / indexed-work (≥ 1 means the interval path does less
trial-and-error) and ``speedup`` the same for wall time;
``pipeline_work_ratio`` is pipeline-work / indexed-work (≤ 1 means the
semi-join plan replaces per-candidate search with set operations) and
``pipeline_speedup`` indexed-time / pipeline-time.

``--baseline`` compares each engine's ``work`` per query against a
committed report and prints a GitHub ``::warning::`` annotation for every
regression beyond 20% (fails-soft).  The **adaptive gate** is gating: if
any query runs more than 10% (plus a 1ms noise floor) slower under the
adaptive default than under the best forced engine, the run prints
``::error::`` annotations and exits 1.  ``--append-history`` carries the
baseline's ``history`` forward and appends one timestamped summary record
per run.

The report also carries a ``tracing`` block: the observability guard runs
the join-heavy query with span recording on and off, *asserts* the work
counters are identical (tracing must observe the engine, never steer it),
and records ``overhead_ratio`` (traced / untraced wall time) plus the
disabled-path timing so the cost of the dormant instrumentation stays on
the perf trajectory.

The ``governance`` block is the same guard for the resource-governance
layer: the join-heavy query runs with no budget and with a generous
budget that cannot trip, the work counters are *asserted* identical
(budget checks are pay-for-use and must never steer the engine), and the
budgeted/unbudgeted timing ratio joins the trajectory.

The ``plan_cache`` block runs the join-heavy query through a
:class:`~repro.session.QuerySession` with a private plan cache, *asserts*
the counters (cold run = one compile miss, each warm run = one hit), and
records the cold/warm timings so the repeat-query latency win stays on
the trajectory.

The ``rewrite`` block evaluates a deliberately redundant query (three
overlapping deep arcs + a tautological condition) with the static
rewriter off and on, *asserts* at least one fragment was removed, the
results are identical and the off/on work ratio clears 2x, and records
the counters and timings.

The ``columnar`` block runs the join-heavy guard query with the columnar
kernels on and off, *asserts* the binding multisets are identical, and
records both the end-to-end timings and the **fragment-level** timings
(the time actually spent inside ``_setwise_fragment`` /
``_setwise_fragment_columns``, instrumented at the dispatch seam) — the
fragment ratio is the honest kernel speedup, undiluted by parse/pool/
construct overhead shared by both paths.  ``--gate-columnar 3.0`` turns
the fragment ratio into a hard gate (CI).

The ``incremental`` block applies a deterministic 1000-edit mutation
script (inserts, deletes, value and attribute updates) to the
bibliography through :meth:`~repro.session.QuerySession.mutate` with a
continuous query subscribed throughout, *asserts* the maintained row set
equals a from-scratch re-evaluation, and records the maintenance work
ratio — what rebuild-per-edit would have cost (relabel + recount the
whole document each commit) over what the gap-label maintenance actually
did — plus the subscription's footprint eval/skip split.
``--gate-incremental 5.0`` turns the work ratio into a hard gate (CI).

The ``scaling`` block (``--workers N``, off by default) maps the
selection query over a 100-document corpus on a
:class:`~repro.engine.shard.ShardedExecutor` with 1 worker and with
``N`` workers, asserts the merged results identical, and records the
speedup, per-shard wall times and merge overhead along with the host's
CPU count.  ``--gate-scaling 2.0`` hard-fails the run when the measured
speedup at ``N >= 4`` workers is below the floor (CI runs this on
multi-core runners; single-core hosts record an honest ~1x and must not
gate).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional, Sequence

from .engine.index import DocumentIndex
from .engine.stats import EvalStats
from .ssd.model import Document
from .workloads import bibliography, nested_sections
from .xmlgl.ast import QueryGraph
from .xmlgl.dsl import parse_rule
from .xmlgl.matcher import MatchOptions, match

__all__ = ["run_suite", "main"]

PIPELINE = MatchOptions(engine="pipeline")
INDEXED = MatchOptions(engine="backtracking")
NAIVE = MatchOptions(engine="naive")
ADAPTIVE = MatchOptions(engine="adaptive")

ENGINES: list[tuple[str, MatchOptions]] = [
    ("adaptive", ADAPTIVE),
    ("pipeline", PIPELINE),
    ("indexed", INDEXED),
    ("naive", NAIVE),
]

#: Work regression tolerated before --baseline warns (fails-soft).
REGRESSION_TOLERANCE = 0.20

#: The adaptive gate (hard-fails): per query, the cost-based default may be
#: at most this fraction slower than the best *forced* engine...
ADAPTIVE_TOLERANCE = 0.10

#: ...plus this absolute allowance, so micro-queries whose entire runtime
#: is timer noise cannot flake the gate.
ADAPTIVE_NOISE_FLOOR_SECONDS = 0.001

#: Query the tracing-overhead guard measures (join-heavy: deepest span tree).
TRACING_GUARD_QUERY = "fig_q3/join"

# (name, dsl text, dataset, descendant_heavy, join_heavy)
QUERIES: list[tuple[str, str, str, bool, bool]] = [
    (
        "ext_paths/chain",
        "query { root bib as R { book as B { title as T } } }"
        " construct { r { collect T } }",
        "bib",
        False,
        False,
    ),
    (
        "ext_paths/deep",
        "query { root report as R { deep para as P } }"
        " construct { r { collect P } }",
        "sections",
        True,
        False,
    ),
    (
        "ext_paths/filtered",
        'query { book as B { @year = "1999" as Y  not publisher as P } }'
        " construct { r { collect B } }",
        "bib",
        False,
        False,
    ),
    (
        "fig_q4/deep_star",
        "query { root report as R { deep para as P } }"
        " construct { r { collect P } }",
        "sections",
        True,
        False,
    ),
    (
        "fig_q3/join",
        "query { book as B  * as C { title as T } where B.cites = C.id }"
        " construct { r { collect T } }",
        "bib",
        False,
        True,
    ),
    (
        "ext_ablation/multibox",
        "query { book as B { publisher as P  title as T  @year as Y }"
        " where Y >= 1995 } construct { r { collect T } }",
        "bib",
        False,
        True,
    ),
    (
        "ext_scaling/select",
        "query { book as B { title as T  @year as Y } where Y >= 1995 }"
        " construct { r { collect T } }",
        "bib",
        False,
        False,
    ),
]


def _first_graph(text: str) -> QueryGraph:
    return parse_rule(text).queries[0]


def _time_and_count(
    graph: QueryGraph,
    document: Document,
    index: DocumentIndex,
    options: MatchOptions,
    repeat: int,
) -> tuple[float, dict, int]:
    stats = EvalStats()
    bindings = match(graph, document, options=options, index=index, stats=stats)
    best = stats.seconds
    for _ in range(repeat - 1):
        started = time.perf_counter()
        match(graph, document, options=options, index=index)
        best = min(best, time.perf_counter() - started)
    counters = stats.as_dict()
    counters.pop("seconds", None)
    return best, counters, len(bindings)


def measure_tracing_overhead(
    graph: QueryGraph,
    document: Document,
    index: DocumentIndex,
    repeat: int,
) -> dict:
    """The observability guard: tracing observes, it must never steer.

    Runs the query on the pipeline engine with span recording off and on,
    best-of-``repeat`` each.  Asserts bindings and every work counter are
    identical between the two — a divergence means the instrumentation
    changed what the engine did, which is a bug, so this fails hard.  The
    returned block records both timings and their ratio.
    """
    traced = MatchOptions(engine="pipeline", trace=True)

    def best_of(options: MatchOptions) -> tuple[float, dict, int]:
        stats = EvalStats()
        bindings = match(
            graph, document, options=options, index=index, stats=stats
        )
        best = stats.seconds
        for _ in range(repeat - 1):
            fresh = EvalStats()
            started = time.perf_counter()
            match(graph, document, options=options, index=index, stats=fresh)
            best = min(best, time.perf_counter() - started)
        counters = stats.as_dict()
        counters.pop("seconds", None)
        return best, counters, len(bindings)

    off_seconds, off_counters, off_bindings = best_of(PIPELINE)
    on_seconds, on_counters, on_bindings = best_of(traced)
    assert off_bindings == on_bindings, "tracing changed the result size"
    assert off_counters == on_counters, "tracing changed the work counters"
    return {
        "query": TRACING_GUARD_QUERY,
        "counters_identical": True,
        "bindings": off_bindings,
        "disabled_seconds": off_seconds,
        "traced_seconds": on_seconds,
        "overhead_ratio": round(on_seconds / max(off_seconds, 1e-9), 3),
    }


def measure_governance_overhead(
    graph: QueryGraph,
    document: Document,
    index: DocumentIndex,
    repeat: int,
) -> dict:
    """The governance guard: an unarmed budget must cost nothing.

    Mirrors :func:`measure_tracing_overhead` for the resource-governance
    layer (PR-5): runs the guard query with no budget and with a generous
    budget that can never trip, best-of-``repeat`` each, and *asserts*
    bindings and every work counter are identical — the budget checks are
    pay-for-use (``stats.budget is None`` guards every site), so an
    unbudgeted run must do byte-identical work, and a budgeted-but-ample
    run must only add the bookkeeping, never steer the engine.  Records
    both timings and their ratio.
    """
    from .engine.limits import QueryBudget

    generous = MatchOptions(
        engine="pipeline",
        budget=QueryBudget(
            deadline_ms=3_600_000.0,
            max_work=10**12,
            max_bindings=10**9,
            max_hashjoin_rows=10**12,
        ),
    )

    def best_of(options: MatchOptions) -> tuple[float, dict, int]:
        stats = EvalStats()
        bindings = match(
            graph, document, options=options, index=index, stats=stats
        )
        best = stats.seconds
        for _ in range(repeat - 1):
            fresh = EvalStats()
            started = time.perf_counter()
            match(graph, document, options=options, index=index, stats=fresh)
            best = min(best, time.perf_counter() - started)
        counters = stats.as_dict()
        counters.pop("seconds", None)
        return best, counters, len(bindings)

    off_seconds, off_counters, off_bindings = best_of(PIPELINE)
    on_seconds, on_counters, on_bindings = best_of(generous)
    assert off_bindings == on_bindings, "budgeting changed the result size"
    assert off_counters == on_counters, "budgeting changed the work counters"
    return {
        "query": TRACING_GUARD_QUERY,
        "counters_identical": True,
        "bindings": off_bindings,
        "unbudgeted_seconds": off_seconds,
        "budgeted_seconds": on_seconds,
        "overhead_ratio": round(on_seconds / max(off_seconds, 1e-9), 3),
    }


def measure_plan_cache(repeat: int, bib_entries: int = 400) -> dict:
    """The plan-cache guard: a repeat query must skip parse/analyse/plan.

    Runs the join-heavy guard query through :class:`~repro.session.QuerySession`
    with a private plan cache.  The cold run *asserts* exactly one
    plan-cache miss (compile); every warm run asserts exactly one hit and
    zero misses — the gate is on the counters, which are deterministic,
    while the cold/warm timings and their ratio are recorded for the
    trajectory (informative, wall-time noise must not flake CI).
    """
    from .engine.cache import DocumentIndexCache
    from .engine.plan_cache import PlanCache
    from .session import QuerySession

    query = next(q[1] for q in QUERIES if q[0] == TRACING_GUARD_QUERY)
    session = QuerySession(
        bibliography(bib_entries, seed=0),
        indexes=DocumentIndexCache(),
        plans=PlanCache(),
    )
    session.run(query)
    cold = session.current()
    assert cold.stats.plan_cache_misses == 1, "cold run must compile"
    assert cold.stats.plan_cache_hits == 0
    cold_seconds = cold.seconds
    warm_seconds = None
    for _ in range(max(repeat, 1)):
        session.run(query)
        warm = session.current()
        assert warm.stats.plan_cache_hits == 1, "warm run must hit the cache"
        assert warm.stats.plan_cache_misses == 0
        assert warm.result.size() == cold.result.size()
        seconds = warm.seconds
        warm_seconds = seconds if warm_seconds is None else min(warm_seconds, seconds)
    return {
        "query": TRACING_GUARD_QUERY,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": round(cold_seconds / max(warm_seconds, 1e-9), 3),
    }


#: The deliberately redundant drawing the rewrite guard measures (the same
#: shape as ``examples/fig_redundant.xgl``): three deep arcs asking for
#: overlapping structure plus a tautological conjunct.  The rewriter must
#: shrink it to one arc.
REWRITE_GUARD_QUERY = (
    "query { root report as R { deep para as P  deep para as P2  "
    "deep * as W } where 1 = 1 } construct { r { collect P } }"
)


def measure_rewrite(document: Document, repeat: int) -> dict:
    """The rewrite guard: minimization must pay for itself on redundancy.

    Evaluates the redundant guard rule with the rewriter off (the drawing
    verbatim) and on (the minimized rule), best-of-``repeat`` each.
    *Asserts* the rewriter removed at least one fragment, that the
    constructed results are byte-identical, and that the off/on work
    ratio clears 2x — the counters are deterministic, so this cannot
    flake on wall time.  Records counters, timings and the ratio.
    """
    from .analysis.rewrite import rewrite_rule
    from .ssd import serialize
    from .xmlgl.evaluator import evaluate_rule

    rule = parse_rule(REWRITE_GUARD_QUERY)
    rewritten, report = rewrite_rule(rule)
    fragments_removed = report.counters.get(
        "merged", 0
    ) + report.counters.get("pruned", 0)
    assert fragments_removed >= 1, "the redundant guard rule did not shrink"

    def best_of(target) -> tuple[float, int, str]:
        stats = EvalStats()
        result = evaluate_rule(target, document, options=PIPELINE, stats=stats)
        work = stats.candidates_tried + stats.edge_checks
        best = stats.seconds
        for _ in range(repeat - 1):
            started = time.perf_counter()
            evaluate_rule(target, document, options=PIPELINE)
            best = min(best, time.perf_counter() - started)
        return best, work, serialize(result)

    off_seconds, off_work, off_result = best_of(rule)
    on_seconds, on_work, on_result = best_of(rewritten)
    assert on_result == off_result, "the rewrite changed the result"
    work_ratio = round(off_work / max(on_work, 1), 2)
    assert work_ratio > 2.0, (
        f"rewrite-off/rewrite-on work ratio {work_ratio} <= 2x"
    )
    return {
        "query": "rewrite/redundant",
        "rewrites": report.describe(),
        "fragments_removed": fragments_removed,
        "results_identical": True,
        "off_work": off_work,
        "on_work": on_work,
        "work_ratio": work_ratio,
        "off_seconds": off_seconds,
        "on_seconds": on_seconds,
        "speedup": round(off_seconds / max(on_seconds, 1e-9), 2),
    }


def measure_columnar(
    graph: QueryGraph,
    document: Document,
    index: DocumentIndex,
    repeat: int,
) -> dict:
    """The columnar guard: kernels must win at the fragment level.

    Times the guard query on the pipeline engine with the columnar
    kernels on and off.  The dispatch seam
    (``matcher._setwise_fragment`` / ``_setwise_fragment_columns``) is
    instrumented so the block can report the time actually spent inside
    the fragment evaluators — the kernel-level ratio the ``>= 3x``
    acceptance gate measures — alongside the end-to-end ratio, which
    both paths dilute with identical parse/pool/construct work.
    *Asserts* the binding multisets are identical.
    """
    from .engine import columns
    from .engine.bindings import value_key
    from .xmlgl import matcher as matcher_module

    originals = (
        matcher_module._setwise_fragment,
        matcher_module._setwise_fragment_columns,
    )
    bucket = [0.0]

    def instrument(fn):
        def wrapper(*args, **kwargs):
            started = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                bucket[0] += time.perf_counter() - started

        return wrapper

    # The pipeline resolves both evaluators through module globals at each
    # fragment dispatch, so wrapping the globals measures the real engine.
    matcher_module._setwise_fragment = instrument(originals[0])
    matcher_module._setwise_fragment_columns = instrument(originals[1])
    try:

        def best_of(options: MatchOptions) -> tuple[float, float, list]:
            best_total = best_fragment = None
            bindings = None
            for _ in range(repeat):
                bucket[0] = 0.0
                started = time.perf_counter()
                bindings = match(graph, document, options=options, index=index)
                total = time.perf_counter() - started
                if best_total is None or total < best_total:
                    best_total = total
                if best_fragment is None or bucket[0] < best_fragment:
                    best_fragment = bucket[0]
            key = sorted(
                tuple(sorted((var, value_key(b[var])) for var in b))
                for b in bindings
            )
            return best_total, best_fragment, key

        on_total, on_fragment, on_key = best_of(
            MatchOptions(engine="pipeline", columnar=True)
        )
        off_total, off_fragment, off_key = best_of(
            MatchOptions(engine="pipeline", columnar=False)
        )
    finally:
        matcher_module._setwise_fragment = originals[0]
        matcher_module._setwise_fragment_columns = originals[1]
    assert on_key == off_key, "columnar kernels changed the bindings"
    return {
        "query": TRACING_GUARD_QUERY,
        "backend": columns.backend(),
        "bindings": len(on_key),
        "results_identical": True,
        "tuple_seconds": off_total,
        "columnar_seconds": on_total,
        "tuple_fragment_seconds": off_fragment,
        "columnar_fragment_seconds": on_fragment,
        "fragment_speedup": round(
            off_fragment / max(on_fragment, 1e-9), 2
        ),
        "end_to_end_speedup": round(off_total / max(on_total, 1e-9), 2),
    }


#: The continuous query the incremental block keeps live during the edit
#: script: tags {book} + attribute {year}, no text reads — so the edit mix
#: below exercises both footprint outcomes (re-run and provable skip).
INCREMENTAL_QUERY = (
    "query { book as B { @year as Y } } construct { r { collect B } }"
)


def measure_incremental(
    bib_entries: int = 400, edits: int = 1000, seed: int = 0
) -> dict:
    """The mutation block: a 1000-edit script, incremental vs rebuild work.

    Applies a deterministic script of typed mutations (insert book /
    insert note / delete entry / retag year / reprice) to a bibliography
    through :meth:`~repro.session.QuerySession.mutate`, with the cached
    :class:`~repro.engine.index.DocumentIndex` maintained in place and a
    continuous query subscribed throughout.  Records:

    * ``incremental_work`` — labels assigned/removed/relabelled plus
      statistics nodes touched, from the index's maintenance counters;
    * ``rebuild_work`` — what rebuild-per-edit would have cost: every
      edit relabels and recounts the whole document (``2 * n`` per edit);
    * ``work_ratio`` — rebuild / incremental, the headline number
      (``--gate-incremental`` turns it into a hard CI floor);
    * the subscription's eval/skip split and a correctness anchor: the
      final maintained row count *asserts* equal to a from-scratch
      re-evaluation over the mutated document with a fresh index.
    """
    import random

    from .engine.cache import DocumentIndexCache
    from .engine.mutate import MutationBatch
    from .session import QuerySession
    from .ssd.model import Element, Text
    from .xmlgl.evaluator import rule_bindings

    document = bibliography(bib_entries, seed=seed)
    indexes = DocumentIndexCache()
    session = QuerySession(document, indexes=indexes)
    index = indexes.get(document)
    subscription = session.subscribe(INCREMENTAL_QUERY)
    rng = random.Random(seed)
    base = index.maintenance_counters()
    rebuild_work = 0
    deltas = 0
    started = time.perf_counter()
    for position in range(edits):
        root = document.root
        entries = root.child_elements()
        batch = MutationBatch()
        kind = rng.random()
        if kind < 0.30 or len(entries) < 10:
            book = Element("book", attributes={"year": str(rng.randint(1980, 2005))})
            title = Element("title")
            title.append(Text(f"generated {position}"))
            book.append(title)
            batch.insert_subtree(root, book, rng.randrange(len(entries) + 1))
        elif kind < 0.50:
            note = Element("note")
            note.append(Text(f"margin {position}"))
            batch.insert_subtree(rng.choice(entries), note)
        elif kind < 0.65:
            batch.delete_subtree(rng.choice(entries))
        elif kind < 0.85:
            target = rng.choice(entries)
            prices = [e for e in target.child_elements() if e.tag == "price"]
            batch.update_value(
                prices[0] if prices else target.child_elements()[0],
                f"{rng.randint(10, 200)}.00",
            )
        else:
            batch.update_attribute(
                rng.choice(entries), "year", str(rng.randint(1980, 2005))
            )
        session.mutate(batch)
        # A rebuild-per-edit maintenance strategy relabels every element
        # and recollects statistics over every element, each commit.
        rebuild_work += 2 * index.element_count()
        deltas += len(subscription.poll())
    seconds = time.perf_counter() - started
    counters = index.maintenance_counters()
    incremental_work = sum(
        counters[key] - base[key]
        for key in ("labels_assigned", "labels_removed", "relabel_labels", "stats_nodes")
    )
    scratch = len(
        rule_bindings(
            parse_rule(INCREMENTAL_QUERY),
            document,
            indexes=DocumentIndexCache(),
        )
    )
    maintained_rows = len(subscription.rows())
    assert maintained_rows == scratch, (
        f"maintained subscription rows {maintained_rows} != "
        f"from-scratch re-evaluation {scratch}"
    )
    assert subscription.skips > 0, "the edit mix never exercised a skip"
    return {
        "query": INCREMENTAL_QUERY,
        "edits": edits,
        "final_elements": index.element_count(),
        "incremental_work": incremental_work,
        "rebuild_work": rebuild_work,
        "work_ratio": round(rebuild_work / max(incremental_work, 1), 2),
        "seconds": seconds,
        "evals": subscription.evals,
        "skips": subscription.skips,
        "deltas": deltas,
        "rows": maintained_rows,
        "rows_match_scratch": True,
        "maintenance_counters": {
            key: counters[key] - base[key] for key in counters
        },
    }


#: The query the sharded-scaling block maps over the corpus.
SCALING_QUERY = "ext_scaling/select"


def measure_scaling(
    workers: int,
    corpus_documents: int = 100,
    bib_entries: int = 40,
) -> dict:
    """The sharding block: one query over a corpus, 1 worker vs ``workers``.

    Builds a ``corpus_documents``-document corpus (distinct seeds — 100
    documents is the 100x-scale entry the trajectory tracks), maps the
    selection query over it single-worker and ``workers``-wide, asserts
    the per-document results identical, and records wall times, the
    speedup, each shard's own wall time and the driver-side merge
    overhead.  The host CPU count is recorded because the number *means*
    nothing without it: a single-core container honestly reports ~1x.
    """
    import os

    from .engine.shard import ShardedExecutor
    from .ssd import serialize

    query = next(q[1] for q in QUERIES if q[0] == SCALING_QUERY)
    corpus = {
        f"doc{position}": bibliography(bib_entries, seed=position)
        for position in range(corpus_documents)
    }
    started = time.perf_counter()
    single = ShardedExecutor(max_workers=1).map_corpus(query, corpus, shards=1)
    single_seconds = time.perf_counter() - started
    started = time.perf_counter()
    sharded = ShardedExecutor(max_workers=workers).map_corpus(
        query, corpus, shards=workers
    )
    sharded_seconds = time.perf_counter() - started
    assert single.ok and sharded.ok, "scaling corpus run raised"
    for one, other in zip(single.results, sharded.results):
        assert serialize(one) == serialize(other), "sharded results diverged"
    return {
        "query": SCALING_QUERY,
        "workers": workers,
        "cpus": os.cpu_count(),
        "corpus_documents": corpus_documents,
        "bib_entries_per_document": bib_entries,
        "results_identical": True,
        "bindings": sharded.stats.bindings_produced,
        "single_seconds": single_seconds,
        "sharded_seconds": sharded_seconds,
        "speedup": round(single_seconds / max(sharded_seconds, 1e-9), 2),
        "shard_seconds": [round(s, 4) for s in sharded.shard_seconds],
        "merge_seconds": round(sharded.merge_seconds, 4),
    }


def run_suite(
    bib_entries: int = 400,
    sections_depth: int = 7,
    repeat: int = 5,
    workers: int = 0,
) -> dict:
    """Run every query on all four engines; returns the JSON-ready report."""
    datasets = {
        "bib": bibliography(bib_entries, seed=0),
        "sections": nested_sections(depth=sections_depth, fanout=2, seed=0),
    }
    indexes = {name: DocumentIndex(doc) for name, doc in datasets.items()}
    report: dict = {
        "generated_by": "repro.bench_smoke",
        "schema_version": 3,
        "sizes": {
            "bib_entries": bib_entries,
            "sections_depth": sections_depth,
            "bib_elements": indexes["bib"].element_count(),
            "sections_elements": indexes["sections"].element_count(),
        },
        "repeat": repeat,
        "queries": {},
    }
    for name, text, dataset, descendant_heavy, join_heavy in QUERIES:
        graph = _first_graph(text)
        document = datasets[dataset]
        index = indexes[dataset]
        entry: dict = {
            "dataset": dataset,
            "descendant_heavy": descendant_heavy,
            "join_heavy": join_heavy,
        }
        for label, options in ENGINES:
            seconds, counters, bindings = _time_and_count(
                graph, document, index, options, repeat
            )
            work = counters["candidates_tried"] + counters["edge_checks"]
            entry[label] = {
                "seconds": seconds,
                "bindings": bindings,
                "work": work,
                **counters,
            }
        assert entry["indexed"]["bindings"] == entry["naive"]["bindings"], name
        assert entry["pipeline"]["bindings"] == entry["indexed"]["bindings"], name
        assert entry["adaptive"]["bindings"] == entry["indexed"]["bindings"], name
        indexed_work = max(entry["indexed"]["work"], 1)
        entry["work_ratio"] = round(entry["naive"]["work"] / indexed_work, 2)
        entry["speedup"] = round(
            entry["naive"]["seconds"] / max(entry["indexed"]["seconds"], 1e-9), 2
        )
        entry["pipeline_work_ratio"] = round(
            entry["pipeline"]["work"] / indexed_work, 4
        )
        entry["pipeline_speedup"] = round(
            entry["indexed"]["seconds"] / max(entry["pipeline"]["seconds"], 1e-9),
            2,
        )
        best_forced = min(entry["pipeline"]["seconds"], entry["indexed"]["seconds"])
        entry["adaptive_overhead"] = round(
            entry["adaptive"]["seconds"] / max(best_forced, 1e-9), 3
        )
        report["queries"][name] = entry
    guard_text = next(q[1] for q in QUERIES if q[0] == TRACING_GUARD_QUERY)
    guard_dataset = next(q[2] for q in QUERIES if q[0] == TRACING_GUARD_QUERY)
    report["tracing"] = measure_tracing_overhead(
        _first_graph(guard_text),
        datasets[guard_dataset],
        indexes[guard_dataset],
        repeat,
    )
    report["governance"] = measure_governance_overhead(
        _first_graph(guard_text),
        datasets[guard_dataset],
        indexes[guard_dataset],
        repeat,
    )
    report["plan_cache"] = measure_plan_cache(repeat, bib_entries)
    report["rewrite"] = measure_rewrite(datasets["sections"], repeat)
    report["columnar"] = measure_columnar(
        _first_graph(guard_text),
        datasets[guard_dataset],
        indexes[guard_dataset],
        repeat,
    )
    # Tiny test-suite sizes get a proportionally shorter edit script;
    # the CI size (400 entries) runs the full 1000 edits.
    report["incremental"] = measure_incremental(
        bib_entries=bib_entries, edits=min(1000, 10 * bib_entries)
    )
    if workers > 1:
        report["scaling"] = measure_scaling(workers)
    return report


def check_adaptive(report: dict) -> list[str]:
    """Per-query gate: the adaptive default must keep up with the best
    forced engine (within :data:`ADAPTIVE_TOLERANCE` plus the absolute
    noise floor).  Returns violation lines; any violation fails the run.
    """
    violations = []
    for name, entry in report.get("queries", {}).items():
        adaptive = entry.get("adaptive", {}).get("seconds")
        forced = [
            entry.get(label, {}).get("seconds")
            for label in ("pipeline", "indexed")
        ]
        forced = [s for s in forced if s is not None]
        if adaptive is None or not forced:
            continue
        best = min(forced)
        allowed = best * (1 + ADAPTIVE_TOLERANCE) + ADAPTIVE_NOISE_FLOOR_SECONDS
        if adaptive > allowed:
            violations.append(
                f"{name}: adaptive {adaptive * 1000:.2f}ms > "
                f"{allowed * 1000:.2f}ms allowed "
                f"(best forced {best * 1000:.2f}ms "
                f"+{ADAPTIVE_TOLERANCE * 100:.0f}% "
                f"+{ADAPTIVE_NOISE_FLOOR_SECONDS * 1000:.0f}ms floor)"
            )
    return violations


def check_baseline(report: dict, baseline: dict) -> list[str]:
    """Per-query, per-engine ``work`` regressions beyond the tolerance.

    Returns human-readable warning lines (empty = no regressions).  Only
    queries and engines present in both reports are compared, so adding or
    renaming queries never trips the check.
    """
    warnings = []
    for name, entry in report.get("queries", {}).items():
        base_entry = baseline.get("queries", {}).get(name)
        if not isinstance(base_entry, dict):
            continue
        for label, _ in ENGINES:
            current = entry.get(label, {}).get("work")
            previous = base_entry.get(label, {}).get("work")
            if current is None or previous is None or previous <= 0:
                continue
            if current > previous * (1 + REGRESSION_TOLERANCE):
                warnings.append(
                    f"{name} [{label}]: work {previous} -> {current} "
                    f"(+{(current / previous - 1) * 100:.0f}%, "
                    f"tolerance {REGRESSION_TOLERANCE * 100:.0f}%)"
                )
    return warnings


def _history_record(report: dict) -> dict:
    """One compact, timestamped trajectory point for the history list."""
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "sizes": dict(report["sizes"]),
        "work": {
            name: {label: entry[label]["work"] for label, _ in ENGINES}
            for name, entry in report["queries"].items()
        },
        "pipeline_speedup": {
            name: entry["pipeline_speedup"]
            for name, entry in report["queries"].items()
        },
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench_smoke", description=__doc__.splitlines()[0]
    )
    parser.add_argument("-o", "--output", default="BENCH_matcher.json")
    parser.add_argument("--bib-entries", type=int, default=400)
    parser.add_argument("--sections-depth", type=int, default=7)
    parser.add_argument("--repeat", type=int, default=5)
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed report to compare against; work regressions beyond "
        "20%% print ::warning:: annotations but never fail the run",
    )
    parser.add_argument(
        "--append-history",
        action="store_true",
        help="carry the baseline's (or previous output's) history forward "
        "and append one timestamped record for this run",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="also run the sharded-scaling block over a 100-document "
        "corpus with this many worker processes (0 = skip)",
    )
    parser.add_argument(
        "--gate-columnar",
        type=float,
        default=None,
        metavar="RATIO",
        help="hard-fail if the columnar fragment-level speedup is below "
        "this ratio (CI uses 3.0)",
    )
    parser.add_argument(
        "--gate-scaling",
        type=float,
        default=None,
        metavar="RATIO",
        help="hard-fail if the sharded speedup at --workers is below this "
        "ratio (CI uses 2.0 at 4 workers; needs a multi-core host)",
    )
    parser.add_argument(
        "--gate-incremental",
        type=float,
        default=None,
        metavar="RATIO",
        help="hard-fail if the incremental-maintenance work ratio "
        "(rebuild-per-edit / incremental) is below this ratio (CI uses 5.0)",
    )
    args = parser.parse_args(argv)
    report = run_suite(
        args.bib_entries, args.sections_depth, args.repeat, args.workers
    )

    baseline: Optional[dict] = None
    if args.baseline:
        try:
            with open(args.baseline, "r", encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"::warning::bench baseline unreadable: {exc}")

    if args.append_history:
        prior = baseline
        if prior is None:
            try:
                with open(args.output, "r", encoding="utf-8") as handle:
                    prior = json.load(handle)
            except (OSError, ValueError):
                prior = None
        history = list(prior.get("history", [])) if prior else []
        history.append(_history_record(report))
        report["history"] = history

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(f"wrote {args.output}")
    for name, entry in report["queries"].items():
        marker = "*" if entry["descendant_heavy"] else " "
        marker = "j" if entry["join_heavy"] else marker
        print(
            f" {marker} {name}: work {entry['naive']['work']} -> "
            f"{entry['indexed']['work']} -> {entry['pipeline']['work']} "
            f"(naive/indexed {entry['work_ratio']}x), "
            f"time {entry['naive']['seconds'] * 1000:.2f}ms -> "
            f"{entry['indexed']['seconds'] * 1000:.2f}ms -> "
            f"{entry['pipeline']['seconds'] * 1000:.2f}ms "
            f"(pipeline {entry['pipeline_speedup']}x over indexed, "
            f"adaptive {entry['adaptive_overhead']}x of best forced)"
        )
    heavy = [
        (name, entry)
        for name, entry in report["queries"].items()
        if entry["descendant_heavy"]
    ]
    worst = min(entry["work_ratio"] for _, entry in heavy)
    print(f"descendant-heavy (*) worst work ratio: {worst}x")
    joins = [
        (name, entry)
        for name, entry in report["queries"].items()
        if entry["join_heavy"]
    ]
    if joins:
        worst_join = min(entry["pipeline_speedup"] for _, entry in joins)
        print(f"join-heavy (j) worst pipeline speedup: {worst_join}x")
    tracing = report["tracing"]
    print(
        f"tracing overhead ({tracing['query']}): "
        f"{tracing['disabled_seconds'] * 1000:.2f}ms untraced -> "
        f"{tracing['traced_seconds'] * 1000:.2f}ms traced "
        f"({tracing['overhead_ratio']}x), counters identical"
    )
    governance = report["governance"]
    print(
        f"governance overhead ({governance['query']}): "
        f"{governance['unbudgeted_seconds'] * 1000:.2f}ms unbudgeted -> "
        f"{governance['budgeted_seconds'] * 1000:.2f}ms budgeted "
        f"({governance['overhead_ratio']}x), counters identical"
    )
    plan_cache = report["plan_cache"]
    print(
        f"plan cache ({plan_cache['query']}): "
        f"{plan_cache['cold_seconds'] * 1000:.2f}ms cold -> "
        f"{plan_cache['warm_seconds'] * 1000:.2f}ms warm "
        f"({plan_cache['speedup']}x), counters asserted"
    )
    rewrite = report["rewrite"]
    print(
        f"rewrite ({rewrite['query']}): {rewrite['rewrites']}, "
        f"work {rewrite['off_work']} -> {rewrite['on_work']} "
        f"({rewrite['work_ratio']}x off/on), results identical"
    )
    columnar = report["columnar"]
    print(
        f"columnar ({columnar['query']}, {columnar['backend']} backend): "
        f"fragments {columnar['tuple_fragment_seconds'] * 1000:.2f}ms tuple"
        f" -> {columnar['columnar_fragment_seconds'] * 1000:.2f}ms columnar"
        f" ({columnar['fragment_speedup']}x), end-to-end "
        f"{columnar['end_to_end_speedup']}x, bindings identical"
    )
    incremental = report["incremental"]
    print(
        f"incremental ({incremental['edits']} edits, "
        f"{incremental['final_elements']} final elements): "
        f"maintenance work {incremental['rebuild_work']} rebuild -> "
        f"{incremental['incremental_work']} incremental "
        f"({incremental['work_ratio']}x), subscription "
        f"{incremental['evals']} evals / {incremental['skips']} skips, "
        f"rows match scratch re-eval"
    )
    if "scaling" in report:
        scaling = report["scaling"]
        print(
            f"scaling ({scaling['query']}, {scaling['corpus_documents']} "
            f"docs, {scaling['cpus']} cpu(s)): "
            f"{scaling['single_seconds'] * 1000:.0f}ms @1 worker -> "
            f"{scaling['sharded_seconds'] * 1000:.0f}ms @{scaling['workers']}"
            f" workers ({scaling['speedup']}x), merge "
            f"{scaling['merge_seconds'] * 1000:.1f}ms, results identical"
        )

    failures = []
    if args.gate_columnar is not None:
        ratio = columnar["fragment_speedup"]
        if ratio < args.gate_columnar:
            failures.append(
                f"columnar fragment speedup {ratio}x < "
                f"{args.gate_columnar}x floor"
            )
    if args.gate_scaling is not None:
        if "scaling" not in report:
            failures.append("--gate-scaling given but --workers not set")
        elif report["scaling"]["speedup"] < args.gate_scaling:
            failures.append(
                f"sharded speedup {report['scaling']['speedup']}x at "
                f"{report['scaling']['workers']} workers < "
                f"{args.gate_scaling}x floor "
                f"({report['scaling']['cpus']} cpus)"
            )
    if args.gate_incremental is not None:
        ratio = incremental["work_ratio"]
        if ratio < args.gate_incremental:
            failures.append(
                f"incremental maintenance work ratio {ratio}x < "
                f"{args.gate_incremental}x floor"
            )
    for line in failures:
        print(f"::error::bench gate: {line}")

    if baseline is not None:
        regressions = check_baseline(report, baseline)
        for line in regressions:
            print(f"::warning::bench regression: {line}")
        if not regressions:
            print("no work regressions vs baseline")

    violations = check_adaptive(report)
    for line in violations:
        print(f"::error::adaptive regression: {line}")
    if violations or failures:
        return 1
    print("adaptive within tolerance of best forced engine on every query")
    return 0


if __name__ == "__main__":
    sys.exit(main())
