"""Benchmark smoke-runner: the ``bench_ext_*`` workloads at small sizes.

Runs the representative matcher queries from the extension benchmarks
(``bench_ext_ablation``, ``bench_ext_paths``, ``bench_ext_scaling``,
``bench_fig_q4_deep``) on both evaluation paths — the interval-indexed
default and the naive full-scan ablation — and writes a JSON report
(``BENCH_matcher.json``) with per-query wall time and
:class:`~repro.engine.stats.EvalStats` counters, so successive PRs leave a
perf trajectory to compare against::

    PYTHONPATH=src python -m repro.bench_smoke            # small sizes
    PYTHONPATH=src python -m repro.bench_smoke --repeat 9 -o BENCH_matcher.json

``work`` is ``candidates_tried + edge_checks``; ``work_ratio`` is
naive-work / indexed-work (≥ 1 means the interval path does less
trial-and-error), ``speedup`` the same for wall time.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional, Sequence

from .engine.index import DocumentIndex
from .engine.stats import EvalStats
from .ssd.model import Document
from .workloads import bibliography, nested_sections
from .xmlgl.ast import QueryGraph
from .xmlgl.dsl import parse_rule
from .xmlgl.matcher import MatchOptions, match

__all__ = ["run_suite", "main"]

INDEXED = MatchOptions(use_planner=True, use_index=True)
NAIVE = MatchOptions(use_planner=True, use_index=False)

# (name, dsl text, dataset, descendant_heavy)
QUERIES: list[tuple[str, str, str, bool]] = [
    (
        "ext_paths/chain",
        "query { root bib as R { book as B { title as T } } }"
        " construct { r { collect T } }",
        "bib",
        False,
    ),
    (
        "ext_paths/deep",
        "query { root report as R { deep para as P } }"
        " construct { r { collect P } }",
        "sections",
        True,
    ),
    (
        "ext_paths/filtered",
        'query { book as B { @year = "1999" as Y  not publisher as P } }'
        " construct { r { collect B } }",
        "bib",
        False,
    ),
    (
        "fig_q4/deep_star",
        "query { root report as R { deep para as P } }"
        " construct { r { collect P } }",
        "sections",
        True,
    ),
    (
        "ext_ablation/multibox",
        "query { book as B { publisher as P  title as T  @year as Y }"
        " where Y >= 1995 } construct { r { collect T } }",
        "bib",
        False,
    ),
    (
        "ext_scaling/select",
        "query { book as B { title as T  @year as Y } where Y >= 1995 }"
        " construct { r { collect T } }",
        "bib",
        False,
    ),
]


def _first_graph(text: str) -> QueryGraph:
    return parse_rule(text).queries[0]


def _time_and_count(
    graph: QueryGraph,
    document: Document,
    index: DocumentIndex,
    options: MatchOptions,
    repeat: int,
) -> tuple[float, dict, int]:
    stats = EvalStats()
    bindings = match(graph, document, options=options, index=index, stats=stats)
    best = stats.seconds
    for _ in range(repeat - 1):
        started = time.perf_counter()
        match(graph, document, options=options, index=index)
        best = min(best, time.perf_counter() - started)
    counters = stats.as_dict()
    counters.pop("seconds", None)
    return best, counters, len(bindings)


def run_suite(
    bib_entries: int = 400,
    sections_depth: int = 7,
    repeat: int = 5,
) -> dict:
    """Run every query on both paths; returns the JSON-ready report."""
    datasets = {
        "bib": bibliography(bib_entries, seed=0),
        "sections": nested_sections(depth=sections_depth, fanout=2, seed=0),
    }
    indexes = {name: DocumentIndex(doc) for name, doc in datasets.items()}
    report: dict = {
        "generated_by": "repro.bench_smoke",
        "schema_version": 1,
        "sizes": {
            "bib_entries": bib_entries,
            "sections_depth": sections_depth,
            "bib_elements": indexes["bib"].element_count(),
            "sections_elements": indexes["sections"].element_count(),
        },
        "repeat": repeat,
        "queries": {},
    }
    for name, text, dataset, descendant_heavy in QUERIES:
        graph = _first_graph(text)
        document = datasets[dataset]
        index = indexes[dataset]
        entry: dict = {"dataset": dataset, "descendant_heavy": descendant_heavy}
        for label, options in (("indexed", INDEXED), ("naive", NAIVE)):
            seconds, counters, bindings = _time_and_count(
                graph, document, index, options, repeat
            )
            work = counters["candidates_tried"] + counters["edge_checks"]
            entry[label] = {
                "seconds": seconds,
                "bindings": bindings,
                "work": work,
                **counters,
            }
        assert entry["indexed"]["bindings"] == entry["naive"]["bindings"], name
        indexed_work = max(entry["indexed"]["work"], 1)
        entry["work_ratio"] = round(entry["naive"]["work"] / indexed_work, 2)
        entry["speedup"] = round(
            entry["naive"]["seconds"] / max(entry["indexed"]["seconds"], 1e-9), 2
        )
        report["queries"][name] = entry
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench_smoke", description=__doc__.splitlines()[0]
    )
    parser.add_argument("-o", "--output", default="BENCH_matcher.json")
    parser.add_argument("--bib-entries", type=int, default=400)
    parser.add_argument("--sections-depth", type=int, default=7)
    parser.add_argument("--repeat", type=int, default=5)
    args = parser.parse_args(argv)
    report = run_suite(args.bib_entries, args.sections_depth, args.repeat)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    heavy = [
        (name, entry)
        for name, entry in report["queries"].items()
        if entry["descendant_heavy"]
    ]
    print(f"wrote {args.output}")
    for name, entry in report["queries"].items():
        marker = "*" if entry["descendant_heavy"] else " "
        print(
            f" {marker} {name}: work {entry['naive']['work']} -> "
            f"{entry['indexed']['work']} ({entry['work_ratio']}x), "
            f"time {entry['naive']['seconds'] * 1000:.2f}ms -> "
            f"{entry['indexed']['seconds'] * 1000:.2f}ms "
            f"({entry['speedup']}x)"
        )
    worst = min(entry["work_ratio"] for _, entry in heavy)
    print(f"descendant-heavy (*) worst work ratio: {worst}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
