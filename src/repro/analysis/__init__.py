"""Static analysis of XML-GL and WG-Log queries.

The paper's central claim for graphical query languages is that their
restricted, graph-shaped structure makes queries *checkable before they
run*: safety and stratification for the Datalog-flavoured WG-Log,
satisfiability and schema conformance for XML-GL.  This package is that
checker — a diagnostics model (:class:`Diagnostic`, stable codes,
severities, node/edge anchors), a pass registry, and concrete passes per
language:

==========  =========================================================
family      passes
==========  =========================================================
structure   ``xmlgl.structure`` — XGL001-XGL013
sat         ``xmlgl.satisfiability`` / ``wglog.satisfiability``
construct   ``xmlgl.construct`` — XGL020-XGL024
safety      ``wglog.safety`` / ``wglog.stratification`` — WGL001-WGL008
schema      ``xmlgl.schema`` (XGS001-XGS008) / ``wglog.schema``
==========  =========================================================

Entry points: :func:`analyze_rule` for one XML-GL rule,
:func:`analyze_program` for a WG-Log rule program (stratification is a
whole-program property), and the evaluator-facing pre-flights in
:mod:`repro.analysis.preflight`.  The ``repro lint`` CLI command and
``QuerySession.analyze()`` are thin wrappers over these.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from .diagnostics import (
    Diagnostic,
    Severity,
    dedupe,
    has_errors,
    max_severity,
    render_json,
    render_text,
)
from .passes import AnalysisContext, AnalysisPass, passes_for, register
from .preflight import wglog_preflight, xmlgl_preflight

# Importing the pass modules registers them.
from . import xmlgl_query as _xmlgl_query  # noqa: F401
from . import xmlgl_construct as _xmlgl_construct  # noqa: F401
from . import xmlgl_schema as _xmlgl_schema  # noqa: F401
from . import wglog_rules as _wglog_rules  # noqa: F401

__all__ = [
    "Diagnostic",
    "Severity",
    "AnalysisContext",
    "AnalysisPass",
    "register",
    "passes_for",
    "analyze_rule",
    "analyze_program",
    "dedupe",
    "has_errors",
    "max_severity",
    "render_text",
    "render_json",
    "xmlgl_preflight",
    "wglog_preflight",
]


def _sorted(findings: list[Diagnostic]) -> list[Diagnostic]:
    return sorted(
        dedupe(findings),
        key=lambda d: (-d.severity.rank, d.code, d.node or "", d.message),
    )


def analyze_rule(
    rule,
    context: Optional[AnalysisContext] = None,
    families: Optional[Iterable[str]] = None,
) -> list[Diagnostic]:
    """All diagnostics for one XML-GL rule, most severe first.

    ``context`` supplies an optional :class:`~repro.xmlgl.schema.SchemaGraph`
    (``xml_schema``) for the conformance pass; ``families`` restricts which
    pass families run (default: all).
    """
    context = context or AnalysisContext()
    findings: list[Diagnostic] = []
    for analysis_pass in passes_for("xmlgl", families):
        findings.extend(analysis_pass.run(rule, context))
    return _sorted(findings)


def analyze_program(
    rules: Union[list, tuple],
    context: Optional[AnalysisContext] = None,
    families: Optional[Iterable[str]] = None,
) -> list[Diagnostic]:
    """All diagnostics for a WG-Log rule program, most severe first.

    Pass every rule that will evaluate together: stratification (WGL003)
    is only meaningful across the whole program.  ``context`` supplies an
    optional :class:`~repro.wglog.schema.WGSchema` (``wg_schema``).
    """
    context = context or AnalysisContext()
    program = list(rules)
    findings: list[Diagnostic] = []
    for analysis_pass in passes_for("wglog", families):
        findings.extend(analysis_pass.run(program, context))
    return _sorted(findings)
