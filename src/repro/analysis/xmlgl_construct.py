"""Static analysis of XML-GL construct (right-hand) parts.

The construct part references extract-part nodes by id; nothing in the
AST forces those references to resolve, and before this subsystem the
failures only surfaced at evaluation time (``UnboundConstructVariable``)
or not at all (a ``copy`` of a misspelled id silently emits nothing).
The pass walks the construct tree carrying a */path* (``result/entry[1]``)
so each finding names the construct node it anchors at:

* **XGL020** (error) — a referenced variable is not a node of any extract
  graph: ``value``/``$var`` attributes and ``tag_from`` crash at run time,
  ``copy``/``collect``/``for``/``group`` silently produce nothing;
* **XGL021** (warning) — a dead construct node: a grouping icon with no
  children splices nothing into the result;
* **XGL022** (warning) — a grouping icon whose children extract no
  binding: every group repeats identical literal content;
* **XGL023** (error) — the construct root is replicated (``for`` on the
  root box): a query produces one result document;
* **XGL024** (error/warning) — a reference to a node that exists but is
  bound only inside a negated subtree, so it is never bound.
"""

from __future__ import annotations

from typing import Iterator, Union

from ..xmlgl.construct import (
    Aggregate,
    Collect,
    ConstructNode,
    Copy,
    GroupBy,
    NewElement,
    TextFrom,
)
from ..xmlgl.rule import Rule
from .diagnostics import Diagnostic, Severity
from .passes import AnalysisContext, register
from .xmlgl_query import negated_only_nodes

__all__ = ["construct_pass"]

#: (variable, role, raises_at_runtime)
_Reference = tuple[str, str, bool]


def _references(node: ConstructNode) -> list[_Reference]:
    """The query-variable references of one construct node (no recursion)."""
    refs: list[_Reference] = []
    if isinstance(node, NewElement):
        refs += [(v, "for", False) for v in node.for_each]
        if node.sort_by is not None:
            refs.append((node.sort_by, "sortby", False))
        if node.tag_from is not None:
            refs.append((node.tag_from, "tag_from", True))
        for attribute in node.attributes:
            if attribute.from_variable is not None:
                refs.append((attribute.from_variable, f"@{attribute.name}", True))
    elif isinstance(node, TextFrom):
        refs.append((node.variable, "value", True))
    elif isinstance(node, (Copy, Collect)):
        verb = "copy" if isinstance(node, Copy) else "collect"
        refs.append((node.variable, verb, False))
    elif isinstance(node, GroupBy):
        refs += [(v, "group", False) for v in node.group_on]
    elif isinstance(node, Aggregate):
        refs.append((node.variable, node.function, False))
    return refs


def _walk(node: ConstructNode, path: str) -> Iterator[tuple[ConstructNode, str]]:
    yield node, path
    children: list[ConstructNode] = []
    if isinstance(node, (NewElement, GroupBy)):
        children = node.children
    for position, child in enumerate(children):
        label = child.tag if isinstance(child, NewElement) else (
            "group" if isinstance(child, GroupBy) else type(child).__name__.lower()
        )
        yield from _walk(child, f"{path}/{label}[{position}]")


def _extracts_binding(node: Union[ConstructNode, None]) -> bool:
    """Does this subtree reference any query variable at all?"""
    if node is None:
        return False
    for sub, _ in _walk(node, ""):
        if _references(sub):
            return True
    return False


@register("xmlgl.construct", "xmlgl", "construct")
def construct_pass(rule: Rule, context: AnalysisContext) -> list[Diagnostic]:
    """XGL020-XGL024 over the rule's construct tree."""
    bound: set[str] = set()
    negated: set[str] = set()
    for graph in rule.queries:
        graph_negated = negated_only_nodes(graph)
        bound |= set(graph.nodes) - graph_negated
        negated |= graph_negated

    findings: list[Diagnostic] = []
    root = rule.construct
    if root.for_each:
        findings.append(Diagnostic(
            "XGL023",
            Severity.ERROR,
            f"the construct root <{root.tag}> is replicated over "
            f"{root.for_each}: a query produces one result document",
            hint="move the replication onto a child box",
        ))
    for node, path in _walk(root, root.tag):
        for variable, role, raises in _references(node):
            if variable in bound:
                continue
            if variable in negated:
                effect = (
                    "raises at evaluation time"
                    if raises
                    else "silently produces nothing"
                )
                findings.append(Diagnostic(
                    "XGL024",
                    Severity.ERROR if raises else Severity.WARNING,
                    f"{role} {variable!r} at {path} references a node bound "
                    f"only inside a negated subtree ({effect})",
                    node=variable,
                    hint="negated nodes are never bound",
                ))
            else:
                severity = (
                    Severity.WARNING if role == "sortby" else Severity.ERROR
                )
                effect = (
                    "raises at evaluation time"
                    if raises
                    else "silently produces nothing"
                )
                findings.append(Diagnostic(
                    "XGL020",
                    severity,
                    f"{role} {variable!r} at {path} is not a node of any "
                    f"extract graph ({effect})",
                    node=variable,
                    hint="check the node id for typos",
                ))
        if isinstance(node, GroupBy):
            if not node.children:
                findings.append(Diagnostic(
                    "XGL021",
                    Severity.WARNING,
                    f"grouping icon at {path} has no children: it splices "
                    "nothing into the result",
                ))
            elif not any(_extracts_binding(child) for child in node.children):
                findings.append(Diagnostic(
                    "XGL022",
                    Severity.WARNING,
                    f"grouping icon at {path} extracts no binding: every "
                    "group repeats the same literal content",
                    hint="reference a grouped variable in the children, "
                    "or drop the grouping icon",
                ))
    return [d.anchored(rule.name) for d in findings]
