"""The analysis-pass registry.

A *pass* is one named check over a parsed query: it takes the language's
analysis target (an XML-GL :class:`~repro.xmlgl.rule.Rule`, or a WG-Log
rule program) plus an :class:`AnalysisContext`, and returns diagnostics.
Passes self-register at import time via :func:`register`, keyed by
language and *family*:

========== ===============================================================
family     checks
========== ===============================================================
structure  well-formedness of the drawn graph (cycles, dangling circles)
sat        satisfiability — parts that provably match nothing
construct  the construct (right-hand) part against the extract part
safety     WG-Log range-restriction and program stratification
schema     conformance against a supplied schema graph
========== ===============================================================

``repro lint`` and :meth:`QuerySession.analyze` run every registered pass
for the language; the evaluator pre-flight runs only the cheap ``sat``
family (see :mod:`repro.analysis.preflight`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .diagnostics import Diagnostic

__all__ = ["AnalysisContext", "AnalysisPass", "register", "passes_for"]


@dataclass
class AnalysisContext:
    """Optional surroundings a pass may consult.

    Attributes:
        xml_schema: an XML-GL :class:`~repro.xmlgl.schema.SchemaGraph` for
            schema-conformance passes (``None`` = schema-optional mode).
        wg_schema: a :class:`~repro.wglog.schema.WGSchema` for WG-Log.
    """

    xml_schema: Optional[Any] = None
    wg_schema: Optional[Any] = None


PassFn = Callable[[Any, AnalysisContext], list[Diagnostic]]


@dataclass(frozen=True)
class AnalysisPass:
    """One registered check."""

    name: str
    language: str  # "xmlgl" | "wglog"
    family: str    # "structure" | "sat" | "construct" | "safety" | "schema"
    run: PassFn = field(compare=False)


_REGISTRY: dict[str, AnalysisPass] = {}


def register(name: str, language: str, family: str) -> Callable[[PassFn], PassFn]:
    """Decorator: add a pass to the registry under a unique name."""

    def wrap(fn: PassFn) -> PassFn:
        if name in _REGISTRY:
            raise ValueError(f"duplicate analysis pass {name!r}")
        _REGISTRY[name] = AnalysisPass(name, language, family, fn)
        return fn

    return wrap


def passes_for(
    language: str, families: Optional[set[str]] = None
) -> list[AnalysisPass]:
    """Registered passes for a language, registration order, optionally
    restricted to the given families."""
    return [
        p
        for p in _REGISTRY.values()
        if p.language == language and (families is None or p.family in families)
    ]
