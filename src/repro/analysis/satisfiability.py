"""Conjunctive-constraint satisfiability shared by both language analysers.

Graphical queries accumulate constraints on one bound value from several
places at once: a text circle's literal, a predicate annotation, a regex
constraint, a schema-fixed attribute.  Each is individually sensible; the
*conjunction* can be unsatisfiable (``= 'a'`` ∧ ``= 'b'``, ``< 5`` ∧
``> 10``), which means the query part can never match any document — the
editor-time rejection the paper attributes to graph-shaped queries.

:class:`ConstraintStore` accumulates constraints per *value view* — the
textual content of a bound node, a named attribute/slot of it, or its
tag/label — and :meth:`ConstraintStore.contradictions` reports every
provably-empty combination.  The analysis is deliberately conservative:
only top-level conjuncts with one constant side are interpreted, so every
reported contradiction is real (no false positives), at the price of
missing contradictions hidden under ``or``/``not`` or variable-to-variable
comparisons.

Two kinds of equality are tracked separately because the engines treat
them differently:

* **exact** — a raw-string requirement (a circle's ``value`` literal, a
  declared fixed attribute): the bound string must equal it verbatim;
* **atom equality** — a predicate ``= const``: compared with numeric
  coercion (``"007" = 7``).

A regex constraint can only be played against *exact* requirements (the
raw string is known then); pitting it against coerced equalities would
risk false positives.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Hashable, Optional

from ..engine.conditions import (
    And,
    AttributeOf,
    Comparison,
    Condition,
    Const,
    ContentOf,
    NameOf,
    Not,
    Operand,
    Or,
    Regex,
    _True,
)
from ..ssd.datatypes import Atomic, compare, equal_atoms

__all__ = ["ViewKey", "Contradiction", "ConstraintStore", "conjuncts", "extract_conjuncts"]

#: Identifies one constrained value: ("content", var), ("attr", var, name)
#: or ("name", var).
ViewKey = tuple[Hashable, ...]


@dataclass(frozen=True)
class Contradiction:
    """One provably-empty constraint combination."""

    key: Optional[ViewKey]
    message: str
    hint: Optional[str] = None

    @property
    def variable(self) -> Optional[str]:
        """The query variable the contradiction anchors at, if any."""
        if self.key is None:
            return None
        return str(self.key[1])


@dataclass
class _Constraints:
    exact: list[str] = field(default_factory=list)
    equals: list[Atomic] = field(default_factory=list)
    not_equals: list[Atomic] = field(default_factory=list)
    lowers: list[tuple[Atomic, bool]] = field(default_factory=list)  # (bound, strict)
    uppers: list[tuple[Atomic, bool]] = field(default_factory=list)
    regexes: list[str] = field(default_factory=list)


def _describe(key: ViewKey) -> str:
    kind = key[0]
    if kind == "content":
        return f"the value of {key[1]!r}"
    if kind == "attr":
        return f"attribute {key[2]!r} of {key[1]!r}"
    if kind == "text":
        return f"the text of {key[1]!r}"
    return f"the name of {key[1]!r}"


class ConstraintStore:
    """Accumulates per-view constraints and detects contradictions.

    ``aliases`` maps equivalent views onto one canonical key — e.g. an
    attribute circle's content view onto the owning element's attribute
    view — so constraints stated through either route are played against
    each other.
    """

    def __init__(self, aliases: Optional[dict[ViewKey, ViewKey]] = None) -> None:
        self._constraints: dict[ViewKey, _Constraints] = {}
        self._aliases = aliases or {}
        self._always_false: list[Contradiction] = []

    def _slot(self, key: ViewKey) -> _Constraints:
        key = self._aliases.get(key, key)
        return self._constraints.setdefault(key, _Constraints())

    # -- accumulation ---------------------------------------------------------

    def require_exact(self, key: ViewKey, raw: str) -> None:
        """The bound string must equal ``raw`` verbatim."""
        self._slot(key).exact.append(raw)

    def require_equal(self, key: ViewKey, value: Atomic) -> None:
        """The bound value must equal ``value`` under atom coercion."""
        self._slot(key).equals.append(value)

    def require_not_equal(self, key: ViewKey, value: Atomic) -> None:
        self._slot(key).not_equals.append(value)

    def require_bound(self, key: ViewKey, op: str, value: Atomic) -> None:
        """An ordering requirement ``view op value`` (op in < <= > >=)."""
        slot = self._slot(key)
        if op in ("<", "<="):
            slot.uppers.append((value, op == "<"))
        else:
            slot.lowers.append((value, op == ">"))

    def require_regex(self, key: ViewKey, pattern: str) -> None:
        self._slot(key).regexes.append(pattern)

    def constant_false(self, message: str, hint: Optional[str] = None) -> None:
        """Record a condition that is false regardless of any binding."""
        self._always_false.append(Contradiction(None, message, hint))

    # -- analysis -------------------------------------------------------------

    def contradictions(self) -> list[Contradiction]:
        """Every provably-empty combination accumulated so far."""
        found = list(self._always_false)
        for key, slot in self._constraints.items():
            found.extend(self._check_slot(key, slot))
        return found

    def _check_slot(self, key: ViewKey, slot: _Constraints) -> list[Contradiction]:
        found: list[Contradiction] = []
        where = _describe(key)

        distinct_exact = sorted(set(slot.exact))
        if len(distinct_exact) > 1:
            found.append(Contradiction(
                key,
                f"{where} is required to equal {distinct_exact[0]!r} and "
                f"{distinct_exact[1]!r} at once",
                hint="remove one of the literal constraints",
            ))
        fixed: Optional[str] = distinct_exact[0] if distinct_exact else None

        # atom equalities against each other and against the exact literal
        for i, left in enumerate(slot.equals):
            if fixed is not None and not equal_atoms(fixed, left):
                found.append(Contradiction(
                    key,
                    f"{where} is fixed to {fixed!r} but also compared "
                    f"= {left!r}",
                    hint="the two equality constraints cannot both hold",
                ))
            for right in slot.equals[i + 1:]:
                if not equal_atoms(left, right):
                    found.append(Contradiction(
                        key,
                        f"{where} is compared = {left!r} and = {right!r} "
                        "at once",
                        hint="a value cannot equal two different constants",
                    ))

        # disequalities against the pinned value
        pinned: Optional[Atomic] = fixed if fixed is not None else (
            slot.equals[0] if slot.equals else None
        )
        if pinned is not None:
            for value in slot.not_equals:
                if equal_atoms(pinned, value):
                    found.append(Contradiction(
                        key,
                        f"{where} is required = {pinned!r} and != {value!r}",
                    ))

        # ordering bounds: effective range plus pinned-value membership
        found.extend(self._check_bounds(key, slot, where, pinned))

        # regexes against the exact literal (the raw string is known)
        if fixed is not None:
            for pattern in slot.regexes:
                try:
                    matches = re.fullmatch(pattern, fixed) is not None
                except re.error:
                    continue  # malformed patterns are reported elsewhere
                if not matches:
                    found.append(Contradiction(
                        key,
                        f"{where} is fixed to {fixed!r}, which does not "
                        f"match the required pattern /{pattern}/",
                    ))
        return found

    def _check_bounds(
        self,
        key: ViewKey,
        slot: _Constraints,
        where: str,
        pinned: Optional[Atomic],
    ) -> list[Contradiction]:
        found: list[Contradiction] = []
        for low, low_strict in slot.lowers:
            for high, high_strict in slot.uppers:
                try:
                    order = compare(low, high)
                except TypeError:
                    # a single value cannot satisfy an ordering against a
                    # number and against a non-numeric string at once
                    found.append(Contradiction(
                        key,
                        f"{where} is ordered against {low!r} and {high!r}, "
                        "which have incomparable types",
                    ))
                    continue
                if order > 0 or (order == 0 and (low_strict or high_strict)):
                    low_op = ">" if low_strict else ">="
                    high_op = "<" if high_strict else "<="
                    found.append(Contradiction(
                        key,
                        f"{where} is required {low_op} {low!r} and "
                        f"{high_op} {high!r}: the range is empty",
                    ))
        if pinned is None:
            return found
        for bound, strict in slot.lowers:
            if not _satisfies_bound(pinned, bound, ">" if strict else ">="):
                found.append(Contradiction(
                    key,
                    f"{where} is required = {pinned!r} but also "
                    f"{'>' if strict else '>='} {bound!r}",
                ))
        for bound, strict in slot.uppers:
            if not _satisfies_bound(pinned, bound, "<" if strict else "<="):
                found.append(Contradiction(
                    key,
                    f"{where} is required = {pinned!r} but also "
                    f"{'<' if strict else '<='} {bound!r}",
                ))
        return found


def _satisfies_bound(value: Atomic, bound: Atomic, op: str) -> bool:
    try:
        delta = compare(value, bound)
    except TypeError:
        return False  # mixed types: the runtime comparison is always false
    if op == ">":
        return delta > 0
    if op == ">=":
        return delta >= 0
    if op == "<":
        return delta < 0
    return delta <= 0


# ---------------------------------------------------------------------------
# Condition extraction
# ---------------------------------------------------------------------------

def conjuncts(condition: Condition) -> list[Condition]:
    """Flatten nested ``And`` into the list of top-level conjuncts."""
    if isinstance(condition, And):
        flat: list[Condition] = []
        for sub in condition.conditions:
            flat.extend(conjuncts(sub))
        return flat
    if isinstance(condition, _True):
        return []
    return [condition]


def _view_of(operand: Operand) -> Optional[ViewKey]:
    if isinstance(operand, ContentOf):
        return ("content", operand.variable)
    if isinstance(operand, AttributeOf):
        return ("attr", operand.variable, operand.name)
    if isinstance(operand, NameOf):
        return ("name", operand.variable)
    return None


_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def extract_conjuncts(
    conditions: list[Condition],
    store: ConstraintStore,
    known_variable: Callable[[str], bool],
) -> None:
    """Feed the analysable top-level conjuncts of ``conditions`` into ``store``.

    Interprets comparisons and regexes with one variable-view side and one
    constant side, and constant-only conditions (evaluated outright).
    Conjuncts mentioning unknown variables are skipped here — the language
    passes report those separately (an unknown variable is its own
    diagnostic, not a satisfiability fact).  ``or``/``not`` sub-trees are
    skipped: they cannot make the conjunction unsatisfiable on their own
    without case analysis this pass intentionally avoids.
    """
    for condition in [c for top in conditions for c in conjuncts(top)]:
        if isinstance(condition, (Or, Not)):
            continue
        if isinstance(condition, Comparison):
            _extract_comparison(condition, store, known_variable)
        elif isinstance(condition, Regex):
            view = _view_of(condition.operand)
            if view is not None and known_variable(str(view[1])):
                store.require_regex(view, condition.pattern)
            elif isinstance(condition.operand, Const):
                try:
                    ok = re.fullmatch(
                        condition.pattern, str(condition.operand.value)
                    ) is not None
                except re.error:
                    continue
                if not ok:
                    store.constant_false(
                        f"condition {condition} can never hold"
                    )


def _extract_comparison(
    condition: Comparison,
    store: ConstraintStore,
    known_variable: Callable[[str], bool],
) -> None:
    left, right, op = condition.left, condition.right, condition.op
    if isinstance(left, Const) and isinstance(right, Const):
        if not condition.evaluate(None, None):  # type: ignore[arg-type]
            store.constant_false(
                f"condition {condition} is false for every binding",
                hint="remove or correct the constant comparison",
            )
        return
    view, const = _view_of(left), right
    if view is None or not isinstance(const, Const):
        view, const = _view_of(right), left
        if view is None or not isinstance(const, Const):
            return
        op = _FLIP.get(op, op)  # = and != are symmetric
    if not known_variable(str(view[1])):
        return
    value = const.value
    if op == "=":
        store.require_equal(view, value)
    elif op == "!=":
        store.require_not_equal(view, value)
    else:
        store.require_bound(view, op, value)
