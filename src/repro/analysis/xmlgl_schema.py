"""Schema conformance of XML-GL queries as an analysis pass.

The checks — query parts no schema-valid document can satisfy — report
:class:`Diagnostic` objects with stable ``XGS`` codes and node/edge
anchors.  :func:`schema_diagnostics` is the one entry point (the old
string-returning ``repro.xmlgl.check_query_against_schema`` wrapper was
removed after a deprecation cycle).

All findings are warnings: XML-GL is schema-*optional*, so a query that
disagrees with a supplied schema still evaluates (against documents that
need not conform).  The codes:

* **XGS001** — a box's tag is not declared in the schema;
* **XGS002** — a box anchored at the root names a non-root tag;
* **XGS003** — an attribute circle names an undeclared attribute;
* **XGS004** — an attribute value outside the declared enumeration;
* **XGS005** — an attribute value differing from the declared fixed value;
* **XGS006** — a text circle under an element with no declared PCDATA;
* **XGS007** — an arc to a tag that is not a declared child of the parent;
* **XGS008** — a starred arc with no schema containment path at any depth.

Findings are de-duplicated: two starred arcs between the same tags yield
the finding once (the drawing repeats, the fact does not).
"""

from __future__ import annotations

from collections import deque

from ..xmlgl.ast import (
    AttributePattern,
    ContainmentEdge,
    ElementPattern,
    QueryGraph,
    TextPattern,
)
from ..xmlgl.rule import Rule
from ..xmlgl.schema import SchemaAttribute, SchemaElement, SchemaGraph
from .diagnostics import Diagnostic, Severity, dedupe
from .passes import AnalysisContext, register

__all__ = ["schema_pass", "schema_diagnostics"]


def _warn(code: str, message: str, **kw) -> Diagnostic:
    return Diagnostic(code, Severity.WARNING, message, **kw)


@register("xmlgl.schema", "xmlgl", "schema")
def schema_pass(rule: Rule, context: AnalysisContext) -> list[Diagnostic]:
    """XGS001-XGS008 for every extract graph, against ``context.xml_schema``."""
    schema = context.xml_schema
    if schema is None:
        return []
    findings: list[Diagnostic] = []
    for graph in rule.queries:
        findings.extend(schema_diagnostics(graph, schema))
    return [d.anchored(rule.name) for d in findings]


def schema_diagnostics(
    graph: QueryGraph, schema: SchemaGraph
) -> list[Diagnostic]:
    """Diagnostics for query parts no schema-valid document can satisfy."""
    schema.check()
    findings: list[Diagnostic] = []
    declared = {
        node.tag
        for node in schema.nodes.values()
        if isinstance(node, SchemaElement)
    }

    for node in graph.nodes.values():
        if isinstance(node, ElementPattern):
            if node.tag is not None and node.tag not in declared:
                findings.append(_warn(
                    "XGS001",
                    f"box {node.id!r}: element <{node.tag}> is not declared "
                    "in the schema",
                    node=node.id,
                    hint="check the tag against the schema's element names",
                ))
            if node.anchored and node.tag is not None and node.tag != schema.root:
                findings.append(_warn(
                    "XGS002",
                    f"box {node.id!r}: anchored to <{node.tag}> but the "
                    f"schema root is <{schema.root}>",
                    node=node.id,
                ))

    for edge in graph.all_edges():
        parent = graph.nodes[edge.parent]
        child = graph.nodes[edge.child]
        if not isinstance(parent, ElementPattern) or parent.tag is None:
            continue
        if parent.tag not in declared:
            continue  # XGS001 already reported the parent
        if isinstance(child, AttributePattern):
            findings.extend(_attribute_findings(parent.tag, child, schema))
        elif isinstance(child, TextPattern):
            if not schema.allows_text(parent.tag):
                findings.append(_warn(
                    "XGS006",
                    f"text circle {child.id!r}: <{parent.tag}> has no PCDATA "
                    "in the schema",
                    node=child.id,
                ))
        elif isinstance(child, ElementPattern) and child.tag is not None:
            if child.tag not in declared:
                continue
            findings.extend(_containment_findings(parent, child, edge, schema))
    return dedupe(findings)


def _containment_findings(
    parent: ElementPattern,
    child: ElementPattern,
    edge: ContainmentEdge,
    schema: SchemaGraph,
) -> list[Diagnostic]:
    if edge.deep:
        if not _schema_reachable(schema, parent.tag, child.tag):
            return [_warn(
                "XGS008",
                f"no containment path from <{parent.tag}> to "
                f"<{child.tag}> in the schema at any depth",
                edge=(edge.parent, edge.child),
            )]
        return []
    allowed = {
        schema.nodes[e.child_id].tag  # type: ignore[union-attr]
        for e in schema.element_edges(parent.tag)
    }
    if child.tag not in allowed:
        return [_warn(
            "XGS007",
            f"<{child.tag}> is not a declared child of <{parent.tag}>",
            edge=(edge.parent, edge.child),
            hint="use a starred arc for deeper containment, or fix the tag",
        )]
    return []


def _attribute_findings(
    parent_tag: str,
    pattern: AttributePattern,
    schema: SchemaGraph,
) -> list[Diagnostic]:
    declared: dict[str, SchemaAttribute] = {
        a.name: a for a in schema.attribute_nodes(parent_tag)
    }
    attribute = declared.get(pattern.name)
    if attribute is None:
        return [_warn(
            "XGS003",
            f"attribute circle {pattern.id!r}: <{parent_tag}> has no "
            f"attribute {pattern.name!r} in the schema",
            node=pattern.id,
        )]
    findings: list[Diagnostic] = []
    if pattern.value is not None:
        if attribute.values and pattern.value not in attribute.values:
            findings.append(_warn(
                "XGS004",
                f"attribute circle {pattern.id!r}: value {pattern.value!r} "
                f"is outside the declared enumeration {attribute.values}",
                node=pattern.id,
            ))
        if attribute.fixed is not None and pattern.value != attribute.fixed:
            findings.append(_warn(
                "XGS005",
                f"attribute circle {pattern.id!r}: value {pattern.value!r} "
                f"differs from the fixed value {attribute.fixed!r}",
                node=pattern.id,
            ))
    return findings


def _schema_reachable(schema: SchemaGraph, source: str, target: str) -> bool:
    """Is there a (non-empty) containment path source → target?"""
    seen: set[str] = set()
    queue: deque[str] = deque([source])
    while queue:
        tag = queue.popleft()
        for edge in schema.element_edges(tag):
            child = schema.nodes[edge.child_id]
            assert isinstance(child, SchemaElement)
            if child.tag == target:
                return True
            if child.tag not in seen:
                seen.add(child.tag)
                queue.append(child.tag)
    return False
