"""Static analysis of WG-Log rule programs.

WG-Log inherits stratified Datalog's editor-time guarantees, and these
passes make them checkable before evaluation:

* ``wglog.safety`` — structure and range-restriction (WGL001-WGL008):
  every node referenced by the green (derive) part or by a predicate must
  be *range-restricted* — labelled, or reached by a positive red edge —
  otherwise the rule derives for every entity in the database; crossed
  edges need a positively bound endpoint; green nodes need labels to be
  instantiable; collectors must aggregate something red.
* ``wglog.stratification`` — WGL003: negation must be stratifiable across
  the *program*.  A label derived (directly or transitively) by rules
  that also negate it has no stratified reading, and the round-robin
  fixpoint of :func:`~repro.wglog.semantics.apply_program` can oscillate
  or diverge on it.
* ``wglog.satisfiability`` — WGL012: contradictory predicate sets prove
  the red part matches nothing (used by the evaluator pre-flight).
* ``wglog.schema`` — WGL010/WGL011: undeclared entity types or relations
  against a supplied :class:`~repro.wglog.schema.WGSchema` (the checks of
  :func:`~repro.wglog.matcher.check_against_schema`, as diagnostics).

The analysis target of every WG-Log pass is a *program* — a list of
:class:`~repro.wglog.ast.RuleGraph` — because stratification is a
whole-program property; single rules are analysed as one-rule programs.
"""

from __future__ import annotations

from typing import Optional

from ..engine.conditions import (
    Comparison,
    ContentOf,
    Regex,
    condition_variables,
)
from ..errors import QueryStructureError
from ..wglog.ast import Color, RuleGraph
from ..wglog.matcher import _positively_anchored, _split_negation
from ..wglog.schema import WGSchema
from .diagnostics import Diagnostic, Severity
from .passes import AnalysisContext, register
from .satisfiability import (
    ConstraintStore,
    Contradiction,
    conjuncts,
    extract_conjuncts,
)

__all__ = ["safety_pass", "stratification_pass", "satisfiability_pass", "schema_pass"]

#: A predicate in the Datalog reading: ("node", label) or ("edge", label).
Predicate = tuple[str, str]


def _error(code: str, message: str, **kw) -> Diagnostic:
    return Diagnostic(code, Severity.ERROR, message, **kw)


# ---------------------------------------------------------------------------
# Safety / range restriction
# ---------------------------------------------------------------------------

@register("wglog.safety", "wglog", "safety")
def safety_pass(
    rules: list[RuleGraph], context: AnalysisContext
) -> list[Diagnostic]:
    """WGL001, WGL002, WGL004-WGL008 for every rule of the program."""
    findings: list[Diagnostic] = []
    for rule in rules:
        findings.extend(_rule_safety(rule))
    return findings


def _rule_safety(rule: RuleGraph) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    name = rule.name

    if not rule.red_nodes():
        findings.append(_error(
            "WGL005", "rule has no red (query) part", rule=name,
            hint="every rule needs at least one thin (red) node to match",
        ))

    positive_edge_ends: set[str] = set()
    for edge in rule.red_edges():
        if not edge.crossed:
            positive_edge_ends.add(edge.source)
            positive_edge_ends.add(edge.target)

    referenced: dict[str, str] = {}  # red node id -> how it is referenced
    for edge in rule.green_edges():
        for endpoint in (edge.source, edge.target):
            node = rule.nodes.get(endpoint)
            if node is not None and node.color is Color.RED:
                referenced.setdefault(endpoint, f"green edge {edge.describe()}")
    for assertion in rule.slot_assertions:
        node = rule.nodes.get(assertion.node)
        if node is not None and node.color is Color.RED:
            referenced.setdefault(
                assertion.node, f"slot assertion on {assertion.node!r}"
            )
        if assertion.from_node is not None:
            referenced.setdefault(
                assertion.from_node, f"slot copy from {assertion.from_node!r}"
            )
    for condition in rule.conditions:
        for variable in condition_variables(condition):
            if variable in rule.nodes:
                referenced.setdefault(variable, f"condition {condition}")

    for node_id, where in sorted(referenced.items()):
        node = rule.nodes.get(node_id)
        if node is None or node.color is not Color.RED:
            continue
        if node.label is None and node_id not in positive_edge_ends:
            findings.append(_error(
                "WGL001",
                f"{where} references {node_id!r}, which is unrestricted: "
                "it has no label and no positive red edge, so it ranges "
                "over every entity in the database",
                node=node_id,
                rule=name,
                hint="label the node or connect it with a positive edge",
            ))

    try:
        anchored = _positively_anchored(rule)
    except QueryStructureError:
        anchored = set(rule.nodes)
    for edge in rule.red_edges():
        if not edge.crossed:
            continue
        if edge.source not in anchored and edge.target not in anchored:
            findings.append(_error(
                "WGL002",
                f"crossed edge {edge.describe()} has no positively bound "
                "endpoint",
                edge=(edge.source, edge.target),
                rule=name,
                hint="anchor one side in the positive pattern",
            ))

    for node in rule.green_nodes():
        if node.label is None:
            findings.append(_error(
                "WGL004",
                f"green node {node.id!r} has no label: derived entities "
                "need a declared type to be created",
                node=node.id,
                rule=name,
            ))
        if node.collector:
            outgoing = [e for e in rule.green_edges() if e.source == node.id]
            if not outgoing:
                findings.append(_error(
                    "WGL006",
                    f"collector {node.id!r} aggregates nothing",
                    node=node.id,
                    rule=name,
                    hint="point the triangle at the red nodes to collect",
                ))
            for edge in outgoing:
                target = rule.nodes.get(edge.target)
                if target is not None and target.color is not Color.RED:
                    findings.append(_error(
                        "WGL006",
                        f"collector {node.id!r} points at green node "
                        f"{edge.target!r}; it must collect red (matched) nodes",
                        edge=(edge.source, edge.target),
                        rule=name,
                    ))
    for assertion in rule.slot_assertions:
        if assertion.from_node is not None:
            source = rule.nodes.get(assertion.from_node)
            if source is not None and source.color is not Color.RED:
                findings.append(_error(
                    "WGL007",
                    f"slot {assertion.name!r} of {assertion.node!r} copies "
                    f"from green node {assertion.from_node!r}: values can "
                    "only be copied from matched (red) nodes",
                    node=assertion.node,
                    rule=name,
                ))

    for top in rule.conditions:
        for condition in conjuncts(top):
            for variable in sorted(condition_variables(condition)):
                if variable not in rule.nodes:
                    findings.append(_error(
                        "WGL008",
                        f"condition {condition} references {variable!r}, "
                        "which is not a node of the rule",
                        node=variable,
                        rule=name,
                        hint="check the node id for typos",
                        unsatisfiable=isinstance(condition, (Comparison, Regex)),
                    ))
    return findings


# ---------------------------------------------------------------------------
# Stratification
# ---------------------------------------------------------------------------

def _rule_predicates(
    rule: RuleGraph,
) -> tuple[set[Predicate], set[Predicate], set[Predicate]]:
    """``(derived, positive, negative)`` predicates of one rule."""
    derived: set[Predicate] = set()
    for node in rule.green_nodes():
        if node.label is not None:
            derived.add(("node", node.label))
    for edge in rule.green_edges():
        derived.add(("edge", edge.label))

    positive: set[Predicate] = set()
    negative: set[Predicate] = set()
    fragment_nodes: set[str] = set()
    try:
        _, fragments = _split_negation(rule)
        for _, fragment in fragments:
            fragment_nodes |= fragment
    except QueryStructureError:
        pass  # reported as WGL002/WGL005; fall back to edge-level negation
    for node in rule.red_nodes():
        if node.label is None:
            continue
        bucket = negative if node.id in fragment_nodes else positive
        bucket.add(("node", node.label))
    for edge in rule.red_edges():
        if edge.crossed:
            negative.add(("edge", edge.label))
        elif edge.source in fragment_nodes or edge.target in fragment_nodes:
            negative.add(("edge", edge.label))
        else:
            positive.add(("edge", edge.label))
    return derived, positive, negative


@register("wglog.stratification", "wglog", "safety")
def stratification_pass(
    rules: list[RuleGraph], context: AnalysisContext
) -> list[Diagnostic]:
    """WGL003: negation cycles in the program's predicate dependency graph.

    Predicates are node labels and edge labels; rule ``R`` contributes a
    dependency ``b -> h`` for every body predicate ``b`` and every head
    (derived) predicate ``h``, negative when ``b`` occurs behind a crossed
    edge.  A strongly connected component containing a negative dependency
    admits no stratification — the declarative and fixpoint readings can
    disagree on it.
    """
    edges: list[tuple[Predicate, Predicate, bool, Optional[str]]] = []
    for rule in rules:
        derived, positive, negative = _rule_predicates(rule)
        for head in derived:
            for body in positive:
                edges.append((body, head, False, rule.name))
            for body in negative:
                edges.append((body, head, True, rule.name))
    component = _strongly_connected(edges)
    findings: list[Diagnostic] = []
    seen: set[tuple] = set()
    for body, head, is_negative, rule_name in edges:
        if not is_negative:
            continue
        if component.get(body) != component.get(head):
            continue
        key = (body, head, rule_name)
        if key in seen:
            continue
        seen.add(key)
        findings.append(_error(
            "WGL003",
            f"negation is not stratified: {_pred(head)} is derived from "
            f"the negation of {_pred(body)}, which itself depends on "
            f"{_pred(head)}",
            rule=rule_name,
            hint="split the program so negated labels are fully derived "
            "by earlier strata",
        ))
    return findings


def _pred(predicate: Predicate) -> str:
    kind, label = predicate
    shown = label or "''"
    return f"{kind} label {shown}"


def _strongly_connected(
    edges: list[tuple[Predicate, Predicate, bool, Optional[str]]]
) -> dict[Predicate, int]:
    """Iterative Tarjan: predicate -> SCC id."""
    graph: dict[Predicate, list[Predicate]] = {}
    for source, target, _, _ in edges:
        graph.setdefault(source, []).append(target)
        graph.setdefault(target, [])
    index: dict[Predicate, int] = {}
    lowlink: dict[Predicate, int] = {}
    on_stack: set[Predicate] = set()
    stack: list[Predicate] = []
    component: dict[Predicate, int] = {}
    counter = 0
    components = 0

    for root in graph:
        if root in index:
            continue
        work: list[tuple[Predicate, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            successors = graph[node]
            while child_index < len(successors):
                successor = successors[child_index]
                child_index += 1
                if successor not in index:
                    work[-1] = (node, child_index)
                    work.append((successor, 0))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index[successor])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == index[node]:
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component[member] = components
                    if member == node:
                        break
                components += 1
            if work:
                parent, _ = work[-1]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            else:
                continue
    return component


# ---------------------------------------------------------------------------
# Satisfiability
# ---------------------------------------------------------------------------

@register("wglog.satisfiability", "wglog", "sat")
def satisfiability_pass(
    rules: list[RuleGraph], context: AnalysisContext
) -> list[Diagnostic]:
    """WGL012: red parts that provably embed nowhere."""
    findings: list[Diagnostic] = []
    for rule in rules:
        for contradiction in rule_contradictions(rule):
            findings.append(Diagnostic(
                "WGL012",
                Severity.ERROR,
                contradiction.message,
                node=contradiction.variable,
                rule=rule.name,
                hint=contradiction.hint,
                unsatisfiable=True,
            ))
    return findings


def rule_contradictions(rule: RuleGraph) -> list[Contradiction]:
    """The contradiction records of one rule (shared with the pre-flight)."""
    store = ConstraintStore()
    for node in rule.nodes.values():
        if node.color is Color.RED and node.label is not None:
            store.require_exact(("name", node.id), node.label)
    extract_conjuncts(rule.conditions, store, lambda v: v in rule.nodes)
    # The content view of an *entity* node is None at evaluation time
    # (only slot nodes carry a value), so a positive content comparison on
    # a labelled node is constantly false.
    for top in rule.conditions:
        for condition in conjuncts(top):
            if not isinstance(condition, (Comparison, Regex)):
                continue
            for operand in _content_operands(condition):
                node = rule.nodes.get(operand.variable)
                if node is not None and node.label is not None:
                    store.constant_false(
                        f"condition {condition} reads the content of "
                        f"{operand.variable!r}, a {node.label!r} entity; "
                        "entities have no content (only slots do)",
                        hint=f"compare a slot instead, e.g. "
                        f"{operand.variable}.<slot>",
                    )
    return store.contradictions()


def _content_operands(condition: Comparison | Regex) -> list[ContentOf]:
    operands = []
    if isinstance(condition, Comparison):
        candidates = [condition.left, condition.right]
    else:
        candidates = [condition.operand]
    for candidate in candidates:
        if isinstance(candidate, ContentOf):
            operands.append(candidate)
    return operands


# ---------------------------------------------------------------------------
# Schema conformance
# ---------------------------------------------------------------------------

@register("wglog.schema", "wglog", "schema")
def schema_pass(
    rules: list[RuleGraph], context: AnalysisContext
) -> list[Diagnostic]:
    """WGL010/WGL011: the checks of ``check_against_schema``, as diagnostics."""
    schema = context.wg_schema
    if schema is None:
        return []
    findings: list[Diagnostic] = []
    for rule in rules:
        findings.extend(_schema_findings(rule, schema))
    return findings


def _schema_findings(rule: RuleGraph, schema: WGSchema) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    for node in rule.nodes.values():
        if node.label is not None and not schema.has_entity(node.label):
            findings.append(_error(
                "WGL010",
                f"node {node.id!r} uses undeclared entity type "
                f"{node.label!r}",
                node=node.id,
                rule=rule.name,
                hint="declare the entity in the schema block, or fix the label",
            ))
    for edge in rule.edges:
        if edge.path:
            continue
        source = rule.nodes[edge.source].label
        target = rule.nodes[edge.target].label
        if source is None or target is None:
            continue
        if not schema.has_entity(source) or not schema.has_entity(target):
            continue  # WGL010 already covers the endpoints
        if not schema.allows_relation(source, edge.label, target):
            findings.append(_error(
                "WGL011",
                f"edge {source} -{edge.label}-> {target} is not a declared "
                "relation",
                edge=(edge.source, edge.target),
                rule=rule.name,
            ))
    return findings
