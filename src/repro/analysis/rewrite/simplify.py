"""Condition simplification: constant folding and range/equality reasoning.

Works on the conjunction formed by a rule's condition list.  Three rewrite
rules, each *row-wise sound* — for every single binding row, the rewritten
conjunction evaluates exactly like the original:

* **constant folding** — a conjunct with no variables is evaluated
  outright; ``True`` conjuncts are removed (tautology), a ``False``
  conjunct proves the whole query empty (``static_false``; the conjunct is
  kept so the rewritten text stays semantically identical).
* **duplicate elimination** — structurally equal conjuncts collapse to
  one (conditions are frozen dataclasses, so ``==`` is structural).
* **implication pruning** — among comparisons of one value view against a
  constant (the same fragment :class:`~repro.analysis.satisfiability.\
ConstraintStore` interprets), a conjunct implied by a stronger sibling is
  dropped: ``X > 7`` makes ``X > 5`` redundant, ``X = 7`` makes
  ``X >= 7`` and ``X != 9`` redundant.

Why implication pruning is row-wise sound under the engine's loose
typing: a comparison with a missing value or a type-mismatched pair
evaluates to *false*.  We only drop the weak conjunct when
:func:`~repro.ssd.datatypes.compare` succeeds on the two constants, which
forces them into the same comparability class (both numeric, or both
non-numeric strings).  Any row value satisfying the strong conjunct is
then in that same class, so the weak comparison cannot fail on typing and
is entailed by transitivity.  Rows *failing* the strong conjunct are
filtered either way, so the conjunction is unchanged.
"""

from __future__ import annotations

from typing import Callable, Optional

from ...engine.conditions import (
    Comparison,
    Condition,
    Const,
)
from ...ssd.datatypes import Atomic, compare, equal_atoms
from ..satisfiability import _FLIP, _view_of, conjuncts
from .report import RewriteReport

__all__ = ["simplify_conditions"]

_LOWER_OPS = {">", ">="}
_UPPER_OPS = {"<", "<="}


def _constant_value(condition: Condition) -> Optional[bool]:
    """Evaluate a variable-free conjunct, or ``None`` if it has variables.

    Constant conditions never touch the binding/accessor, so evaluating
    with ``None`` for both is safe; anything unexpected bails out.
    """
    from ...engine.conditions import condition_variables

    try:
        if condition_variables(condition):
            return None
        return bool(condition.evaluate(None, None))  # type: ignore[arg-type]
    except Exception:
        return None


def _view_comparison(
    condition: Condition,
) -> Optional[tuple[tuple[object, ...], str, Atomic]]:
    """Decompose ``view op const`` (either side), or ``None``."""
    if not isinstance(condition, Comparison):
        return None
    left, right, op = condition.left, condition.right, condition.op
    view = _view_of(left)
    if view is not None and isinstance(right, Const):
        return (tuple(view), op, right.value)
    view = _view_of(right)
    if view is not None and isinstance(left, Const):
        return (tuple(view), _FLIP.get(op, op), left.value)
    return None


def _implies(
    strong_op: str, strong: Atomic, weak_op: str, weak: Atomic
) -> bool:
    """Does ``view strong_op strong`` entail ``view weak_op weak``?

    Only comparisons whose constants :func:`compare` (same comparability
    class) are considered — see the module docstring for why that makes
    the entailment row-wise exact.
    """
    if strong_op == "=":
        if weak_op == "=":
            return equal_atoms(strong, weak)
        if weak_op == "!=":
            return not equal_atoms(strong, weak)
        try:
            delta = compare(strong, weak)
        except TypeError:
            return False
        if weak_op == "<":
            return delta < 0
        if weak_op == "<=":
            return delta <= 0
        if weak_op == ">":
            return delta > 0
        return delta >= 0
    if strong_op in _LOWER_OPS and weak_op in _LOWER_OPS:
        try:
            delta = compare(strong, weak)
        except TypeError:
            return False
        # at equal bounds ``>=`` does not entail the strict ``>``
        return delta > 0 or (delta == 0 and not (weak_op == ">" and strong_op == ">="))
    if strong_op in _UPPER_OPS and weak_op in _UPPER_OPS:
        try:
            delta = compare(strong, weak)
        except TypeError:
            return False
        return delta < 0 or (delta == 0 and not (weak_op == "<" and strong_op == "<="))
    return False


def simplify_conditions(
    conditions: list[Condition],
    *,
    report: RewriteReport,
    prefix: str,
    known_variable: Callable[[str], bool],
) -> tuple[list[Condition], bool]:
    """Simplify a conjunction; returns ``(new_conditions, changed)``.

    ``prefix`` is the language code family (``"XGL"`` / ``"WGL"``);
    diagnostics use ``<prefix>102`` (tautology), ``<prefix>103``
    (implied) and ``<prefix>105`` (always false).
    """
    from ..diagnostics import Severity

    flat: list[Condition] = []
    for top in conditions:
        flat.extend(conjuncts(top))
    # `conjuncts` silently drops bare TRUE and flattens nested And; both
    # are order-preserving normalisations, not semantic changes, so they
    # count as "changed" only through the length comparison at the end.

    keep: list[Condition] = []
    views: list[Optional[tuple[tuple[object, ...], str, Atomic]]] = []
    for condition in flat:
        constant = _constant_value(condition)
        if constant is True:
            report.record(
                "dropped",
                f"{prefix}102",
                f"condition `{condition}` is tautological; removed",
                hint="a constant-true predicate filters nothing",
            )
            continue
        if constant is False:
            report.record(
                "failed",
                f"{prefix}105",
                f"condition `{condition}` is always false: "
                "the query cannot match any document",
                severity=Severity.WARNING,
                unsatisfiable=True,
            )
            keep.append(condition)
            views.append(None)
            continue
        if any(condition == kept for kept in keep):
            report.record(
                "dropped",
                f"{prefix}103",
                f"duplicate condition `{condition}` removed",
            )
            continue
        decomposed = _view_comparison(condition)
        if decomposed is not None and not known_variable(str(decomposed[0][1])):
            decomposed = None  # unknown variables are lint's business
        keep.append(condition)
        views.append(decomposed)

    # implication pruning among same-view comparisons
    survivors: list[Condition] = []
    for i, condition in enumerate(keep):
        weak = views[i]
        implied_by: Optional[Condition] = None
        if weak is not None:
            for j, other in enumerate(keep):
                strong = views[j]
                if i == j or strong is None or strong[0] != weak[0]:
                    continue
                # when two conjuncts imply each other (e.g. `= 7` and
                # `= "007"`), keep the earlier one only
                if _implies(strong[1], strong[2], weak[1], weak[2]) and not (
                    j > i and _implies(weak[1], weak[2], strong[1], strong[2])
                ):
                    implied_by = other
                    break
        if implied_by is not None:
            report.record(
                "dropped",
                f"{prefix}103",
                f"condition `{condition}` is implied by the stronger "
                f"`{implied_by}`; removed",
            )
            continue
        survivors.append(condition)

    changed = len(survivors) != len(conditions) or any(
        s is not o for s, o in zip(survivors, conditions)
    )
    return survivors, changed
