"""Canonical text forms: one stable rendering per query meaning.

The plan cache keys compiled plans by a digest of the *canonical* text of
the rewritten rule, so two drawings that differ only in drawing order or
in variable names compile once and share one cache entry.

Soundness is the only hard requirement — **equal canonical text must
imply equal query semantics** — and it holds by construction: the text
renders every semantic feature (patterns, arc flags, relative order of
ordered arcs, or-groups, conditions, sources, the whole construct part)
under a variable renaming that is itself derived from the rendered
structure.  Completeness is best-effort: sibling branches are ordered by
an id-free structural signature, with original ids only breaking exact
signature ties, so isomorphic drawings normally converge but pathological
tie cases may not (they then simply compile twice, which is correct).
"""

from __future__ import annotations

from typing import Optional, Union

from ...engine.conditions import (
    And,
    Arith,
    AttributeOf,
    Comparison,
    Condition,
    Const,
    ContentOf,
    NameOf,
    Not,
    Operand,
    Or,
    Regex,
    _True,
)
from ...xmlgl.ast import (
    AttributePattern,
    ContainmentEdge,
    ElementPattern,
    OrGroup,
    QueryGraph,
    TextPattern,
)
from ...xmlgl.construct import (
    Aggregate,
    Collect,
    ConstructNode,
    Copy,
    GroupBy,
    NewElement,
    TextFrom,
    TextLiteral,
)
from ...xmlgl.rule import Rule

__all__ = ["canonical_rule_text", "canonical_graph_text"]

#: Bump when the rendering changes; keeps old digests from aliasing new ones.
_VERSION = "xglc1"


def _node_sig(node: Union[ElementPattern, TextPattern, AttributePattern]) -> str:
    if isinstance(node, ElementPattern):
        tag = node.tag if node.tag is not None else "*"
        return f"e[{tag}]{'@root' if node.anchored else ''}"
    if isinstance(node, AttributePattern):
        return f"a[{node.name}][{node.value!r}][{node.regex!r}]"
    return f"t[{node.value!r}][{node.regex!r}]"


def _edge_flags(edge: ContainmentEdge) -> str:
    return ("*" if edge.deep else "") + ("!" if edge.negated else "")


class _GraphCanon:
    """Canonical ids + rendering for one extract graph."""

    def __init__(self, graph: QueryGraph) -> None:
        self.graph = graph
        self._sigs: dict[str, str] = {}
        self.mapping: dict[str, str] = {}
        self._assign_ids()

    # -- id-free structural signatures (ordering key) -----------------------

    def _signature(self, node_id: str) -> str:
        cached = self._sigs.get(node_id)
        if cached is not None:
            return cached
        self._sigs[node_id] = "..."  # acyclic by validation; guard anyway
        ordered, unordered = self._split_children(node_id)
        parts = [
            f"'{_edge_flags(e)}{self._signature(e.child)}" for e in ordered
        ]
        parts += sorted(
            f"{_edge_flags(e)}{self._signature(e.child)}" for e in unordered
        )
        sig = _node_sig(self.graph.nodes[node_id]) + "(" + ",".join(parts) + ")"
        self._sigs[node_id] = sig
        return sig

    def _split_children(
        self, node_id: str
    ) -> tuple[list[ContainmentEdge], list[ContainmentEdge]]:
        edges = [e for e in self.graph.edges if e.parent == node_id]
        ordered = sorted(
            (e for e in edges if e.ordered), key=lambda e: e.position
        )
        unordered = [e for e in edges if not e.ordered]
        return ordered, unordered

    def _child_order(self, node_id: str) -> list[ContainmentEdge]:
        """Ordered arcs first (by position), then unordered by signature."""
        ordered, unordered = self._split_children(node_id)
        return ordered + sorted(
            unordered,
            key=lambda e: (_edge_flags(e), self._signature(e.child), e.child),
        )

    # -- canonical id assignment --------------------------------------------

    def _assign_ids(self) -> None:
        roots = sorted(
            self.graph.roots(), key=lambda r: (self._signature(r), r)
        )
        for root in roots:
            self._visit(root)
        for group in sorted(
            self.graph.or_groups, key=self._group_sort_key
        ):
            for branch in self._sorted_alternatives(group.alternatives):
                for edge in branch:
                    self._visit(edge.child)
        # orphaned ids cannot occur (validation), but stay total anyway
        for node_id in sorted(self.graph.nodes):
            if node_id not in self.mapping:
                self._visit(node_id)

    def _visit(self, node_id: str) -> None:
        if node_id in self.mapping:
            return
        self.mapping[node_id] = f"n{len(self.mapping)}"
        for edge in self._child_order(node_id):
            self._visit(edge.child)

    def _group_sort_key(self, group: OrGroup) -> str:
        return "|".join(
            ",".join(self._or_edge_sig(e) for e in branch)
            for branch in self._sorted_alternatives(group.alternatives)
        )

    def _sorted_alternatives(
        self, alternatives: tuple[tuple[ContainmentEdge, ...], ...]
    ) -> list[tuple[ContainmentEdge, ...]]:
        return sorted(
            (
                tuple(sorted(branch, key=self._or_edge_sig))
                for branch in alternatives
            ),
            key=lambda branch: [self._or_edge_sig(e) for e in branch],
        )

    def _or_edge_sig(self, edge: ContainmentEdge) -> str:
        return (
            f"{self._signature(edge.parent)}-{_edge_flags(edge)}-"
            f"{self._signature(edge.child)}"
        )

    # -- rendering ----------------------------------------------------------

    def render(self) -> str:
        emitted: set[str] = set()
        roots = sorted(
            self.graph.roots(), key=lambda r: (self._signature(r), r)
        )
        lines = [f"source={self.graph.source!r}"]
        for root in roots:
            lines.append("root " + self._render_node(root, emitted))
        for group in sorted(self.graph.or_groups, key=self._group_sort_key):
            branches = [
                "{"
                + " ".join(
                    self._render_or_edge(e, emitted) for e in branch
                )
                + "}"
                for branch in self._sorted_alternatives(group.alternatives)
            ]
            lines.append("or " + "|".join(branches))
        conditions = sorted(
            render_condition(c, self.mapping) for c in self.graph.conditions
        )
        lines.extend(f"where {c}" for c in conditions)
        return "\n".join(lines)

    def _render_node(self, node_id: str, emitted: set[str]) -> str:
        cid = self.mapping[node_id]
        if node_id in emitted:
            return f"&{cid}"  # shared (join) node: reference, not re-render
        emitted.add(node_id)
        ordered, _ = self._split_children(node_id)
        ordered_set = {id(e) for e in ordered}
        parts = []
        for edge in self._child_order(node_id):
            mark = "'" if id(edge) in ordered_set else ""
            parts.append(
                f"{mark}{_edge_flags(edge)}"
                + self._render_node(edge.child, emitted)
            )
        body = "{" + " ".join(parts) + "}" if parts else ""
        return f"{_node_sig(self.graph.nodes[node_id])}:{cid}{body}"

    def _render_or_edge(self, edge: ContainmentEdge, emitted: set[str]) -> str:
        return (
            f"{self.mapping[edge.parent]}-{_edge_flags(edge)}->"
            + self._render_node(edge.child, emitted)
        )


# ---------------------------------------------------------------------------
# Condition + construct rendering under a variable mapping
# ---------------------------------------------------------------------------

def _var(mapping: dict[str, str], variable: str) -> str:
    return mapping.get(variable, f"?{variable}")


def _render_operand(operand: Operand, mapping: dict[str, str]) -> str:
    if isinstance(operand, Const):
        return repr(operand.value)
    if isinstance(operand, ContentOf):
        return _var(mapping, operand.variable)
    if isinstance(operand, AttributeOf):
        return f"{_var(mapping, operand.variable)}.{operand.name}"
    if isinstance(operand, NameOf):
        return f"name({_var(mapping, operand.variable)})"
    assert isinstance(operand, Arith)
    return (
        f"({_render_operand(operand.left, mapping)} {operand.op} "
        f"{_render_operand(operand.right, mapping)})"
    )


def render_condition(condition: Condition, mapping: dict[str, str]) -> str:
    """``str(condition)`` with variables renamed through ``mapping``."""
    if isinstance(condition, Comparison):
        return (
            f"{_render_operand(condition.left, mapping)} {condition.op} "
            f"{_render_operand(condition.right, mapping)}"
        )
    if isinstance(condition, Regex):
        return (
            f"{_render_operand(condition.operand, mapping)} ~ "
            f"/{condition.pattern}/"
        )
    if isinstance(condition, And):
        return "(" + " and ".join(
            render_condition(c, mapping) for c in condition.conditions
        ) + ")"
    if isinstance(condition, Or):
        return "(" + " or ".join(
            render_condition(c, mapping) for c in condition.conditions
        ) + ")"
    if isinstance(condition, Not):
        return f"not {render_condition(condition.condition, mapping)}"
    assert isinstance(condition, _True)
    return "true"


def _render_construct(node: ConstructNode, mapping: dict[str, str]) -> str:
    if isinstance(node, NewElement):
        attrs = ",".join(
            f"{a.name}="
            + (
                f"@{_var(mapping, a.from_variable)}"
                if a.from_variable is not None
                else repr(a.value)
            )
            for a in node.attributes
        )
        children = ",".join(
            _render_construct(c, mapping) for c in node.children
        )
        for_each = ",".join(sorted(_var(mapping, v) for v in node.for_each))
        tag = (
            f"from:{_var(mapping, node.tag_from)}"
            if node.tag_from is not None
            else node.tag
        )
        sort = (
            _var(mapping, node.sort_by) if node.sort_by is not None else ""
        )
        return f"el({tag};for={for_each};sort={sort};[{attrs}];[{children}])"
    if isinstance(node, TextLiteral):
        return f"lit({node.text!r})"
    if isinstance(node, TextFrom):
        return f"text({_var(mapping, node.variable)})"
    if isinstance(node, Copy):
        return f"copy({_var(mapping, node.variable)};deep={node.deep})"
    if isinstance(node, Collect):
        return f"collect({_var(mapping, node.variable)};deep={node.deep})"
    if isinstance(node, GroupBy):
        group_on = ",".join(sorted(_var(mapping, v) for v in node.group_on))
        children = ",".join(
            _render_construct(c, mapping) for c in node.children
        )
        return f"group({group_on};[{children}])"
    assert isinstance(node, Aggregate)
    return f"agg({node.function};{_var(mapping, node.variable)})"


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------

def canonical_graph_text(graph: QueryGraph) -> str:
    """Canonical rendering of one extract graph (local variable names)."""
    return _GraphCanon(graph).render()


def canonical_rule_text(rule: Rule, *, name: Optional[str] = None) -> str:
    """The canonical text the plan cache digests.

    Graphs are rendered with per-graph canonical ids, sorted, and then
    given globally unique prefixes so cross-graph conditions and the
    construct part rename consistently.
    """
    canons = [_GraphCanon(g) for g in rule.queries]
    order = sorted(range(len(canons)), key=lambda i: canons[i].render())
    mapping: dict[str, str] = {}
    graph_texts = []
    for position, index in enumerate(order):
        canon = canons[index]
        for original, local in canon.mapping.items():
            mapping[original] = f"g{position}.{local}"
        graph_texts.append(f"graph g{position}\n{canon.render()}")
    conditions = sorted(
        render_condition(c, mapping) for c in rule.conditions
    )
    rule_name = name if name is not None else rule.name
    lines = [_VERSION, f"rule={rule_name!r}"]
    lines.extend(graph_texts)
    lines.extend(f"where {c}" for c in conditions)
    lines.append("construct " + _render_construct(rule.construct, mapping))
    return "\n".join(lines)
