"""Rewrite outcome: per-rule counters plus the diagnostics the rules emit.

Every rewrite rule that fires records (a) one bump of a stable counter —
the names below are part of the observability surface (EXPLAIN prints
``rewrites: merged=2 pruned=1``, EvalStats mirrors them as
``rewrite_<counter>`` extras) — and (b) one :class:`Diagnostic` in the
``XGL1xx`` / ``WGL1xx`` range so `repro rewrite` and lint-style tooling
can show *why* the query shrank.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..diagnostics import Diagnostic, Severity

__all__ = ["COUNTERS", "RewriteReport"]

#: Stable counter names, in display order.
COUNTERS = (
    "merged",     # duplicate arcs / duplicate branches merged
    "pruned",     # subsumed or schema-empty branches removed
    "dropped",    # tautological or implied conditions removed
    "folded",     # node-level constant folds (regex implied by literal)
    "tightened",  # schema-informed wildcard tightenings
    "failed",     # statically-false detections (query cannot match)
)


@dataclass
class RewriteReport:
    """What a rewrite pass did to one rule.

    ``static_false`` means the rewriter proved the query matches nothing
    (an always-false condition, or a branch the schema proves empty); the
    evaluator turns this into a preflight short-circuit.  The offending
    structure is deliberately *kept* in the rewritten rule so that its
    unparsed form stays semantically equal to the input.
    """

    counters: dict[str, int] = field(default_factory=dict)
    diagnostics: list[Diagnostic] = field(default_factory=list)
    static_false: bool = False

    @property
    def changed(self) -> bool:
        """Did any rewrite rule fire?"""
        return bool(self.counters) or self.static_false

    def bump(self, counter: str, amount: int = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + amount

    def record(
        self,
        counter: str,
        code: str,
        message: str,
        *,
        severity: Severity = Severity.INFO,
        node: Optional[str] = None,
        edge: Optional[tuple[str, str]] = None,
        hint: Optional[str] = None,
        unsatisfiable: bool = False,
    ) -> None:
        """Bump ``counter`` and attach the matching diagnostic."""
        self.bump(counter)
        self.diagnostics.append(Diagnostic(
            code,
            severity,
            message,
            node=node,
            edge=edge,
            hint=hint,
            unsatisfiable=unsatisfiable,
        ))
        if unsatisfiable:
            self.static_false = True

    def merge(self, other: "RewriteReport") -> None:
        for name, value in other.counters.items():
            self.bump(name, value)
        self.diagnostics.extend(other.diagnostics)
        self.static_false = self.static_false or other.static_false

    def describe(self) -> str:
        """The EXPLAIN rendering: ``merged=2 pruned=1`` (or ``none``)."""
        parts = [
            f"{name}={self.counters[name]}"
            for name in COUNTERS
            if self.counters.get(name)
        ]
        # counters outside the stable tuple would be a programming error,
        # but render them anyway rather than hiding work
        parts += [
            f"{name}={value}"
            for name, value in sorted(self.counters.items())
            if name not in COUNTERS and value
        ]
        return " ".join(parts) if parts else "none"

    def as_dict(self) -> dict[str, object]:
        return {
            "counters": dict(self.counters),
            "static_false": self.static_false,
            "findings": [d.as_dict() for d in self.diagnostics],
        }
