"""Static query rewriting: canonicalization, minimization, pruning.

A sound, fixed-point rewrite engine that runs between parse/lint and the
planner.  Four rule families (see DESIGN.md "Query rewriting" for the
full catalog and soundness argument):

1. **canonicalization** (:mod:`.canonical`) — a stable text form per
   query meaning; the plan cache digests it so semantically equal
   drawings share one compiled plan.
2. **containment & minimization** (:mod:`.minimize`) — homomorphism-based
   deletion of subsumed branches and merging of duplicate arcs, built on
   the :mod:`repro.xmlgl.containment` oracle (re-exported here as
   :func:`contains` for the public API).
3. **condition simplification** (:mod:`.simplify`) — constant folding
   plus range/equality implication pruning; always-false conditions feed
   the evaluator's preflight short-circuit.
4. **schema-informed pruning** (:mod:`.schema_prune`) — wildcard
   tightening and empty-branch removal when a schema is registered.

Every rewrite emits an ``XGL1xx``/``WGL1xx`` diagnostic and bumps a
stable counter (:data:`~repro.analysis.rewrite.report.COUNTERS`); the
evaluator surfaces them as a ``rewrite`` trace span, ``rewrite_*``
EvalStats extras and an EXPLAIN ``rewrites:`` line.
"""

from __future__ import annotations

import re
from typing import Optional

from ...errors import QueryStructureError
from ...xmlgl.ast import (
    AttributePattern,
    QueryGraph,
    TextPattern,
)
from ...xmlgl.construct import (
    Aggregate,
    Collect,
    ConstructNode,
    Copy,
    GroupBy,
    NewElement,
    TextFrom,
    TextLiteral,
)
from ...xmlgl.containment import ContainmentError
from ...xmlgl.containment import contains as _graph_contains
from ...xmlgl.rule import Rule
from ...xmlgl.schema import SchemaGraph
from ..diagnostics import Diagnostic
from .canonical import canonical_graph_text, canonical_rule_text
from .minimize import (
    _copy_graph,
    merge_duplicate_arcs,
    prune_subsumed_branches,
)
from .report import COUNTERS, RewriteReport
from .schema_prune import schema_prune
from .simplify import simplify_conditions
from .wglog import rewrite_rulegraph

__all__ = [
    "COUNTERS",
    "RewriteReport",
    "canonical_graph_text",
    "canonical_rule_text",
    "contains",
    "rewrite_graph",
    "rewrite_rule",
    "rewrite_rulegraph",
]

_MAX_PASSES = 100  # termination backstop; rewrites strictly shrink


def _construct_variables(node: ConstructNode) -> set[str]:
    """Every query variable the construct part reads."""
    if isinstance(node, NewElement):
        result = set(node.for_each)
        if node.sort_by is not None:
            result.add(node.sort_by)
        if node.tag_from is not None:
            result.add(node.tag_from)
        for attribute in node.attributes:
            if attribute.from_variable is not None:
                result.add(attribute.from_variable)
        for child in node.children:
            result |= _construct_variables(child)
        return result
    if isinstance(node, (TextFrom, Copy, Collect, Aggregate)):
        return {node.variable}
    if isinstance(node, GroupBy):
        result = set(node.group_on)
        for child in node.children:
            result |= _construct_variables(child)
        return result
    assert isinstance(node, TextLiteral)
    return set()


def _multiplicity_sensitive(node: ConstructNode) -> bool:
    """Does the construct part aggregate per *row* rather than per value?

    ``sum``/``avg`` add atomic bindings once per binding row
    (:func:`repro.xmlgl.construct._numeric_occurrences`), so deleting a
    redundant branch — which changes row multiplicities while preserving
    the projected binding *set* — would change their results.  All other
    primitives are distinct-based.
    """
    if isinstance(node, Aggregate):
        return node.function in ("sum", "avg")
    children: list[ConstructNode] = []
    if isinstance(node, (NewElement, GroupBy)):
        children = list(node.children)
    return any(_multiplicity_sensitive(child) for child in children)


def _fold_nodes(
    graph: QueryGraph, *, report: RewriteReport
) -> tuple[QueryGraph, bool]:
    """Constant folding on pattern nodes (XGL106).

    A circle carrying both a literal ``value`` and a ``regex`` that
    fullmatches the literal keeps only the literal: value matching is
    verbatim string equality, so the regex test is implied.  (A regex the
    literal *fails* is a contradiction — left for the satisfiability
    pass, which already reports it.)
    """
    folded = dict(graph.nodes)
    changed = False
    for node_id in sorted(graph.nodes):
        node = graph.nodes[node_id]
        if not isinstance(node, (TextPattern, AttributePattern)):
            continue
        if node.value is None or node.regex is None:
            continue
        try:
            implied = re.fullmatch(node.regex, node.value) is not None
        except re.error:
            continue
        if not implied:
            continue
        if isinstance(node, TextPattern):
            folded[node_id] = TextPattern(id=node.id, value=node.value)
        else:
            folded[node_id] = AttributePattern(
                id=node.id, name=node.name, value=node.value
            )
        report.record(
            "folded",
            "XGL106",
            f"regex /{node.regex}/ on {node_id!r} is implied by its "
            f"literal value {node.value!r}; folded away",
            node=node_id,
        )
        changed = True
    if not changed:
        return graph, False
    rewritten = _copy_graph(graph)
    rewritten.nodes = folded
    return rewritten, True


def _protected_variables(
    graphs: list[QueryGraph], rule_conditions: list[object], construct: ConstructNode
) -> frozenset[str]:
    from ...engine.conditions import Condition, condition_variables

    protected = _construct_variables(construct)
    for condition in rule_conditions:
        assert isinstance(condition, Condition)
        protected |= condition_variables(condition)
    for graph in graphs:
        for condition in graph.conditions:
            protected |= condition_variables(condition)
    return frozenset(protected)


def rewrite_graph(
    graph: QueryGraph,
    *,
    protected: frozenset[str] = frozenset(),
    schema: Optional[SchemaGraph] = None,
    allow_prune: bool = True,
    report: Optional[RewriteReport] = None,
) -> tuple[QueryGraph, RewriteReport]:
    """Rewrite one extract graph to a fixed point.

    ``protected`` names variables that must survive (condition /
    construct references); the caller is responsible for completeness —
    :func:`rewrite_rule` computes the set over the whole rule.
    """
    if report is None:
        report = RewriteReport()
    known = set(graph.nodes) | protected
    for _ in range(_MAX_PASSES):
        changed = False
        conditions, conditions_changed = simplify_conditions(
            graph.conditions,
            report=report,
            prefix="XGL",
            known_variable=lambda v: v in known,
        )
        if conditions_changed:
            graph = _copy_graph(graph)
            graph.conditions = conditions
            changed = True
        graph, fired = _fold_nodes(graph, report=report)
        changed = changed or fired
        graph, fired = merge_duplicate_arcs(graph, report=report)
        changed = changed or fired
        if allow_prune:
            condition_protected = _protected_variables([graph], [], _NO_CONSTRUCT)
            graph, fired = prune_subsumed_branches(
                graph,
                protected=protected | condition_protected,
                report=report,
            )
            changed = changed or fired
        if schema is not None:
            condition_protected = _protected_variables([graph], [], _NO_CONSTRUCT)
            graph, fired = schema_prune(
                graph,
                schema,
                protected=protected | condition_protected,
                report=report,
            )
            changed = changed or fired
        if not changed:
            break
    return graph, report


#: Construct placeholder for graph-only rewriting (protects nothing).
_NO_CONSTRUCT = TextLiteral(text="")


def rewrite_rule(
    rule: Rule, schema: Optional[SchemaGraph] = None
) -> tuple[Rule, RewriteReport]:
    """Rewrite one XML-GL rule to a fixed point; never mutates the input.

    Returns the rewritten rule (the *original object* when nothing
    fired) and the :class:`RewriteReport` of what happened.  With
    ``schema`` set, schema-informed pruning additionally assumes the
    queried documents conform to it.
    """
    report = RewriteReport()
    allow_prune = not _multiplicity_sensitive(rule.construct)
    all_ids = {node_id for graph in rule.queries for node_id in graph.nodes}

    rule_conditions, rule_conditions_changed = simplify_conditions(
        rule.conditions,
        report=report,
        prefix="XGL",
        known_variable=lambda v: v in all_ids,
    )

    graphs = list(rule.queries)
    graphs_changed = False
    for _ in range(_MAX_PASSES):
        changed = False
        for index, graph in enumerate(graphs):
            protected = _protected_variables(
                graphs, rule_conditions, rule.construct
            )
            before = graph
            graph, _ = rewrite_graph(
                graph,
                protected=protected,
                schema=schema,
                allow_prune=allow_prune,
                report=report,
            )
            if graph is not before:
                graphs[index] = graph
                changed = True
        graphs_changed = graphs_changed or changed
        if not changed:
            break

    if not graphs_changed and not rule_conditions_changed:
        return rule, report
    rewritten = Rule(
        queries=graphs,
        construct=rule.construct,
        conditions=rule_conditions,
        name=rule.name,
    )
    return rewritten, report


def contains(
    q1: QueryGraph,
    q2: QueryGraph,
    *,
    target1: Optional[str] = None,
    target2: Optional[str] = None,
) -> bool:
    """Containment oracle: is every answer of ``q2`` an answer of ``q1``?

    Targets default to each graph's single root; both graphs must lie in
    the positive tree fragment (no negation, or-arcs, conditions, joins)
    or :class:`~repro.xmlgl.containment.ContainmentError` is raised.  A
    ``True`` answer is always correct; with descendant (starred) arcs a
    ``False`` may be a missed containment (Miklau & Suciu's gap between
    homomorphism and containment for tree patterns).
    """
    return _graph_contains(
        q1, target1 or _single_root(q1), q2, target2 or _single_root(q2)
    )


def _single_root(graph: QueryGraph) -> str:
    roots = graph.roots()
    if len(roots) != 1:
        raise ContainmentError(
            "containment targets must be given explicitly for "
            f"multi-root graphs (roots: {sorted(roots)})"
        )
    return roots[0]


def _unused() -> tuple[type, type]:  # pragma: no cover - keeps re-exports typed
    return Diagnostic, QueryStructureError
