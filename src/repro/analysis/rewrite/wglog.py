"""WG-Log rule-graph rewriting.

WG-Log embeddings may be requested *injective* (distinct rule nodes bind
distinct instance nodes), which makes branch subsumption unsound there —
a subsumed branch still forces an extra, distinct witness.  The WG-Log
rewriter therefore only applies rewrites that are valid under both
semantics:

* **duplicate red edges** (WGL100) — an identical ``(source, target,
  label, crossed, path)`` red edge written twice is one constraint
  twice; edges bind no variables, so dropping the duplicate changes no
  embedding under either matching discipline.
* **condition simplification** (WGL102/WGL103/WGL105) — the same
  row-wise-sound constant folding and implication pruning as XML-GL,
  via :func:`~repro.analysis.rewrite.simplify.simplify_conditions`.
"""

from __future__ import annotations

from ...wglog.ast import Color, RuleEdge, RuleGraph
from .report import RewriteReport
from .simplify import simplify_conditions

__all__ = ["rewrite_rulegraph"]


def rewrite_rulegraph(rule: RuleGraph) -> tuple[RuleGraph, RewriteReport]:
    """Rewrite one WG-Log rule; returns ``(rule, report)``.

    The input is never mutated; when nothing fires the original object is
    returned unchanged.
    """
    report = RewriteReport()

    seen: set[tuple[str, str, str, bool, bool]] = set()
    edges: list[RuleEdge] = []
    for edge in rule.edges:
        if edge.color is Color.RED:
            key = (edge.source, edge.target, edge.label, edge.crossed, edge.path)
            if key in seen:
                report.record(
                    "merged",
                    "WGL100",
                    f"duplicate edge {edge.describe()} merged with an "
                    "identical edge",
                    edge=(edge.source, edge.target),
                )
                continue
            seen.add(key)
        edges.append(edge)

    red_ids = {n.id for n in rule.red_nodes()}
    conditions, conditions_changed = simplify_conditions(
        rule.conditions,
        report=report,
        prefix="WGL",
        known_variable=lambda v: v in red_ids,
    )

    if len(edges) == len(rule.edges) and not conditions_changed:
        return rule, report
    rewritten = RuleGraph(
        nodes=dict(rule.nodes),
        edges=edges,
        slot_assertions=list(rule.slot_assertions),
        conditions=conditions,
        name=rule.name,
    )
    return rewritten, report
