"""Schema-informed pruning of XML-GL extract graphs.

When the caller registers a schema (a DTD translated through
:func:`~repro.xmlgl.schema.dtd_to_schema`, or a native
:class:`~repro.xmlgl.schema.SchemaGraph`), three rewrites become
available.  All three *assume the queried documents conform* to the
schema — which is why this stage only runs when a schema is explicitly
passed (``rewrite_rule(rule, schema=...)``, ``repro rewrite --schema``),
never on the schema-less engine path:

* **wildcard tightening** (XGL110) — a wildcard box whose parents all
  admit exactly one child tag gets that tag, narrowing the planner's
  candidate pools without changing matches on conforming documents.
* **vacuous negation removal** (XGL111) — a crossed arc whose child
  pattern the schema proves empty is always satisfied; the negated
  branch is deleted.
* **empty-branch detection** (XGL112, warning + unsatisfiable) — a
  positive arc the schema proves impossible means the query matches
  nothing on conforming documents; the rewriter flags ``static_false``
  (structure is kept, mirroring the always-false condition rule).
"""

from __future__ import annotations

from typing import Optional

from ...xmlgl.ast import (
    AttributePattern,
    ContainmentEdge,
    ElementPattern,
    QueryGraph,
    QueryNode,
    TextPattern,
)
from ...xmlgl.schema import SchemaElement, SchemaGraph
from ..diagnostics import Severity
from .minimize import _copy_graph, _free_subtree
from .report import RewriteReport

__all__ = ["schema_prune"]


def _child_tags(schema: SchemaGraph, parent_tag: str) -> Optional[set[str]]:
    """Declared child element tags of ``parent_tag`` (``None`` = unknown)."""
    if parent_tag not in schema.nodes:
        return None
    tags: set[str] = set()
    for edge in schema.element_edges(parent_tag):
        node = schema.nodes[edge.child_id]
        assert isinstance(node, SchemaElement)
        tags.add(node.tag)
    return tags


def _reachable_tags(schema: SchemaGraph, source_tag: str) -> Optional[set[str]]:
    """Element tags reachable below ``source_tag`` at any depth ≥ 1."""
    direct = _child_tags(schema, source_tag)
    if direct is None:
        return None
    reached: set[str] = set()
    stack = list(direct)
    while stack:
        tag = stack.pop()
        if tag in reached:
            continue
        reached.add(tag)
        stack.extend(_child_tags(schema, tag) or ())
    return reached


def _attribute_names(schema: SchemaGraph, parent_tag: str) -> Optional[set[str]]:
    if parent_tag not in schema.nodes:
        return None
    return {a.name for a in schema.attribute_nodes(parent_tag)}


def _edge_impossible(
    schema: SchemaGraph,
    parent_tag: str,
    edge: ContainmentEdge,
    child: QueryNode,
) -> bool:
    """Can the schema prove no conforming document matches this arc?

    Conservative: unknown parent tags, undeclared structure and wildcard
    children (except under childless parents) all answer ``False``.
    """
    if parent_tag not in schema.nodes:
        return False
    if isinstance(child, ElementPattern):
        allowed = (
            _reachable_tags(schema, parent_tag)
            if edge.deep
            else _child_tags(schema, parent_tag)
        )
        if allowed is None:
            return False
        if child.tag is None:
            return not allowed
        return child.tag not in allowed
    if isinstance(child, AttributePattern):
        names = _attribute_names(schema, parent_tag)
        return names is not None and child.name not in names
    assert isinstance(child, TextPattern)
    return not schema.allows_text(parent_tag)


def _parent_tags_of(
    graph: QueryGraph, node_id: str
) -> list[tuple[ContainmentEdge, Optional[str]]]:
    """Incoming plain non-negated arcs with the parent's tag (if fixed)."""
    result = []
    for edge in graph.edges:
        if edge.child != node_id or edge.negated:
            continue
        parent = graph.nodes[edge.parent]
        tag = parent.tag if isinstance(parent, ElementPattern) else None
        result.append((edge, tag))
    return result


def schema_prune(
    graph: QueryGraph,
    schema: SchemaGraph,
    *,
    protected: frozenset[str],
    report: RewriteReport,
) -> tuple[QueryGraph, bool]:
    """One round of schema-informed rewrites; fixed-point driven by caller."""
    # vacuous negations first: deleting them can unlock other rewrites
    for index, edge in enumerate(graph.edges):
        if not edge.negated:
            continue
        parent = graph.nodes[edge.parent]
        if not isinstance(parent, ElementPattern) or parent.tag is None:
            continue
        if not _edge_impossible(schema, parent.tag, edge, graph.nodes[edge.child]):
            continue
        subtree = _free_subtree(graph, edge, protected)
        if subtree is None:
            continue
        report.record(
            "pruned",
            "XGL111",
            f"negated branch {edge.describe()} removed: the schema "
            "proves the pattern empty, so the negation always holds",
            edge=(edge.parent, edge.child),
        )
        return (
            _copy_graph(
                graph, drop_nodes=subtree, drop_edges=frozenset({index})
            ),
            True,
        )

    # statically empty positive branches (conforming documents only)
    flagged = {
        d.edge for d in report.diagnostics if d.code == "XGL112"
    }
    for edge in graph.edges:
        if edge.negated:
            continue
        anchor = (edge.parent, edge.child)
        if anchor in flagged:
            continue
        parent = graph.nodes[edge.parent]
        if not isinstance(parent, ElementPattern) or parent.tag is None:
            continue
        if _edge_impossible(schema, parent.tag, edge, graph.nodes[edge.child]):
            report.record(
                "failed",
                "XGL112",
                f"branch {edge.describe()} matches nothing on "
                "schema-conforming documents: the query is empty",
                severity=Severity.WARNING,
                edge=anchor,
                unsatisfiable=True,
            )

    # wildcard tightening
    for node_id in sorted(graph.nodes):
        node = graph.nodes[node_id]
        if not isinstance(node, ElementPattern) or node.tag is not None:
            continue
        if node.anchored:
            candidates: Optional[set[str]] = {schema.root}
        else:
            candidates = None
            for edge, parent_tag in _parent_tags_of(graph, node_id):
                if parent_tag is None:
                    candidates = None
                    break
                allowed = (
                    _reachable_tags(schema, parent_tag)
                    if edge.deep
                    else _child_tags(schema, parent_tag)
                )
                if allowed is None:
                    candidates = None
                    break
                candidates = (
                    set(allowed)
                    if candidates is None
                    else candidates & allowed
                )
        if not candidates or len(candidates) != 1:
            continue
        (tag,) = candidates
        tightened = dict(graph.nodes)
        tightened[node_id] = ElementPattern(
            id=node.id, tag=tag, anchored=node.anchored
        )
        report.record(
            "tightened",
            "XGL110",
            f"wildcard box {node_id!r} tightened to <{tag}>: the schema "
            "admits no other tag here",
            node=node_id,
        )
        rewritten = _copy_graph(graph)
        rewritten.nodes = tightened
        return rewritten, True

    return graph, False
