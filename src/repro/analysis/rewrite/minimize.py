"""Containment-based minimization of XML-GL extract graphs.

Classic conjunctive-query minimization (Chandra–Merlin): a branch of the
query tree whose pattern *homomorphically embeds* into a sibling branch is
redundant — any document match of the sibling yields, by composition, a
match of the redundant branch, so deleting it changes neither whether a
parent matches nor the bindings projected onto the surviving variables.
XML-GL matching is non-injective, which is exactly what makes branch
subsumption sound (two query boxes may match the same document element).

Three safety gates keep every deletion sound:

* **free branches only** — the deleted subtree must be a private tree: no
  variable in it is referenced by any condition, the construct part, or
  an or-group, no arc crosses its boundary except its root arc, and it
  contains no ordered/negated arcs.
* **keeper witnesses** — the surviving sibling is followed only through
  plain, non-negated arcs (structure that is *guaranteed* matched);
  arc kinds must strengthen (a non-deep arc only maps to a non-deep arc,
  a deep arc maps anywhere below).
* **multiplicity-sensitive constructs** — ``sum``/``avg`` aggregate
  atomic bindings once *per row*, so redundant branches change their
  result multiplicities; rules whose construct part contains them skip
  branch pruning entirely (duplicate-arc merging stays safe: an exact
  duplicate arc adds no variables and no rows).
"""

from __future__ import annotations

from typing import Optional

from ...xmlgl.ast import (
    ContainmentEdge,
    ElementPattern,
    QueryGraph,
)
from ...xmlgl.containment import _node_maps_to
from .report import RewriteReport

__all__ = ["merge_duplicate_arcs", "prune_subsumed_branches"]


def _copy_graph(
    graph: QueryGraph,
    *,
    drop_nodes: frozenset[str] = frozenset(),
    drop_edges: frozenset[int] = frozenset(),
) -> QueryGraph:
    """A structural copy without the named nodes / edge indices."""
    return QueryGraph(
        nodes={k: v for k, v in graph.nodes.items() if k not in drop_nodes},
        edges=[
            e
            for i, e in enumerate(graph.edges)
            if i not in drop_edges
            and e.parent not in drop_nodes
            and e.child not in drop_nodes
        ],
        or_groups=list(graph.or_groups),
        conditions=list(graph.conditions),
        source=graph.source,
    )


def merge_duplicate_arcs(
    graph: QueryGraph, *, report: RewriteReport
) -> tuple[QueryGraph, bool]:
    """Drop arcs that restate an existing arc between the same two nodes.

    Two plain arcs between the *same* parent and child node with the same
    flags are one constraint written twice; ordered arcs are exempt
    because each ordered arc occupies a slot in the sibling order.
    """
    seen: set[tuple[str, str, bool, bool]] = set()
    drop: set[int] = set()
    for index, edge in enumerate(graph.edges):
        if edge.ordered:
            continue
        key = (edge.parent, edge.child, edge.deep, edge.negated)
        if key in seen:
            drop.add(index)
            report.record(
                "merged",
                "XGL101",
                f"duplicate arc {edge.describe()} merged with an "
                "identical arc",
                edge=(edge.parent, edge.child),
            )
        else:
            seen.add(key)
    if not drop:
        return graph, False
    return _copy_graph(graph, drop_edges=frozenset(drop)), True


# ---------------------------------------------------------------------------
# Branch subsumption
# ---------------------------------------------------------------------------

def _positive_children(graph: QueryGraph, node_id: str) -> list[ContainmentEdge]:
    return [e for e in graph.children_of(node_id) if not e.negated]


def _free_subtree(
    graph: QueryGraph, root_edge: ContainmentEdge, protected: frozenset[str]
) -> Optional[frozenset[str]]:
    """Nodes of the private tree under ``root_edge``, or ``None``.

    ``None`` means the branch is not safely deletable: a protected
    variable, an or-group touch, an internal ordered/negated arc, or an
    arc crossing the subtree boundary.
    """
    nodes = {root_edge.child}
    stack = [root_edge.child]
    while stack:
        current = stack.pop()
        for edge in graph.edges:
            if edge.parent != current:
                continue
            if edge.negated or edge.ordered:
                return None
            if edge.child in nodes:
                return None  # internal DAG: shared structure, keep it
            nodes.add(edge.child)
            stack.append(edge.child)
    if nodes & protected:
        return None
    for edge in graph.all_edges():
        if edge is root_edge:
            continue
        if edge.child in nodes and edge.parent not in nodes:
            return None  # a join arc reaches into the branch
    for group in graph.or_groups:
        for branch in group.alternatives:
            for edge in branch:
                if edge.parent in nodes or edge.child in nodes:
                    return None
    return frozenset(nodes)


def _embeds(
    graph: QueryGraph,
    source: str,
    target: str,
    memo: dict[tuple[str, str], bool],
) -> bool:
    """Homomorphism from the (tree) branch at ``source`` into the plain
    positive structure at ``target``, both within ``graph``."""
    key = (source, target)
    cached = memo.get(key)
    if cached is not None:
        return cached
    memo[key] = False  # cycle guard; graphs are acyclic but be safe
    src_node = graph.nodes[source]
    dst_node = graph.nodes[target]
    if not _node_maps_to(src_node, dst_node):
        return False
    ok = True
    for edge in _positive_children(graph, source):
        if edge.deep:
            candidates = [
                nid
                for nid in _positive_descendants(graph, target)
                if isinstance(graph.nodes[nid], ElementPattern)
            ]
        else:
            candidates = [
                e.child
                for e in _positive_children(graph, target)
                if not e.deep
            ]
        if not any(_embeds(graph, edge.child, c, memo) for c in candidates):
            ok = False
            break
    memo[key] = ok
    return ok


def _positive_descendants(graph: QueryGraph, node_id: str) -> list[str]:
    """Nodes strictly below ``node_id`` via plain non-negated arcs."""
    result: list[str] = []
    seen = {node_id}
    stack = [node_id]
    while stack:
        current = stack.pop()
        for edge in _positive_children(graph, current):
            if edge.child in seen:
                continue
            seen.add(edge.child)
            result.append(edge.child)
            stack.append(edge.child)
    return result


def _branch_witnessed_by(
    graph: QueryGraph,
    candidate: ContainmentEdge,
    keeper: ContainmentEdge,
    memo: dict[tuple[str, str], bool],
) -> bool:
    """Does every match of ``keeper``'s branch witness ``candidate``'s?"""
    if candidate.deep:
        # the candidate's child may sit at any depth below the parent:
        # the keeper's child or anything matched below it will do
        targets = [keeper.child] + [
            nid
            for nid in _positive_descendants(graph, keeper.child)
        ]
        targets = [
            nid for nid in targets
            if isinstance(graph.nodes[nid], ElementPattern)
        ]
    else:
        # a non-deep arc needs a depth-1 witness: only a non-deep keeper
        # arc guarantees its child matches directly under the parent
        if keeper.deep:
            return False
        targets = [keeper.child]
    return any(_embeds(graph, candidate.child, t, memo) for t in targets)


def prune_subsumed_branches(
    graph: QueryGraph,
    *,
    protected: frozenset[str],
    report: RewriteReport,
) -> tuple[QueryGraph, bool]:
    """Delete free branches subsumed by a sibling branch (one per call).

    Operates at every element box (sibling branches under one parent) and
    at the root level (independent root subtrees of one extract graph).
    Returns after the first deletion; the fixed-point driver re-invokes
    until nothing fires, so cascades (a branch made redundant by an
    earlier deletion) are handled without intra-pass aliasing bugs.
    """
    memo: dict[tuple[str, str], bool] = {}

    # sibling branches under each element parent
    for parent_id in sorted(graph.nodes):
        if not isinstance(graph.nodes[parent_id], ElementPattern):
            continue
        branches = _positive_children(graph, parent_id)
        if len(branches) < 2:
            continue
        for candidate in branches:
            if candidate.ordered:
                continue
            subtree = _free_subtree(graph, candidate, protected)
            if subtree is None:
                continue
            for keeper in branches:
                if keeper is candidate:
                    continue
                if not _branch_witnessed_by(graph, candidate, keeper, memo):
                    continue
                mutual = _branch_witnessed_by(graph, keeper, candidate, memo)
                edge_index = next(
                    i for i, e in enumerate(graph.edges) if e is candidate
                )
                if mutual:
                    report.record(
                        "merged",
                        "XGL101",
                        f"duplicate branch {candidate.describe()} merged "
                        f"with equivalent sibling {keeper.child!r}",
                        edge=(parent_id, candidate.child),
                    )
                else:
                    report.record(
                        "pruned",
                        "XGL100",
                        f"redundant branch {candidate.describe()} removed: "
                        f"subsumed by sibling branch at {keeper.child!r}",
                        edge=(parent_id, candidate.child),
                        hint="every match of the sibling already witnesses "
                        "this branch",
                    )
                pruned = _copy_graph(
                    graph,
                    drop_nodes=subtree,
                    drop_edges=frozenset({edge_index}),
                )
                return pruned, True

    # independent root subtrees (cartesian factors of one graph)
    roots = graph.roots()
    if len(roots) >= 2:
        for root in sorted(roots):
            pseudo = ContainmentEdge(parent="", child=root, deep=True)
            subtree = _free_subtree(graph, pseudo, protected)
            if subtree is None:
                continue
            root_node = graph.nodes[root]
            for keeper in roots:
                if keeper == root:
                    continue
                if isinstance(root_node, ElementPattern) and root_node.anchored:
                    keeper_node = graph.nodes[keeper]
                    anchored_keeper = (
                        isinstance(keeper_node, ElementPattern)
                        and keeper_node.anchored
                    )
                    if not (anchored_keeper and _embeds(graph, root, keeper, memo)):
                        continue
                else:
                    # an unanchored root matches any element: any element
                    # matched inside the keeper subtree is a witness
                    targets = [keeper] + _positive_descendants(graph, keeper)
                    targets = [
                        nid for nid in targets
                        if isinstance(graph.nodes[nid], ElementPattern)
                    ]
                    if not any(_embeds(graph, root, t, memo) for t in targets):
                        continue
                report.record(
                    "pruned",
                    "XGL100",
                    f"redundant root subtree at {root!r} removed: "
                    f"subsumed by root {keeper!r}",
                    node=root,
                )
                return _copy_graph(graph, drop_nodes=subtree), True
    return graph, False
