"""Static analysis of XML-GL extract graphs.

Two pass families over the left-hand (extract) part of a rule:

* ``xmlgl.structure`` — the drawing is ill-formed: no element box, a
  dangling circle, a containment cycle, a negated subtree shared with
  positive structure, an or-branch duplicating a plain arc, a condition
  referencing an unknown or negated node, ``name()``/attribute access on
  a node kind that cannot answer it.
* ``xmlgl.satisfiability`` — the drawing is well-formed but provably
  matches nothing: contradictory predicate sets on one value (``= 'a'`` ∧
  ``= 'b'``, empty numeric ranges, a literal failing its own regex),
  constant-false conditions, two root-anchored boxes with different tags,
  or an anchored box drawn *below* another box.

Satisfiability findings carry ``unsatisfiable=True``; the evaluator
pre-flight uses exactly those to skip matching (the result is empty by
proof, so skipping preserves semantics — see
:mod:`repro.analysis.preflight`).
"""

from __future__ import annotations

from typing import Optional

from ..engine.conditions import (
    Arith,
    AttributeOf,
    Comparison,
    Condition,
    ContentOf,
    NameOf,
    Operand,
    Regex,
    condition_variables,
)
from ..xmlgl.ast import (
    AttributePattern,
    ElementPattern,
    QueryGraph,
    TextPattern,
)
from ..xmlgl.rule import Rule
from .diagnostics import Diagnostic, Severity
from .passes import AnalysisContext, register
from .satisfiability import ConstraintStore, ViewKey, conjuncts, extract_conjuncts

__all__ = ["structure_pass", "satisfiability_pass", "negated_only_nodes"]


def _error(code: str, message: str, **kw) -> Diagnostic:
    return Diagnostic(code, Severity.ERROR, message, **kw)


def negated_only_nodes(graph: QueryGraph) -> set[str]:
    """Nodes reachable only inside negated subtrees — never bound."""
    negated: set[str] = set()
    for edge in graph.negated_edges():
        stack = [edge.child]
        while stack:
            node_id = stack.pop()
            if node_id in negated:
                continue
            negated.add(node_id)
            stack.extend(e.child for e in graph.edges if e.parent == node_id)
    return negated


# ---------------------------------------------------------------------------
# Structure
# ---------------------------------------------------------------------------

@register("xmlgl.structure", "xmlgl", "structure")
def structure_pass(rule: Rule, context: AnalysisContext) -> list[Diagnostic]:
    """XGL001-XGL008, XGL013: well-formedness of every extract graph."""
    findings: list[Diagnostic] = []
    for graph in rule.queries:
        findings.extend(_graph_structure(graph))
        findings.extend(_condition_references(graph.conditions, graph, rule))
    all_nodes = {
        node_id: node
        for graph in rule.queries
        for node_id, node in graph.nodes.items()
    }
    findings.extend(
        _condition_references(rule.conditions, None, rule, all_nodes)
    )
    return [d.anchored(rule.name) for d in findings]


def _graph_structure(graph: QueryGraph) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    if not graph.element_nodes():
        findings.append(_error(
            "XGL001", "extract graph has no element box",
            hint="every query needs at least one labelled (or wildcard) box",
        ))
    reachable = {e.child for e in graph.all_edges()}
    for node in graph.nodes.values():
        if isinstance(node, (TextPattern, AttributePattern)):
            if node.id not in reachable:
                kind = "text" if isinstance(node, TextPattern) else "attribute"
                findings.append(_error(
                    "XGL002",
                    f"{kind} circle {node.id!r} has no containment arc "
                    "from an element box",
                    node=node.id,
                    hint="connect the circle to the element it belongs to",
                ))
    findings.extend(_cycles(graph))
    findings.extend(_negated_sharing(graph))
    plain = {(e.parent, e.child) for e in graph.edges}
    for group in graph.or_groups:
        for branch in group.alternatives:
            for edge in branch:
                if (edge.parent, edge.child) in plain:
                    findings.append(_error(
                        "XGL005",
                        f"arc {edge.parent!r} -> {edge.child!r} occurs both "
                        "plainly and inside an or-group",
                        edge=(edge.parent, edge.child),
                    ))
    return findings


def _cycles(graph: QueryGraph) -> list[Diagnostic]:
    """XGL003: containment cycles (ordered arcs included)."""
    children: dict[str, list[str]] = {}
    for edge in graph.all_edges():
        children.setdefault(edge.parent, []).append(edge.child)
    findings: list[Diagnostic] = []
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {node_id: WHITE for node_id in graph.nodes}

    def visit(node_id: str) -> None:
        colour[node_id] = GREY
        for child in children.get(node_id, ()):
            if child not in colour:
                continue
            if colour[child] == GREY:
                findings.append(_error(
                    "XGL003",
                    f"containment cycle through {child!r}: an element "
                    "cannot (transitively) contain itself",
                    node=child,
                ))
            elif colour[child] == WHITE:
                visit(child)
        colour[node_id] = BLACK

    for node_id in graph.nodes:
        if colour[node_id] == WHITE:
            visit(node_id)
    return findings


def _negated_sharing(graph: QueryGraph) -> list[Diagnostic]:
    """XGL004: a negated subtree node also bound by positive structure."""
    findings: list[Diagnostic] = []
    for edge in graph.negated_edges():
        subtree = {edge.child}
        stack = [edge.child]
        while stack:
            node_id = stack.pop()
            for sub_edge in graph.edges:
                if sub_edge.parent == node_id and sub_edge.child not in subtree:
                    subtree.add(sub_edge.child)
                    stack.append(sub_edge.child)
        for other in graph.all_edges():
            if other is edge:
                continue
            if other.child in subtree and other.parent not in subtree:
                findings.append(_error(
                    "XGL004",
                    f"negated node {other.child!r} is shared with positive "
                    "structure: a node cannot be both required and forbidden",
                    edge=(other.parent, other.child),
                    hint="duplicate the node, or drop one of the arcs",
                ))
    return findings


def _operands_of(condition: Condition) -> list[Operand]:
    flat: list[Operand] = []

    def of_operand(operand: Operand) -> None:
        if isinstance(operand, Arith):
            of_operand(operand.left)
            of_operand(operand.right)
        else:
            flat.append(operand)

    if isinstance(condition, Comparison):
        of_operand(condition.left)
        of_operand(condition.right)
    elif isinstance(condition, Regex):
        of_operand(condition.operand)
    return flat


def _condition_references(
    conditions: list[Condition],
    graph: Optional[QueryGraph],
    rule: Rule,
    all_nodes: Optional[dict[str, object]] = None,
) -> list[Diagnostic]:
    """XGL006-XGL008, XGL013: what each condition variable refers to.

    ``graph`` is the owning extract graph for per-graph conditions;
    rule-level conditions pass ``graph=None`` with the union of nodes.
    """
    findings: list[Diagnostic] = []
    if graph is not None:
        scope: dict[str, object] = dict(graph.nodes)
        negated = negated_only_nodes(graph)
        placement = "its extract graph"
    else:
        scope = all_nodes or {}
        negated = set()
        for owner in rule.queries:
            negated |= negated_only_nodes(owner)
        placement = "any extract graph"
    for top in conditions:
        for condition in conjuncts(top):
            for variable in sorted(condition_variables(condition)):
                if variable not in scope:
                    findings.append(_error(
                        "XGL006",
                        f"condition {condition} references {variable!r}, "
                        f"which is not a node of {placement}",
                        node=variable,
                        hint="check the node id for typos",
                        unsatisfiable=isinstance(condition, (Comparison, Regex)),
                    ))
                elif variable in negated:
                    findings.append(_error(
                        "XGL013",
                        f"condition {condition} references {variable!r}, "
                        "which is bound only inside a negated subtree",
                        node=variable,
                        hint="negated nodes are never bound; move the "
                        "predicate into the negated subpattern's constraints",
                    ))
            for operand in _operands_of(condition):
                node = scope.get(getattr(operand, "variable", ""))
                if node is None:
                    continue
                if isinstance(operand, NameOf) and not isinstance(
                    node, ElementPattern
                ):
                    findings.append(_error(
                        "XGL007",
                        f"name({operand.variable}) is applied to a "
                        "text/attribute circle, which has no tag",
                        node=operand.variable,
                    ))
                if isinstance(operand, AttributeOf) and not isinstance(
                    node, ElementPattern
                ):
                    findings.append(_error(
                        "XGL008",
                        f"{operand} reads an attribute of "
                        f"{operand.variable!r}, which is not an element box",
                        node=operand.variable,
                        hint="only element boxes carry attributes",
                        unsatisfiable=isinstance(condition, (Comparison, Regex)),
                    ))
    return findings


# ---------------------------------------------------------------------------
# Satisfiability
# ---------------------------------------------------------------------------

@register("xmlgl.satisfiability", "xmlgl", "sat")
def satisfiability_pass(rule: Rule, context: AnalysisContext) -> list[Diagnostic]:
    """XGL009-XGL012: provably-empty queries.

    Builds one :class:`ConstraintStore` per rule.  Pattern literals seed
    *exact* constraints; predicate annotations add coerced constraints;
    attribute and text circles are aliased onto the owning element's
    value views so constraints stated through either route meet.
    """
    findings: list[Diagnostic] = []
    store = ConstraintStore(aliases=_aliases(rule))
    known: set[str] = set()
    for graph in rule.queries:
        known |= set(graph.nodes)
        findings.extend(_anchoring(graph))
        for node in graph.nodes.values():
            if isinstance(node, ElementPattern):
                if node.tag is not None:
                    store.require_exact(("name", node.id), node.tag)
            elif isinstance(node, (TextPattern, AttributePattern)):
                if node.value is not None:
                    store.require_exact(("content", node.id), node.value)
                if node.regex is not None:
                    store.require_regex(("content", node.id), node.regex)
        extract_conjuncts(
            graph.conditions, store, lambda v, g=graph: v in g.nodes
        )
    extract_conjuncts(rule.conditions, store, lambda v: v in known)
    for contradiction in store.contradictions():
        code = "XGL011" if contradiction.key is None else "XGL010"
        findings.append(Diagnostic(
            code,
            Severity.ERROR,
            contradiction.message,
            node=contradiction.variable,
            hint=contradiction.hint,
            unsatisfiable=True,
        ))
    return [d.anchored(rule.name) for d in findings]


def _aliases(rule: Rule) -> dict[ViewKey, ViewKey]:
    """Map circle content views onto the owning element's value views.

    An attribute circle binds exactly the parent's attribute value and a
    text circle binds the parent's immediate text, so ``@year as Y`` with
    ``B.year >= 1995`` constrain the *same* value; sibling circles on one
    element meet on one key too.
    """
    aliases: dict[ViewKey, ViewKey] = {}
    for graph in rule.queries:
        for edge in graph.all_edges():
            child = graph.nodes.get(edge.child)
            if isinstance(child, AttributePattern):
                aliases[("content", child.id)] = ("attr", edge.parent, child.name)
            elif isinstance(child, TextPattern):
                aliases[("content", child.id)] = ("text", edge.parent)
    return aliases


def _anchoring(graph: QueryGraph) -> list[Diagnostic]:
    """XGL009: root-anchored boxes that cannot all sit at the root."""
    findings: list[Diagnostic] = []
    anchored = [
        n
        for n in graph.element_nodes()
        if n.anchored
    ]
    tags = {n.tag for n in anchored if n.tag is not None}
    if len(tags) > 1:
        findings.append(Diagnostic(
            "XGL009",
            Severity.ERROR,
            f"boxes anchored at the document root require different tags "
            f"{sorted(tags)}: a document has one root",
            node=anchored[0].id,
            unsatisfiable=True,
        ))
    has_parent = {e.child for e in graph.all_edges()}
    for node in anchored:
        if node.id in has_parent:
            findings.append(Diagnostic(
                "XGL009",
                Severity.ERROR,
                f"box {node.id!r} is anchored at the document root but "
                "drawn below another box: the root has no parent",
                node=node.id,
                unsatisfiable=True,
            ))
    return findings
