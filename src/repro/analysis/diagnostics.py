"""The diagnostic model of the static-analysis subsystem.

Every check in :mod:`repro.analysis` reports its findings as
:class:`Diagnostic` objects instead of bare strings or exceptions, so an
editor (or the ``repro lint`` command) can present them uniformly:

* a **stable code** (``XGL010``, ``WGL003``, ...) that tests, docs and
  tooling can key on — the full registry is the table in DESIGN.md;
* a **severity** — :attr:`Severity.ERROR` means the query is rejected
  (``repro lint`` exits non-zero), :attr:`Severity.WARNING` flags likely
  mistakes that still evaluate, :attr:`Severity.INFO` is advisory;
* **anchors** — the query node and/or edge the finding points at, so a
  visual editor can highlight the offending box or arc;
* an optional **hint** suggesting the fix.

Diagnostics compare and hash by content, which makes de-duplication (two
starred arcs producing the same finding) a set operation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Optional

__all__ = [
    "Severity",
    "Diagnostic",
    "has_errors",
    "max_severity",
    "dedupe",
    "render_text",
    "render_json",
]


class Severity(Enum):
    """How bad a finding is, ordered INFO < WARNING < ERROR."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        # the table is hoisted to module level (below) so sorting a large
        # finding list does not rebuild a dict per comparison
        return _SEVERITY_RANK[self.value]


#: Severity ordering, built once at import time; ``Severity.rank`` reads it.
_SEVERITY_RANK = {"info": 0, "warning": 1, "error": 2}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static-analysis pass.

    Attributes:
        code: stable identifier (``XGL``/``WGL``/``XGS`` family + number).
        severity: ERROR rejects the query; WARNING/INFO annotate it.
        message: human-readable description of the finding.
        node: id of the query/rule node the finding anchors at, if any.
        edge: ``(source, target)`` of the anchoring arc, if any.
        hint: optional suggestion for fixing the query.
        rule: name of the rule the finding belongs to (programs).
        unsatisfiable: True when the finding *proves* the query part can
            never match anything — the evaluator pre-flight keys on this
            to short-circuit evaluation (see :mod:`repro.analysis.preflight`).
    """

    code: str
    severity: Severity
    message: str
    node: Optional[str] = None
    edge: Optional[tuple[str, str]] = None
    hint: Optional[str] = None
    rule: Optional[str] = None
    unsatisfiable: bool = field(default=False, compare=False)

    def anchored(self, rule: Optional[str]) -> "Diagnostic":
        """A copy carrying the owning rule's name (no-op when unnamed)."""
        if rule is None or self.rule is not None:
            return self
        return Diagnostic(
            self.code, self.severity, self.message, self.node, self.edge,
            self.hint, rule, self.unsatisfiable,
        )

    def as_dict(self) -> dict:
        """JSON-friendly representation (stable key order)."""
        payload: dict = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.node is not None:
            payload["node"] = self.node
        if self.edge is not None:
            payload["edge"] = list(self.edge)
        if self.hint is not None:
            payload["hint"] = self.hint
        if self.rule is not None:
            payload["rule"] = self.rule
        if self.unsatisfiable:
            payload["unsatisfiable"] = True
        return payload

    def format(self) -> str:
        """One-line rendering: ``CODE severity: message [at ...] (hint)``."""
        anchor = ""
        if self.edge is not None:
            anchor = f" [at {self.edge[0]} -> {self.edge[1]}]"
        elif self.node is not None:
            anchor = f" [at {self.node}]"
        where = f" (rule {self.rule})" if self.rule else ""
        hint = f"; hint: {self.hint}" if self.hint else ""
        return (
            f"{self.code} {self.severity.value}{where}: "
            f"{self.message}{anchor}{hint}"
        )


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    """Does any finding reject the query?"""
    return any(d.severity is Severity.ERROR for d in diagnostics)


def max_severity(diagnostics: Iterable[Diagnostic]) -> Optional[Severity]:
    """The worst severity present, or ``None`` for a clean report."""
    worst: Optional[Severity] = None
    for diagnostic in diagnostics:
        if worst is None or diagnostic.severity.rank > worst.rank:
            worst = diagnostic.severity
    return worst


def dedupe(diagnostics: Iterable[Diagnostic]) -> list[Diagnostic]:
    """Drop exact repeats (same code/message/anchor), keeping first order."""
    seen: set[Diagnostic] = set()
    unique: list[Diagnostic] = []
    for diagnostic in diagnostics:
        if diagnostic in seen:
            continue
        seen.add(diagnostic)
        unique.append(diagnostic)
    return unique


def render_text(diagnostics: Iterable[Diagnostic]) -> str:
    """The text report ``repro lint`` prints: one finding per line."""
    items = list(diagnostics)
    if not items:
        return "no findings"
    lines = [d.format() for d in items]
    errors = sum(1 for d in items if d.severity is Severity.ERROR)
    warnings = sum(1 for d in items if d.severity is Severity.WARNING)
    lines.append(f"# {len(items)} finding(s): {errors} error(s), {warnings} warning(s)")
    return "\n".join(lines)


def render_json(diagnostics: Iterable[Diagnostic]) -> str:
    """The ``--format json`` report: a stable JSON document."""
    items = list(diagnostics)
    return json.dumps(
        {
            "findings": [d.as_dict() for d in items],
            "errors": sum(1 for d in items if d.severity is Severity.ERROR),
            "warnings": sum(1 for d in items if d.severity is Severity.WARNING),
        },
        indent=2,
    )
