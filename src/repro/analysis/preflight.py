"""Cheap pre-evaluation short-circuit for provably-empty queries.

The evaluators call these before matching: when a query is *statically*
unsatisfiable — contradictory predicates, an always-false constant
comparison, two anchored boxes with different tags — there is no point
walking the document or instance at all.  Only diagnostics explicitly
flagged ``unsatisfiable`` participate: those are the ones whose proof is
"the match set is empty", as opposed to style or crash findings.

The pre-flight must never change observable semantics beyond skipping
work, so it is deliberately defensive: any analysis failure means "no
verdict" and evaluation proceeds normally.
"""

from __future__ import annotations

from typing import Optional

from .diagnostics import Diagnostic
from .passes import AnalysisContext, passes_for

__all__ = ["xmlgl_preflight", "wglog_preflight"]

#: Pass families cheap enough to run on every evaluation.
_XMLGL_FAMILIES = ("structure", "sat")
_WGLOG_FAMILIES = ("safety", "sat")

_CONTEXT = AnalysisContext()


def _first_unsatisfiable(
    target, language: str, families: tuple[str, ...]
) -> Optional[Diagnostic]:
    for analysis_pass in passes_for(language, families):
        try:
            findings = analysis_pass.run(target, _CONTEXT)
        except Exception:
            return None  # a broken analysis must not break evaluation
        for finding in findings:
            if finding.unsatisfiable:
                return finding
    return None


def xmlgl_preflight(rule) -> Optional[Diagnostic]:
    """The first proof that ``rule`` (an XML-GL rule) matches nothing."""
    return _first_unsatisfiable(rule, "xmlgl", _XMLGL_FAMILIES)


def wglog_preflight(rule) -> Optional[Diagnostic]:
    """The first proof that a WG-Log rule's red part embeds nowhere."""
    return _first_unsatisfiable([rule], "wglog", _WGLOG_FAMILIES)
