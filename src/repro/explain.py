"""EXPLAIN for XML-GL rules: what the engine decided and why.

The comparative literature around the paper judges query languages by the
*observable behaviour* of their evaluators, and visual-query surveys insist
users must be able to inspect what a drawn query actually did.  This module
is that surface: :func:`explain` evaluates a rule with tracing enabled and
digests the recorded span tree (:mod:`repro.engine.trace`) into an
:class:`Explanation` that renders — as text or JSON — the cost-chosen join
forest, every fragment's engine decision (pipeline vs. backtracking
fallback, with the reason: ``ordered`` / ``negated`` / ``cyclic`` /
``multi-parent-circle``), and the candidate-pool sizes before and after
each semi-join pass.

This is ``EXPLAIN ANALYZE``, not a dry run: the plan the pipeline chooses
depends on actual pool sizes, so the honest report requires executing the
query.  Use it from code (:func:`explain`, ``QuerySession.explain``) or
the shell (``repro explain rule.xgl data.xml``, ``repro run --explain``)::

    >>> report = explain("query { book as B { title as T } } "
    ...                  "construct { r { collect T } }", document)
    >>> print(report.render_text())
    >>> json.loads(report.render_json())  # round-trips

When no document is supplied, the rule is explained against the built-in
synthetic bibliography workload (100 entries) so plan shapes can be
inspected without any data at hand; the report says so.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Union

from .engine.options import MatchOptions
from .engine.plan_cache import PlanCache
from .engine.stats import EvalStats
from .engine.trace import Span, Tracer
from .ssd.model import Document
from .xmlgl.evaluator import evaluate_rule, lookup_or_compile
from .xmlgl.rule import Rule
from .xmlgl.unparse import unparse_rule

__all__ = ["explain", "Explanation", "FragmentPlan", "SemiJoinPass"]

Sources = Union[Document, Mapping[str, Document]]

#: Size of the synthetic bibliography used when no document is supplied.
DEFAULT_WORKLOAD_ENTRIES = 100


@dataclass
class SemiJoinPass:
    """One semi-join reduction pass over a candidate pool."""

    var: str
    via: str
    direction: str  # bottom-up | top-down
    before: int
    after: int

    def as_dict(self) -> dict[str, Any]:
        return {
            "var": self.var,
            "via": self.via,
            "direction": self.direction,
            "before": self.before,
            "after": self.after,
        }


@dataclass
class FragmentPlan:
    """One connected query fragment's evaluation decision and plan."""

    variables: list[str]
    decision: str  # pipeline | backtracking | fallback
    reason: Optional[str]
    rows: Optional[int]
    order: list[str] = field(default_factory=list)
    forest: list[dict[str, str]] = field(default_factory=list)
    pool_sizes: dict[str, int] = field(default_factory=dict)
    semijoins: list[SemiJoinPass] = field(default_factory=list)
    assembled_rows: Optional[int] = None
    #: Adaptive cost estimates, when the decision was cost-based.
    est_pipeline: Optional[float] = None
    est_backtracking: Optional[float] = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "variables": self.variables,
            "decision": self.decision,
            "reason": self.reason,
            "rows": self.rows,
            "order": self.order,
            "forest": self.forest,
            "pool_sizes": self.pool_sizes,
            "semijoins": [p.as_dict() for p in self.semijoins],
            "assembled_rows": self.assembled_rows,
            "est_pipeline": self.est_pipeline,
            "est_backtracking": self.est_backtracking,
        }


@dataclass
class GraphPlan:
    """The digested plan of one extract graph of the rule."""

    source: str
    engine: str
    bindings: Optional[int]
    fragments: list[FragmentPlan]

    def as_dict(self) -> dict[str, Any]:
        return {
            "source": self.source,
            "engine": self.engine,
            "bindings": self.bindings,
            "fragments": [f.as_dict() for f in self.fragments],
        }


@dataclass
class Explanation:
    """The digested evaluation report of one rule."""

    query: str
    engine: str
    preflight_skipped: bool
    index_lookups: list[dict[str, Any]]
    graphs: list[GraphPlan]
    construct: Optional[dict[str, Any]]
    stats: EvalStats
    trace: Tracer
    synthetic_source: bool = False
    #: ``cached`` when the compiled plan came from the plan cache,
    #: ``compiled`` when this run compiled it.
    plan_source: str = "compiled"
    #: Per-counter summary of the static rewrite layer ("merged=2
    #: pruned=1"), "none" when nothing fired, "off" when rewriting was
    #: disabled (``MatchOptions.rewrite=False``).
    rewrites: str = "off"

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready view (``render_json`` round-trips through this)."""
        return {
            "query": self.query,
            "engine": self.engine,
            "plan_source": self.plan_source,
            "rewrites": self.rewrites,
            "preflight_skipped": self.preflight_skipped,
            "synthetic_source": self.synthetic_source,
            "index_lookups": self.index_lookups,
            "graphs": [g.as_dict() for g in self.graphs],
            "construct": self.construct,
            "stats": self.stats.as_dict(),
            "trace": self.trace.as_dict(),
        }

    def render_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render_text(self) -> str:
        lines = [f"EXPLAIN {self.query.strip()}"]
        lines.append(f"engine: {self.engine}")
        lines.append(f"plan: {self.plan_source}")
        lines.append(f"rewrites: {self.rewrites}")
        if self.synthetic_source:
            lines.append(
                "source: (none given) built-in bibliography workload, "
                f"{DEFAULT_WORKLOAD_ENTRIES} entries"
            )
        if self.preflight_skipped:
            lines.append(
                "preflight: proved unsatisfiable — no evaluation performed"
            )
            return "\n".join(lines)
        lines.append("preflight: passed")
        for lookup in self.index_lookups:
            lines.append(
                f"index: {lookup.get('outcome', '?')} "
                f"({lookup.get('elements', '?')} elements)"
            )
        for position, graph in enumerate(self.graphs):
            lines.append(
                f"graph {position} (source {graph.source}): "
                f"{graph.bindings} binding(s)"
            )
            for fragment in graph.fragments:
                lines.extend(_render_fragment(fragment))
        if self.construct is not None:
            lines.append(
                f"construct: {self.construct.get('bindings', '?')} binding(s) "
                f"-> {self.construct.get('nodes', '?')} result node(s)"
            )
        lines.append(
            "work: "
            + ", ".join(
                f"{name}={int(value)}"
                for name, value in self.stats.as_dict().items()
                if name != "seconds" and not isinstance(value, dict) and value
            )
        )
        return "\n".join(lines)

    def render(self, fmt: str = "text") -> str:
        if fmt == "json":
            return self.render_json()
        if fmt == "text":
            return self.render_text()
        raise ValueError(f"unknown explain format {fmt!r}")


def _render_fragment(fragment: FragmentPlan) -> list[str]:
    variables = ", ".join(fragment.variables)
    if fragment.decision == "backtracking":
        estimates = ""
        if fragment.est_pipeline is not None:
            estimates = (
                f" (est pipeline {fragment.est_pipeline} vs "
                f"backtracking {fragment.est_backtracking})"
            )
        return [
            f"  fragment [{variables}]: cost-chosen backtracking"
            f"{estimates} -> {fragment.rows} row(s)"
        ]
    if fragment.decision != "pipeline":
        return [
            f"  fragment [{variables}]: fallback to backtracking "
            f"(reason: {fragment.reason}) -> {fragment.rows} row(s)"
        ]
    lines = [f"  fragment [{variables}]: pipeline -> {fragment.rows} row(s)"]
    if fragment.order:
        lines.append("    join order: " + " -> ".join(fragment.order))
    lines.extend(
        "    " + line for line in _render_forest(fragment.order, fragment.forest)
    )
    if fragment.pool_sizes:
        lines.append(
            "    pools: "
            + ", ".join(
                f"{var}={size}" for var, size in fragment.pool_sizes.items()
            )
        )
    for sj in fragment.semijoins:
        lines.append(
            f"    semi-join {sj.var} ({sj.direction} via {sj.via}): "
            f"{sj.before} -> {sj.after}"
        )
    if not fragment.semijoins:
        lines.append("    semi-joins: none (single-box fragment)")
    if fragment.assembled_rows is not None:
        lines.append(f"    assembled rows: {fragment.assembled_rows}")
    return lines


def _render_forest(
    order: list[str], forest: list[dict[str, str]]
) -> list[str]:
    """ASCII join-forest rendering from the plan span's parent relation."""
    if not forest:
        return []
    children: dict[str, list[str]] = {}
    child_vars = set()
    for entry in forest:
        children.setdefault(entry["parent"], []).append(entry["var"])
        child_vars.add(entry["var"])
    roots = [var for var in order if var not in child_vars]
    lines = ["join forest:"]

    def visit(var: str, depth: int) -> None:
        prefix = "  " * depth + ("└─ " if depth else "")
        lines.append(prefix + var)
        for child in children.get(var, ()):
            visit(child, depth + 1)

    for root in roots:
        visit(root, 0)
    return lines


# ---------------------------------------------------------------------------
# Trace digestion
# ---------------------------------------------------------------------------

def _fragment_from_span(span: Span) -> FragmentPlan:
    fragment = FragmentPlan(
        variables=[str(v) for v in span.attributes.get("variables", [])],
        decision=span.attributes.get("decision", "?"),
        reason=span.attributes.get("reason"),
        rows=span.attributes.get("rows"),
        est_pipeline=span.attributes.get("est_pipeline"),
        est_backtracking=span.attributes.get("est_backtracking"),
    )
    plans = span.find("plan")
    if plans:
        plan = plans[0]
        fragment.order = list(plan.attributes.get("order", []))
        fragment.forest = list(plan.attributes.get("forest", []))
    pools = span.find("fragment.pools")
    if pools:
        fragment.pool_sizes = dict(pools[0].attributes.get("sizes", {}))
    for event in span.find("semijoin"):
        fragment.semijoins.append(
            SemiJoinPass(
                var=event.attributes.get("var", "?"),
                via=event.attributes.get("via", "?"),
                direction=event.attributes.get("direction", "?"),
                before=event.attributes.get("before", 0),
                after=event.attributes.get("after", 0),
            )
        )
    assembles = span.find("assemble")
    if assembles:
        fragment.assembled_rows = assembles[-1].attributes.get("rows")
    return fragment


def _digest(
    query_text: str,
    engine: str,
    stats: EvalStats,
    tracer: Tracer,
    synthetic_source: bool,
    rewrites: str = "off",
) -> Explanation:
    preflight_skipped = any(
        span.attributes.get("skipped") for span in tracer.find("preflight")
    )
    index_lookups = [
        dict(span.attributes) for span in tracer.find("index.lookup")
    ]
    graphs: list[GraphPlan] = []
    for match_span in tracer.find("match"):
        graphs.append(
            GraphPlan(
                source=str(match_span.attributes.get("source", "-")),
                engine=str(match_span.attributes.get("engine", engine)),
                bindings=match_span.attributes.get("bindings"),
                fragments=[
                    _fragment_from_span(span)
                    for span in match_span.find("match.fragment")
                ],
            )
        )
    constructs = tracer.find("construct")
    construct = dict(constructs[0].attributes) if constructs else None
    plan_source = "cached" if tracer.find("plan.cache.hit") else "compiled"
    return Explanation(
        query=query_text,
        engine=engine,
        preflight_skipped=preflight_skipped,
        index_lookups=index_lookups,
        graphs=graphs,
        construct=construct,
        stats=stats,
        trace=tracer,
        synthetic_source=synthetic_source,
        plan_source=plan_source,
        rewrites=rewrites,
    )


def explain(
    query: Union[str, Rule],
    sources: Optional[Sources] = None,
    options: Optional[MatchOptions] = None,
    indexes: Optional[Any] = None,
    plans: Optional[PlanCache] = None,
) -> Explanation:
    """Evaluate ``query`` with tracing on and digest the trace.

    ``sources`` defaults to the synthetic bibliography workload so a rule
    can be explained without data; ``options`` defaults to the default
    engine with tracing forced on (the caller's ``trace`` flag is
    irrelevant here — EXPLAIN always records).  ``indexes`` is forwarded
    to the evaluator (a private cache isolates the explain run); ``plans``
    likewise selects the compiled-plan cache — the report's ``plan:`` line
    says whether this run's plan was served ``cached`` or ``compiled``.
    """
    synthetic = sources is None
    if sources is None:
        from .workloads import bibliography

        sources = bibliography(DEFAULT_WORKLOAD_ENTRIES, seed=0)
    base = options or MatchOptions()
    traced = MatchOptions(
        use_planner=base.use_planner,
        use_index=base.use_index,
        engine=base.engine,
        rewrite=base.rewrite,
        columnar=base.columnar,
        trace=True,
        budget=base.budget,
    )
    stats = EvalStats()
    stats.trace = Tracer()
    rule, source_text, plan = lookup_or_compile(
        query, sources, indexes=indexes, stats=stats, plans=plans,
        rewrite=traced.rewrite,
    )
    query_text = source_text if source_text is not None else unparse_rule(rule)
    evaluate_rule(
        rule, sources, options=traced, stats=stats, indexes=indexes, plan=plan
    )
    rewrites = "off"
    if traced.rewrite:
        report = plan.rewrite
        rewrites = report.describe() if report is not None else "none"
    return _digest(
        query_text,
        traced.resolved_engine(),
        stats,
        stats.trace,
        synthetic,
        rewrites=rewrites,
    )
