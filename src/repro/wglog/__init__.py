"""WG-Log: the schema-based graphical query language over G-Log.

Public API:

* data — :class:`InstanceGraph` (entities, slots, relationships);
* schemas — :class:`WGSchema` with conformance checking;
* rules — :class:`RuleGraph` (red/green coloured graphs), built directly
  or parsed from the textual DSL (:func:`parse_wglog` / :func:`parse_rule`);
* evaluation — :func:`query` (embeddings), :func:`satisfies` (declarative
  reading), :func:`apply_rule` / :func:`apply_program` (generative
  semantics with fixpoint);
* bridging — :func:`document_to_instance` / :func:`instance_to_document`
  to share datasets with XML-GL.
"""

from .ast import Color, RuleEdge, RuleGraph, RuleNode, SlotAssertion
from .bridge import document_to_instance, instance_to_document
from .data import SLOT_LABEL, InstanceGraph
from .dsl import parse_rule, parse_wglog
from .matcher import GraphAccessor, check_against_schema, embeddings
from .schema import RelationDecl, SlotDecl, WGSchema, infer_wg_schema
from .semantics import answer_graph, apply_program, apply_rule, query, satisfies
from .unparse import unparse_rule, unparse_schema, unparse_wglog

__all__ = [
    "InstanceGraph", "SLOT_LABEL",
    "WGSchema", "SlotDecl", "RelationDecl", "infer_wg_schema",
    "RuleGraph", "RuleNode", "RuleEdge", "SlotAssertion", "Color",
    "embeddings", "GraphAccessor", "check_against_schema",
    "query", "satisfies", "apply_rule", "apply_program", "answer_graph",
    "parse_wglog", "parse_rule",
    "unparse_rule", "unparse_schema", "unparse_wglog",
    "document_to_instance", "instance_to_document",
]
