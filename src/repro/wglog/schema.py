"""WG-Log schema graphs.

Unlike XML-GL, WG-Log is *schema-first*: "the patterns are explicitly based
on schemas".  A schema declares the entity types, the typed slots each may
carry, and the labelled relationships allowed between types.  Query rules
are checked against the schema before evaluation, and instances can be
checked for conformance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import SchemaError
from .data import InstanceGraph

__all__ = ["SlotDecl", "RelationDecl", "WGSchema", "infer_wg_schema"]

_SLOT_TYPES = {"string", "int", "float", "bool", "any"}


@dataclass(frozen=True)
class SlotDecl:
    """One typed slot of an entity type."""

    name: str
    value_type: str = "any"
    required: bool = False

    def __post_init__(self) -> None:
        if self.value_type not in _SLOT_TYPES:
            raise SchemaError(
                f"unknown slot type {self.value_type!r} "
                f"(expected one of {sorted(_SLOT_TYPES)})"
            )

    def accepts(self, value: object) -> bool:
        """Does ``value`` fit this slot's declared type?"""
        if self.value_type == "any":
            return True
        if self.value_type == "string":
            return isinstance(value, str)
        if self.value_type == "bool":
            return isinstance(value, bool)
        if self.value_type == "int":
            return isinstance(value, int) and not isinstance(value, bool)
        return isinstance(value, (int, float)) and not isinstance(value, bool)


@dataclass(frozen=True)
class RelationDecl:
    """One allowed labelled edge between entity types."""

    source: str
    label: str
    target: str


@dataclass
class WGSchema:
    """Entity types, their slots, and allowed relationships."""

    entities: dict[str, dict[str, SlotDecl]] = field(default_factory=dict)
    relations: set[RelationDecl] = field(default_factory=set)

    # -- construction ---------------------------------------------------------

    def entity(self, label: str, *slots: SlotDecl) -> "WGSchema":
        """Declare an entity type with its slots (chainable)."""
        if label in self.entities:
            raise SchemaError(f"duplicate entity type {label!r}")
        self.entities[label] = {s.name: s for s in slots}
        return self

    def relation(self, source: str, label: str, target: str) -> "WGSchema":
        """Declare an allowed relationship (chainable)."""
        for endpoint in (source, target):
            if endpoint not in self.entities:
                raise SchemaError(f"relation endpoint {endpoint!r} undeclared")
        self.relations.add(RelationDecl(source, label, target))
        return self

    # -- queries --------------------------------------------------------------

    def has_entity(self, label: str) -> bool:
        """Is ``label`` a declared entity type?"""
        return label in self.entities

    def slot_decl(self, entity: str, name: str) -> Optional[SlotDecl]:
        """Slot declaration, or ``None``."""
        return self.entities.get(entity, {}).get(name)

    def allows_relation(self, source: str, label: str, target: str) -> bool:
        """Is the labelled edge between these types allowed?"""
        return RelationDecl(source, label, target) in self.relations

    def relations_from(self, source: str) -> list[RelationDecl]:
        """All declared relations leaving ``source``."""
        return sorted(
            (r for r in self.relations if r.source == source),
            key=lambda r: (r.label, r.target),
        )

    # -- conformance ------------------------------------------------------------

    def conform(self, instance: InstanceGraph) -> list[str]:
        """Check an instance against this schema; returns violations."""
        violations: list[str] = []
        for entity in instance.entities():
            label = instance.label(entity)
            if label not in self.entities:
                violations.append(f"entity {entity!r} has undeclared type {label!r}")
                continue
            declared = self.entities[label]
            slots = instance.slots(entity)
            for name, value in slots.items():
                decl = declared.get(name)
                if decl is None:
                    violations.append(
                        f"{label} entity {entity!r}: undeclared slot {name!r}"
                    )
                elif not decl.accepts(value):
                    violations.append(
                        f"{label} entity {entity!r}: slot {name!r} value {value!r} "
                        f"is not a {decl.value_type}"
                    )
            for decl in declared.values():
                if decl.required and decl.name not in slots:
                    violations.append(
                        f"{label} entity {entity!r}: missing required slot "
                        f"{decl.name!r}"
                    )
        for edge in instance.relationship_edges():
            source_label = instance.label(edge.source)
            target_label = instance.label(edge.target)
            if source_label not in self.entities or target_label not in self.entities:
                continue  # already reported above
            if not self.allows_relation(source_label, edge.label, target_label):
                violations.append(
                    f"relation {source_label} -{edge.label}-> {target_label} "
                    "is not declared"
                )
        return violations

    def describe(self) -> str:
        """Compact textual rendering."""
        lines = []
        for label, slots in self.entities.items():
            slot_text = ", ".join(
                f"{s.name}: {s.value_type}" + ("!" if s.required else "")
                for s in slots.values()
            )
            lines.append(f"entity {label}" + (f" {{{slot_text}}}" if slot_text else ""))
        for relation in sorted(
            self.relations, key=lambda r: (r.source, r.label, r.target)
        ):
            lines.append(f"{relation.source} -{relation.label}-> {relation.target}")
        return "\n".join(lines)


def infer_wg_schema(instance: "InstanceGraph") -> WGSchema:
    """Infer a schema accepting exactly the instance's structure.

    The graph-side DataGuide: entity types from node labels, slot types
    from observed value types (widened to ``any`` on conflicts, slots
    present on every instance of a type become required), relations from
    observed labelled edges.  The inferred schema always conforms to the
    instance it came from (property-tested).
    """
    schema = WGSchema()
    per_type_counts: dict[str, int] = {}
    per_type_slots: dict[str, dict[str, tuple[str, int]]] = {}
    for entity in instance.entities():
        label = instance.label(entity)
        per_type_counts[label] = per_type_counts.get(label, 0) + 1
        slots = per_type_slots.setdefault(label, {})
        for name, value in instance.slots(entity).items():
            observed = _value_type(value)
            previous = slots.get(name)
            if previous is None:
                slots[name] = (observed, 1)
            else:
                kept = previous[0] if previous[0] == observed else "any"
                slots[name] = (kept, previous[1] + 1)
    for label, slots in per_type_slots.items():
        declarations = [
            SlotDecl(name, value_type, required=count == per_type_counts[label])
            for name, (value_type, count) in sorted(slots.items())
        ]
        schema.entity(label, *declarations)
    for label in per_type_counts:
        if label not in schema.entities:
            schema.entity(label)
    for edge in instance.relationship_edges():
        schema.relations.add(
            RelationDecl(
                instance.label(edge.source), edge.label, instance.label(edge.target)
            )
        )
    return schema


def _value_type(value: object) -> str:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "string"
    return "any"
