"""Unparsing: WG-Log ASTs back to canonical DSL text.

Inverse of :mod:`repro.wglog.dsl` for rules and schemas: output re-parses
to a structurally identical rule (property-tested).  Node ids and labels
must be DSL names (no hyphens), which everything in this library
generates.
"""

from __future__ import annotations

from .ast import RuleGraph
from .schema import WGSchema

__all__ = ["unparse_rule", "unparse_schema", "unparse_wglog"]

_INDENT = "  "


def unparse_schema(schema: WGSchema) -> str:
    """Render a schema block."""
    lines = ["schema {"]
    for label, slots in schema.entities.items():
        if slots:
            rendered = ", ".join(
                f"{slot.name}: {slot.value_type}"
                + (" required" if slot.required else "")
                for slot in slots.values()
            )
            lines.append(f"{_INDENT}entity {label} {{ {rendered} }}")
        else:
            lines.append(f"{_INDENT}entity {label}")
    for relation in sorted(
        schema.relations, key=lambda r: (r.source, r.label, r.target)
    ):
        lines.append(
            f"{_INDENT}relation {relation.source} -{relation.label}-> "
            f"{relation.target}"
        )
    lines.append("}")
    return "\n".join(lines)


def unparse_rule(rule: RuleGraph) -> str:
    """Render one rule block."""
    name = f" {rule.name}" if rule.name else ""
    lines = [f"rule{name} {{", f"{_INDENT}match {{"]
    for node in rule.red_nodes():
        label = node.label if node.label is not None else "*"
        lines.append(f"{_INDENT * 2}{node.id}: {label}")
    for edge in rule.red_edges():
        prefix = "no " if edge.crossed else ""
        label = edge.label if edge.label else "_"
        arrow = f"-{label}*->" if edge.path else f"-{label}->"
        lines.append(f"{_INDENT * 2}{prefix}{edge.source} {arrow} {edge.target}")
    lines.append(f"{_INDENT}}}")

    green_nodes = rule.green_nodes()
    green_edges = rule.green_edges()
    if green_nodes or green_edges or rule.slot_assertions:
        lines.append(f"{_INDENT}construct {{")
        for node in green_nodes:
            collect = " collect" if node.collector else ""
            lines.append(f"{_INDENT * 2}{node.id}: {node.label}{collect}")
        for edge in green_edges:
            lines.append(
                f"{_INDENT * 2}{edge.source} -{edge.label}-> {edge.target}"
            )
        for assertion in rule.slot_assertions:
            if assertion.value is not None:
                if isinstance(assertion.value, (int, float)) and not isinstance(
                    assertion.value, bool
                ):
                    value = str(assertion.value)
                else:
                    value = f"'{assertion.value}'"
            else:
                value = f"{assertion.from_node}.{assertion.from_slot}"
            lines.append(
                f"{_INDENT * 2}{assertion.node}.{assertion.name} = {value}"
            )
        lines.append(f"{_INDENT}}}")

    if rule.conditions:
        rendered = " and ".join(str(c) for c in rule.conditions)
        lines.append(f"{_INDENT}where {rendered}")
    lines.append("}")
    return "\n".join(lines)


def unparse_wglog(schema: WGSchema | None, rules: list[RuleGraph]) -> str:
    """Render a whole program (optional schema + rules)."""
    blocks = []
    if schema is not None:
        blocks.append(unparse_schema(schema))
    blocks.extend(unparse_rule(rule) for rule in rules)
    return "\n".join(blocks)
