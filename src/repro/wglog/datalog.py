"""Rendering WG-Log rules as Datalog text.

G-Log descends from the Datalog family (GraphLog's visual queries are
exactly stratified-Datalog-expressible), and the paper situates WG-Log
there.  This module pretty-prints a :class:`~repro.wglog.ast.RuleGraph`
as the corresponding Datalog rule, making the visual/logical
correspondence explicit:

* a red node ``x: Doc`` → body atom ``node(X, 'Doc')``
  (wildcards contribute no atom beyond their edges);
* a red edge ``a -link-> b`` → ``edge(A, 'link', B)``;
* a crossed edge → a negated atom ``not edge(...)`` (∀-negated fragments
  render with their fragment atoms inside the negation);
* a dashed path edge → ``path(A, 'link', B)`` (the transitive-closure
  predicate);
* green structure → the rule head (several heads render as several
  rules sharing the body);
* slot assertions → ``slot(X, 'name', value)`` heads; conditions render
  as comparison atoms.

This is a *pretty-printer*, not an evaluator — the generative semantics
already lives in :mod:`repro.wglog.semantics` — but the output is valid
Datalog-with-negation syntax, so it doubles as documentation of each
rule's logical reading.
"""

from __future__ import annotations

from ..engine.conditions import (
    And,
    Arith,
    AttributeOf,
    Comparison,
    Condition,
    Const,
    ContentOf,
    NameOf,
    Not,
    Operand,
    Or,
    Regex,
)
from .ast import RuleGraph
from .matcher import _split_negation  # the same fragment analysis

__all__ = ["to_datalog"]


def _var(node_id: str) -> str:
    return node_id.upper() if node_id else "_"


def _value(value: object) -> str:
    if isinstance(value, str):
        return f"'{value}'"
    return str(value)


def _operand(operand: Operand) -> str:
    if isinstance(operand, Const):
        return _value(operand.value)
    if isinstance(operand, ContentOf):
        return _var(operand.variable)
    if isinstance(operand, AttributeOf):
        return f"slot_of({_var(operand.variable)}, '{operand.name}')"
    if isinstance(operand, NameOf):
        return f"label_of({_var(operand.variable)})"
    assert isinstance(operand, Arith)
    return f"({_operand(operand.left)} {operand.op} {_operand(operand.right)})"


def _condition_atoms(condition: Condition) -> list[str]:
    if isinstance(condition, And):
        atoms: list[str] = []
        for sub in condition.conditions:
            atoms.extend(_condition_atoms(sub))
        return atoms
    if isinstance(condition, Comparison):
        return [f"{_operand(condition.left)} {condition.op} {_operand(condition.right)}"]
    if isinstance(condition, Regex):
        return [f"match({_operand(condition.operand)}, '{condition.pattern}')"]
    if isinstance(condition, Not):
        inner = _condition_atoms(condition.condition)
        if len(inner) == 1:
            return [f"not {inner[0]}"]
        return ["not (" + ", ".join(inner) + ")"]
    if isinstance(condition, Or):
        branches = [
            ", ".join(_condition_atoms(sub)) for sub in condition.conditions
        ]
        return ["(" + " ; ".join(branches) + ")"]
    return []  # TRUE


def to_datalog(rule: RuleGraph) -> str:
    """The rule's Datalog reading (one line per green head)."""
    rule.validate()
    core_ids, fragments = _split_negation(rule)

    body: list[str] = []
    for node in rule.red_nodes():
        if node.id in core_ids and node.label is not None:
            body.append(f"node({_var(node.id)}, '{node.label}')")
    fragment_nodes = set().union(*[f for _, f in fragments]) if fragments else set()
    for edge in rule.red_edges():
        if edge.crossed:
            continue
        if edge.source in fragment_nodes or edge.target in fragment_nodes:
            continue
        predicate = "path" if edge.path else "edge"
        body.append(
            f"{predicate}({_var(edge.source)}, '{edge.label}', {_var(edge.target)})"
        )
    for crossed, fragment in fragments:
        predicate = "path" if crossed.path else "edge"
        atom = f"{predicate}({_var(crossed.source)}, '{crossed.label}', {_var(crossed.target)})"
        extras = []
        for node_id in sorted(fragment):
            node = rule.nodes[node_id]
            if node.label is not None:
                extras.append(f"node({_var(node_id)}, '{node.label}')")
        for edge in rule.red_edges():
            if edge.crossed or edge is crossed:
                continue
            if edge.source in fragment or edge.target in fragment:
                extras.append(
                    f"edge({_var(edge.source)}, '{edge.label}', {_var(edge.target)})"
                )
        if extras:
            body.append("not (" + ", ".join([atom] + extras) + ")")
        else:
            body.append(f"not {atom}")
    for condition in rule.conditions:
        body.extend(_condition_atoms(condition))

    heads: list[str] = []
    collector_ids = {n.id for n in rule.green_nodes() if n.collector}
    for node in rule.green_nodes():
        suffix = " /* collector: one per rule application */" if node.collector else ""
        heads.append(f"node({_var(node.id)}, '{node.label or '?'}'){suffix}")
    for edge in rule.green_edges():
        heads.append(
            f"edge({_var(edge.source)}, '{edge.label}', {_var(edge.target)})"
        )
    for assertion in rule.slot_assertions:
        if assertion.value is not None:
            value = _value(assertion.value)
        else:
            value = (
                f"slot_of({_var(assertion.from_node)}, '{assertion.from_slot}')"
            )
        heads.append(f"slot({_var(assertion.node)}, '{assertion.name}', {value})")

    body_text = ", ".join(body) if body else "true"
    name = rule.name or "query"
    if not heads:
        head_vars = ", ".join(_var(n) for n in sorted(core_ids))
        return f"{name}({head_vars}) :- {body_text}."
    lines = [f"{head} :- {body_text}." for head in heads]
    return "\n".join(lines)
