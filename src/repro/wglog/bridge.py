"""Bridging XML documents and WG-Log instance graphs.

The comparison framework runs "the same query" through both languages; for
that, one dataset must be visible to both.  :func:`document_to_instance`
maps an XML document onto a G-Log graph:

* every element becomes an entity labelled with its tag;
* attributes become slots;
* non-empty immediate text becomes a ``text`` slot;
* parent→child element containment becomes ``child`` edges (a custom label
  can be chosen);
* ID/IDREF references become edges labelled with the referring attribute —
  this is where the *graph* nature of semi-structured data surfaces.

:func:`instance_to_document` serialises a (tree-shaped reachable part of a)
graph back to XML for inspection.
"""

from __future__ import annotations

from typing import Hashable

from ..errors import BridgeError
from ..ssd.identity import IdentityIndex
from ..ssd.model import Document, Element
from .data import InstanceGraph

__all__ = ["document_to_instance", "instance_to_document", "CHILD_EDGE", "TEXT_SLOT"]

#: Default label of containment edges.
CHILD_EDGE = "child"
#: Slot name carrying element text.
TEXT_SLOT = "text"

NodeId = Hashable


def document_to_instance(
    document: Document,
    child_label: str = CHILD_EDGE,
    reference_attributes: bool = True,
    idref_attributes: tuple[str, ...] = ("idref", "ref", "cites"),
    idrefs_attributes: tuple[str, ...] = ("idrefs", "refs"),
) -> tuple[InstanceGraph, dict[int, NodeId]]:
    """Map a document onto an instance graph.

    Returns ``(instance, element_map)`` where ``element_map`` maps
    ``id(element)`` to the corresponding entity id (useful in tests and in
    the comparison framework to align bindings).
    """
    root = document.root
    if root is None:
        raise BridgeError("document has no root element")
    instance = InstanceGraph()
    element_map: dict[int, NodeId] = {}
    for element in document.iter():
        entity = instance.add_entity(element.tag)
        element_map[id(element)] = entity
        for name, value in element.attributes.items():
            instance.add_slot(entity, name, value)
        text = element.immediate_text().strip()
        if text:
            instance.add_slot(entity, TEXT_SLOT, text)
    for element in document.iter():
        source = element_map[id(element)]
        for child in element.child_elements():
            instance.relate(source, element_map[id(child)], child_label)
    if reference_attributes:
        index = IdentityIndex(
            document,
            idref_attributes=idref_attributes,
            idrefs_attributes=idrefs_attributes,
        )
        for reference in index.edges():
            instance.relate(
                element_map[id(reference.source)],
                element_map[id(reference.target)],
                reference.attribute,
            )
    return instance, element_map


def instance_to_document(
    instance: InstanceGraph,
    root: NodeId,
    child_label: str = CHILD_EDGE,
    max_depth: int = 100,
) -> Document:
    """Serialise the ``child_label``-tree reachable from ``root`` to XML.

    Slots become attributes (the ``text`` slot becomes text content).
    Cycles over ``child_label`` edges raise :class:`BridgeError` (XML is a
    tree; non-tree edges are simply skipped and can be exported separately).
    """
    if root not in instance.graph:
        raise BridgeError(f"unknown root entity {root!r}")

    def build(entity: NodeId, depth: int, trail: set[NodeId]) -> Element:
        if depth > max_depth:
            raise BridgeError(f"tree deeper than {max_depth}; cycle suspected")
        if entity in trail:
            raise BridgeError(f"containment cycle through {entity!r}")
        element = Element(instance.label(entity))
        for name, value in instance.slots(entity).items():
            if name == TEXT_SLOT:
                element.append(str(value))
            else:
                element.set(name, str(value))
        for edge in instance.relationships(entity, child_label):
            element.append(build(edge.target, depth + 1, trail | {entity}))
        return element

    return Document(build(root, 0, set()))
