"""Generative semantics of WG-Log / G-Log.

A rule's declarative reading: an instance *satisfies* the rule when every
embedding of the red part extends to an embedding of the red+green part.
The *generative* reading (what the query system executes): for every red
embedding that has no green extension, add a **minimal** set of new nodes,
edges and slots realising the green part.

A program is a sequence of rules applied round-robin to a fixpoint.
Implementation choices (documented because G-Log's minimal-model semantics
leaves them open):

* Each unsatisfied embedding instantiates its own copies of the green
  nodes; satisfaction is re-checked before every instantiation, so rule
  application is idempotent and the fixpoint terminates whenever the rule
  set is *safe* (green labels do not re-trigger their own red parts with
  fresh nodes forever).  A ``max_rounds`` guard turns runaway recursion
  into an error instead of a hang.
* Collector (triangle) nodes are instantiated once per rule application
  and linked to every match; an existing node already linked to all
  matches satisfies the collector.
* Rules with crossed edges are treated as in stratified Datalog: apply
  them after the rules that derive their negated labels (the caller
  controls rule order; rounds re-run all rules, so a monotone program
  converges regardless).
"""

from __future__ import annotations

from typing import Hashable, Optional

from ..engine.bindings import Binding
from ..engine.stats import EvalStats
from ..errors import EvaluationError
from ..graph.matching import MatchSpec, find_homomorphisms
from ..graph.labeled_graph import LabeledGraph
from .ast import Color, RuleGraph
from .data import InstanceGraph
from .matcher import embeddings
from .schema import WGSchema

__all__ = ["satisfies", "apply_rule", "apply_program", "query", "answer_graph"]

NodeId = Hashable


def query(
    rule: RuleGraph,
    instance: InstanceGraph,
    schema: Optional[WGSchema] = None,
    injective: bool = False,
    stats: Optional[EvalStats] = None,
    *,
    options=None,
    trace: Optional[bool] = None,
    budget=None,
):
    """Evaluate a rule as a query: the embeddings of its red part.

    Accepts the unified keyword-only ``options=`` / ``trace=`` /
    ``budget=`` run contract (see
    :func:`repro.xmlgl.evaluator.evaluate_rule` — identical semantics and
    defaults): ``options`` (a :class:`~repro.engine.options.MatchOptions`)
    selects the evaluation engine, ``trace`` overrides its trace flag, and
    ``budget`` (a :class:`~repro.engine.limits.QueryBudget`) governs the
    run — raising typed errors or returning a truncated binding set
    flagged ``stats.extra["truncated"]`` under ``on_limit="partial"``.
    """
    return embeddings(
        rule, instance, schema=schema, injective=injective, stats=stats,
        options=options, trace=trace, budget=budget,
    )


def satisfies(
    instance: InstanceGraph,
    rule: RuleGraph,
    schema: Optional[WGSchema] = None,
    injective: bool = False,
) -> bool:
    """Declarative reading: every red embedding has a green extension."""
    matched = embeddings(rule, instance, schema=schema, injective=injective)
    for binding in matched:
        if not _green_satisfied(rule, instance, binding):
            return False
    return _collectors_satisfied(rule, instance, list(matched))


def apply_rule(
    instance: InstanceGraph,
    rule: RuleGraph,
    schema: Optional[WGSchema] = None,
    injective: bool = False,
    stats: Optional[EvalStats] = None,
) -> int:
    """Generative reading: mutate ``instance`` minimally; return additions.

    The returned count is the number of nodes + edges + slots added; zero
    means the instance already satisfied the rule.
    """
    matched = list(
        embeddings(rule, instance, schema=schema, injective=injective, stats=stats)
    )
    additions = 0
    collector_ids = {n.id for n in rule.green_nodes() if n.collector}
    for binding in matched:
        if _green_satisfied(rule, instance, binding):
            continue
        additions += _instantiate_green(rule, instance, binding, collector_ids)
    additions += _instantiate_collectors(rule, instance, matched)
    return additions


def apply_program(
    instance: InstanceGraph,
    rules: list[RuleGraph],
    schema: Optional[WGSchema] = None,
    injective: bool = False,
    max_rounds: int = 100,
    stats: Optional[EvalStats] = None,
) -> int:
    """Apply rules round-robin until no rule adds anything.

    Returns total additions.  Raises :class:`EvaluationError` when
    ``max_rounds`` passes do not reach a fixpoint (unsafe recursion).
    """
    total = 0
    for _ in range(max_rounds):
        round_additions = 0
        for rule in rules:
            round_additions += apply_rule(
                instance, rule, schema=schema, injective=injective, stats=stats
            )
        total += round_additions
        if round_additions == 0:
            return total
    raise EvaluationError(
        f"program did not reach a fixpoint within {max_rounds} rounds; "
        "the rule set is likely unsafe (green part keeps re-triggering)"
    )


# ---------------------------------------------------------------------------
# Green-part satisfaction
# ---------------------------------------------------------------------------

def _resolve_slot_value(rule: RuleGraph, instance, binding: Binding, assertion):
    if assertion.value is not None:
        return assertion.value
    source = binding[assertion.from_node]
    value = instance.slot_value(source, assertion.from_slot)
    if value is None:
        raise EvaluationError(
            f"cannot copy slot {assertion.from_slot!r} of {source!r}: absent"
        )
    return value


def _green_satisfied(
    rule: RuleGraph, instance: InstanceGraph, binding: Binding
) -> bool:
    """Is this embedding's per-embedding green part already realised?

    Collectors are handled globally and skipped here.
    """
    collector_ids = {n.id for n in rule.green_nodes() if n.collector}
    # 1. green edges between red nodes
    for edge in rule.green_edges():
        if edge.source in collector_ids or edge.target in collector_ids:
            continue
        source_red = rule.nodes[edge.source].color is Color.RED
        target_red = rule.nodes[edge.target].color is Color.RED
        if source_red and target_red:
            if not instance.has_relationship(
                binding[edge.source], binding[edge.target], edge.label
            ):
                return False
    # 2. slot assertions on red nodes
    for assertion in rule.slot_assertions:
        if rule.nodes[assertion.node].color is Color.RED:
            wanted = _resolve_slot_value(rule, instance, binding, assertion)
            if instance.slot_value(binding[assertion.node], assertion.name) != wanted:
                return False
    # 3. green nodes (non-collector) with their incident green edges + slots
    green_plain = [
        n for n in rule.green_nodes() if not n.collector
    ]
    if not green_plain:
        return True
    return _green_nodes_embed(rule, instance, binding, green_plain)


def _green_nodes_embed(
    rule: RuleGraph, instance: InstanceGraph, binding: Binding, green_plain
) -> bool:
    """Check existence of instance nodes realising the plain green nodes."""
    pattern = LabeledGraph()
    boundary: set[str] = set()
    green_ids = {n.id for n in green_plain}
    for node in green_plain:
        pattern.add_node(node.id, node.label or "*")
    for edge in rule.green_edges():
        touched = {edge.source, edge.target} & green_ids
        if not touched:
            continue
        for endpoint in (edge.source, edge.target):
            if endpoint not in green_ids:
                if rule.nodes[endpoint].color is Color.GREEN:
                    return True  # collector endpoint: handled globally
                boundary.add(endpoint)
                if endpoint not in pattern:
                    pattern.add_node(endpoint, rule.nodes[endpoint].label or "*")
        pattern.add_edge(edge.source, edge.target, edge.label)

    slot_requirements: dict[str, dict[str, object]] = {}
    for assertion in rule.slot_assertions:
        if assertion.node in green_ids:
            value = _resolve_slot_value(rule, instance, binding, assertion)
            slot_requirements.setdefault(assertion.node, {})[assertion.name] = value

    def compat(pnode, dnode) -> bool:
        if pnode in boundary:
            return dnode == binding[pnode]
        if instance.is_slot(dnode):
            return False
        wanted = rule.nodes[pnode].label
        if wanted is not None and instance.label(dnode) != wanted:
            return False
        for name, value in slot_requirements.get(pnode, {}).items():
            if instance.slot_value(dnode, name) != value:
                return False
        return True

    spec = MatchSpec(injective=False, node_compat=compat)
    for _ in find_homomorphisms(pattern, instance.graph, spec):
        return True
    return False


def _instantiate_green(
    rule: RuleGraph,
    instance: InstanceGraph,
    binding: Binding,
    collector_ids: set[str],
) -> int:
    """Add the per-embedding green structure; returns additions count."""
    additions = 0
    created: dict[str, NodeId] = {}
    for node in rule.green_nodes():
        if node.collector:
            continue
        if node.label is None:
            raise EvaluationError(
                f"green node {node.id!r} needs a label to be created"
            )
        created[node.id] = instance.add_entity(node.label)
        additions += 1

    def resolve(node_id: str) -> NodeId:
        if node_id in created:
            return created[node_id]
        return binding[node_id]

    for edge in rule.green_edges():
        if edge.source in collector_ids or edge.target in collector_ids:
            continue
        before = instance.graph.edge_count()
        instance.relate(resolve(edge.source), resolve(edge.target), edge.label)
        if instance.graph.edge_count() > before:
            additions += 1
    for assertion in rule.slot_assertions:
        if assertion.node in collector_ids:
            continue
        target = resolve(assertion.node)
        value = _resolve_slot_value(rule, instance, binding, assertion)
        if instance.slot_value(target, assertion.name) != value:
            instance.add_slot(target, assertion.name, value)
            additions += 1
    return additions


# ---------------------------------------------------------------------------
# Collectors (the aggregation triangle)
# ---------------------------------------------------------------------------

def _collector_targets(
    rule: RuleGraph, matched: list[Binding], collector_id: str
) -> dict[str, set[NodeId]]:
    """Per edge-label target sets of one collector over all embeddings."""
    targets: dict[str, set[NodeId]] = {}
    for edge in rule.green_edges():
        if edge.source != collector_id:
            continue
        bucket = targets.setdefault(edge.label, set())
        for binding in matched:
            bucket.add(binding[edge.target])
    return targets


def _collectors_satisfied(
    rule: RuleGraph, instance: InstanceGraph, matched: list[Binding]
) -> bool:
    for node in rule.green_nodes():
        if not node.collector:
            continue
        if not matched:
            continue
        targets = _collector_targets(rule, matched, node.id)
        if _find_collector_host(instance, node.label, targets) is None:
            return False
    return True


def _find_collector_host(
    instance: InstanceGraph, label: Optional[str], targets: dict[str, set[NodeId]]
) -> Optional[NodeId]:
    """An existing entity already linked to every collected target."""
    for candidate in instance.entities(label):
        if all(
            all(
                instance.has_relationship(candidate, target, edge_label)
                for target in wanted
            )
            for edge_label, wanted in targets.items()
        ):
            return candidate
    return None


def _instantiate_collectors(
    rule: RuleGraph, instance: InstanceGraph, matched: list[Binding]
) -> int:
    additions = 0
    for node in rule.green_nodes():
        if not node.collector or not matched:
            continue
        if node.label is None:
            raise EvaluationError(
                f"collector {node.id!r} needs a label to be created"
            )
        targets = _collector_targets(rule, matched, node.id)
        host = _find_collector_host(instance, node.label, targets)
        if host is not None:
            continue
        # Reuse a partially linked collector of the same label if present,
        # so repeated applications extend instead of multiplying.
        partial = None
        for candidate in instance.entities(node.label):
            if any(
                instance.has_relationship(candidate, target, edge_label)
                for edge_label, wanted in targets.items()
                for target in wanted
            ):
                partial = candidate
                break
        if partial is None:
            partial = instance.add_entity(node.label)
            additions += 1
        for edge_label, wanted in targets.items():
            for target in wanted:
                if not instance.has_relationship(partial, target, edge_label):
                    instance.relate(partial, target, edge_label)
                    additions += 1
        for assertion in rule.slot_assertions:
            if assertion.node == node.id and assertion.value is not None:
                if instance.slot_value(partial, assertion.name) != assertion.value:
                    instance.add_slot(partial, assertion.name, assertion.value)
                    additions += 1
    return additions


def answer_graph(
    rule: RuleGraph,
    instance: InstanceGraph,
    schema: Optional[WGSchema] = None,
    injective: bool = False,
) -> InstanceGraph:
    """The query answer *as a graph* (G-Log's formal reading).

    The answer to a pure query is the sub-instance induced by all red
    embeddings: every matched entity (with its slots) and every instance
    edge realising a matched red edge.  Path edges contribute their
    endpoint entities only (the intermediate hops are not part of the
    answer).  The result is a fresh :class:`InstanceGraph` that conforms
    to any schema the input conformed to.
    """
    matched = list(embeddings(rule, instance, schema=schema, injective=injective))
    answer = InstanceGraph()
    included: set[NodeId] = set()
    for binding in matched:
        for node_id in binding.values():
            if node_id in included or instance.is_slot(node_id):
                continue
            included.add(node_id)
            answer.add_entity(instance.label(node_id), node_id)
            for name, value in instance.slots(node_id).items():
                answer.add_slot(node_id, name, value)
    for binding in matched:
        for edge in rule.red_edges():
            if edge.crossed or edge.path:
                continue
            source = binding.get(edge.source)
            target = binding.get(edge.target)
            if source is None or target is None:
                continue
            if instance.has_relationship(source, target, edge.label):
                answer.relate(source, target, edge.label)
    return answer
