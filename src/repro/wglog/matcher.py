"""Embedding enumeration for WG-Log rules.

The red part of a rule is matched against an instance graph via the generic
subgraph matcher.  Two WG-Log specifics are layered on top:

* **∀-negation for crossed edges.**  Following the Datalog-style safety
  convention G-Log inherits, a node appearing *only* behind crossed edges is
  universally quantified inside the negation: ``idx =/=> d [index]`` with
  ``idx`` otherwise unconstrained means "no node links to d with an index
  edge" (GraphLog's root-link example).  A crossed edge between two
  positively bound nodes is plain pairwise negation.
* **Schema checking.**  WG-Log queries are schema-based: with a schema
  supplied, red node labels must be declared entity types and red edges
  declared relations, caught *before* evaluation — the editor-level safety
  the paper attributes to schema-aware languages.
"""

from __future__ import annotations

from typing import Any, Hashable, Optional

from ..engine.bindings import Binding, BindingSet
from ..engine.conditions import condition_variables
from ..engine.limits import QueryBudget, arm_budget, mark_truncated
from ..engine.options import MatchOptions
from ..engine.stats import EvalStats
from ..engine.trace import Tracer, span as trace_span
from ..errors import BudgetExceeded, QueryStructureError, SchemaError
from ..graph.labeled_graph import Edge, LabeledGraph
from ..graph.matching import MatchSpec, find_homomorphisms, find_homomorphisms_setwise
from .ast import Color, RuleEdge, RuleGraph
from .data import SLOT_LABEL, InstanceGraph
from .schema import WGSchema

__all__ = ["GraphAccessor", "embeddings", "check_against_schema"]

NodeId = Hashable


class GraphAccessor:
    """Condition accessor reading slots/labels of bound instance nodes."""

    def __init__(self, instance: InstanceGraph) -> None:
        self._instance = instance

    def content(self, value: Any) -> Any:
        """Atomic view: slot nodes yield their value; entities have none."""
        if value in self._instance.graph and self._instance.is_slot(value):
            return self._instance.graph.value(value)
        return None

    def attribute(self, value: Any, name: str) -> Optional[Any]:
        """Slot ``name`` of a bound entity."""
        if value in self._instance.graph:
            return self._instance.slot_value(value, name)
        return None

    def name(self, value: Any) -> str:
        """Entity type of a bound node."""
        return self._instance.label(value)


def check_against_schema(rule: RuleGraph, schema: WGSchema) -> None:
    """Reject rules whose red part cannot possibly match a conformant
    instance: undeclared labels or undeclared relations.

    Wildcard endpoints and path edges are skipped (any label may realise
    them).  Green parts are checked too: derived structure should also be
    expressible in the schema, which is how WG-Log keeps derived graphs
    queryable.
    """
    for node in rule.nodes.values():
        if node.label is not None and not schema.has_entity(node.label):
            raise SchemaError(
                f"rule node {node.id!r} uses undeclared entity type "
                f"{node.label!r}"
            )
    for edge in rule.edges:
        if edge.path:
            continue
        source = rule.nodes[edge.source].label
        target = rule.nodes[edge.target].label
        if source is None or target is None:
            continue
        if not schema.allows_relation(source, edge.label, target):
            raise SchemaError(
                f"rule edge {source} -{edge.label}-> {target} is not a "
                "declared relation"
            )


def embeddings(
    rule: RuleGraph,
    instance: InstanceGraph,
    schema: Optional[WGSchema] = None,
    injective: bool = False,
    stats: Optional[EvalStats] = None,
    preflight: bool = True,
    *,
    options: Optional[MatchOptions] = None,
    trace: Optional[bool] = None,
    budget: Optional[QueryBudget] = None,
) -> BindingSet:
    """All embeddings of the rule's red part into ``instance``.

    Returns bindings from red node ids to instance node ids.  ``injective``
    requires distinct red nodes to bind distinct instance nodes (G-Log
    embeddings); the default is homomorphic matching.

    The keyword-only ``options=`` / ``trace=`` / ``budget=`` trio is the
    unified run contract shared with the XML-GL evaluator and
    ``QuerySession.run``: ``trace`` overrides ``options.trace``, ``budget``
    overrides ``options.budget``.  A tripped budget raises
    :class:`~repro.errors.BudgetExceeded` carrying the partial stats, or —
    under ``on_limit="partial"`` — returns the bindings gathered so far,
    flagged ``stats.extra["truncated"]``.

    ``options.engine`` picks the evaluation strategy: the set-at-a-time
    pipeline (default; forest-shaped rule fragments reduce by semi-joins,
    the rest falls back per fragment), the node-at-a-time backtracking
    core, or the narrowing-free naive scan (the ablation baseline).

    ``preflight`` (default on) first asks the static analyser whether the
    red part can embed anywhere at all; a proof of unsatisfiability —
    contradictory predicates, a content comparison on an entity node —
    short-circuits to an empty binding set, counted in
    ``stats.preflight_skips``.  Structural and schema violations still
    raise (the pre-flight runs after ``validate`` and the schema check).
    """
    rule.validate()
    if schema is not None:
        check_against_schema(rule, schema)
    options = options or MatchOptions()
    stats = stats if stats is not None else EvalStats()
    tracing = trace if trace is not None else options.trace
    if tracing and stats.trace is None:
        stats.trace = Tracer()
    state = arm_budget(
        stats, budget if budget is not None else options.budget
    )
    if options.rewrite:
        from ..analysis.rewrite import rewrite_rulegraph

        with trace_span(stats.trace, "rewrite") as rewrite_span:
            rule, rewrite_report = rewrite_rulegraph(rule)
            if rewrite_span is not None:
                rewrite_span["summary"] = rewrite_report.describe()
                rewrite_span["changed"] = rewrite_report.changed
        for name, value in rewrite_report.counters.items():
            stats.bump(f"rewrite_{name}", value)
        if rewrite_report.static_false:
            stats.preflight_skips += 1
            return BindingSet()
    if preflight:
        from ..analysis.preflight import wglog_preflight

        stats.preflight_runs += 1
        if wglog_preflight(rule) is not None:
            stats.preflight_skips += 1
            return BindingSet()
    accessor = GraphAccessor(instance)

    core_ids, fragments = _split_negation(rule)
    pattern, spec_edges = _red_pattern(rule, core_ids)
    engine = options.resolved_engine()
    spec = MatchSpec(
        injective=injective,
        node_compat=_compat(rule, instance),
        path_edges=spec_edges["path"],
        negated_edges=spec_edges["negated"],
        narrow=engine != "naive",
    )
    results = BindingSet()
    with trace_span(stats.trace, "match", engine=engine, language="wglog"):
        if engine in ("pipeline", "adaptive"):
            mappings = find_homomorphisms_setwise(
                pattern,
                instance.graph,
                spec,
                stats=stats,
                adaptive=engine == "adaptive",
            )
        else:
            mappings = find_homomorphisms(
                pattern, instance.graph, spec, stats=stats
            )

        try:
            for mapping in mappings:
                stats.candidates_tried += 1
                if state is not None:
                    state.charge()
                if any(
                    _fragment_exists(
                        rule, instance, fragment, crossed, mapping, injective
                    )
                    for crossed, fragment in fragments
                ):
                    continue
                binding = Binding(mapping)
                ok = True
                for condition in rule.conditions:
                    stats.condition_checks += 1
                    if not condition.evaluate(binding, accessor):
                        ok = False
                        break
                if ok:
                    if state is not None:
                        state.check_bindings(stats.bindings_produced + 1)
                    results.add(binding)
                    stats.bindings_produced += 1
        except BudgetExceeded as exc:
            if state is None or not state.budget.partial:
                raise
            mark_truncated(stats, exc.limit)
    return results


# ---------------------------------------------------------------------------
# Negation splitting
# ---------------------------------------------------------------------------

def _positively_anchored(rule: RuleGraph) -> set[str]:
    """Red nodes referenced outside crossed edges (the ∃-quantified ones)."""
    anchored: set[str] = set()
    for edge in rule.red_edges():
        if not edge.crossed:
            anchored.add(edge.source)
            anchored.add(edge.target)
    for edge in rule.green_edges():
        for endpoint in (edge.source, edge.target):
            if rule.nodes[endpoint].color is Color.RED:
                anchored.add(endpoint)
    for assertion in rule.slot_assertions:
        if rule.nodes[assertion.node].color is Color.RED:
            anchored.add(assertion.node)
        if assertion.from_node is not None:
            anchored.add(assertion.from_node)
    for condition in rule.conditions:
        anchored |= {
            v for v in condition_variables(condition) if v in rule.nodes
        }
    crossed_endpoints: set[str] = set()
    for edge in rule.red_edges():
        if edge.crossed:
            crossed_endpoints.add(edge.source)
            crossed_endpoints.add(edge.target)
    for node in rule.red_nodes():
        if node.id not in crossed_endpoints and node.id not in anchored:
            anchored.add(node.id)  # isolated red node: positively matched
    return anchored


def _split_negation(
    rule: RuleGraph,
) -> tuple[set[str], list[tuple[RuleEdge, set[str]]]]:
    """Split red nodes into the positive core and ∀-negated fragments.

    Returns ``(core_node_ids, [(crossed_edge, fragment_node_ids), ...])``
    where fragments are empty for pairwise (both-ends-bound) negations.
    """
    anchored = _positively_anchored(rule)
    red_ids = {n.id for n in rule.red_nodes()}
    adjacency: dict[str, set[str]] = {n: set() for n in red_ids}
    for edge in rule.red_edges():
        if not edge.crossed:
            adjacency[edge.source].add(edge.target)
            adjacency[edge.target].add(edge.source)

    fragments: list[tuple[RuleEdge, set[str]]] = []
    in_fragments: set[str] = set()
    for edge in rule.red_edges():
        if not edge.crossed:
            continue
        source_anchored = edge.source in anchored
        target_anchored = edge.target in anchored
        if source_anchored and target_anchored:
            fragments.append((edge, set()))  # pairwise negation
            continue
        far = edge.target if source_anchored else edge.source
        if not source_anchored and not target_anchored:
            raise QueryStructureError(
                f"crossed edge {edge.describe()} has no positively bound "
                "endpoint; anchor one side in the positive pattern"
            )
        fragment: set[str] = set()
        stack = [far]
        while stack:
            node = stack.pop()
            if node in fragment or node in anchored:
                continue
            fragment.add(node)
            stack.extend(adjacency[node])
        fragments.append((edge, fragment))
        in_fragments |= fragment
    core = red_ids - in_fragments
    return core, fragments


def _red_pattern(
    rule: RuleGraph, core_ids: set[str]
) -> tuple[LabeledGraph, dict[str, set[Edge]]]:
    """The core red pattern as a LabeledGraph plus special edge sets."""
    pattern = LabeledGraph()
    for node_id in core_ids:
        node = rule.nodes[node_id]
        pattern.add_node(node_id, node.label or "*")
    special: dict[str, set[Edge]] = {"path": set(), "negated": set()}
    for edge in rule.red_edges():
        if edge.source not in core_ids or edge.target not in core_ids:
            continue
        graph_edge = Edge(edge.source, edge.target, edge.label)
        if edge.crossed:
            special["negated"].add(graph_edge)
        if edge.path:
            special["path"].add(graph_edge)
        pattern.add_edge(edge.source, edge.target, edge.label)
    return pattern, special


def _compat(rule: RuleGraph, instance: InstanceGraph):
    """Node compatibility: labels must agree and entities never bind slots."""

    def compat(pnode: NodeId, dnode: NodeId) -> bool:
        wanted = rule.nodes[pnode].label
        actual = instance.graph.label(dnode)
        if actual == SLOT_LABEL:
            return wanted == SLOT_LABEL
        return wanted is None or wanted == actual

    return compat


def _fragment_exists(
    rule: RuleGraph,
    instance: InstanceGraph,
    fragment: set[str],
    crossed: RuleEdge,
    mapping: dict[str, NodeId],
    injective: bool,
) -> bool:
    """Does the ∀-negated fragment embed, given the core assignment?

    For pairwise negations (empty fragment) the generic matcher has already
    handled the check via ``negated_edges``; return False here.
    """
    if not fragment:
        return False
    boundary = {crossed.source, crossed.target} - fragment
    pattern = LabeledGraph()
    for node_id in fragment | boundary:
        node = rule.nodes[node_id]
        pattern.add_node(node_id, node.label or "*")
    # the crossed edge becomes a *positive* requirement inside the check
    path_edges: set[Edge] = set()
    crossed_edge = Edge(crossed.source, crossed.target, crossed.label)
    pattern.add_edge(crossed.source, crossed.target, crossed.label)
    if crossed.path:
        path_edges.add(crossed_edge)
    for edge in rule.red_edges():
        if edge is crossed or edge.crossed:
            continue
        if edge.source in fragment or edge.target in fragment:
            graph_edge = Edge(edge.source, edge.target, edge.label)
            pattern.add_edge(edge.source, edge.target, edge.label)
            if edge.path:
                path_edges.add(graph_edge)

    base_compat = _compat(rule, instance)

    def compat(pnode: NodeId, dnode: NodeId) -> bool:
        if pnode in boundary:
            return dnode == mapping[pnode]
        return base_compat(pnode, dnode)

    spec = MatchSpec(
        injective=injective, node_compat=compat, path_edges=path_edges
    )
    for _ in find_homomorphisms(pattern, instance.graph, spec):
        return True
    return False
