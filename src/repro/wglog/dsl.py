r"""Textual concrete syntax for WG-Log.

As with XML-GL, the reference syntax is the drawing; this textual form maps
one-to-one onto it for headless use.

Grammar::

    program   = [schema] rule+
    schema    = "schema" "{" sdecl* "}"
    sdecl     = "entity" NAME ["{" slot ("," slot)* "}"]
              | "relation" NAME "-" NAME "->" NAME
    slot      = NAME ":" TYPE ["required"]        -- TYPE in string/int/float/bool/any
    rule      = "rule" [NAME] "{" match [construct] [where] "}"
    match     = "match" "{" mitem* "}"
    mitem     = NAME ":" (NAME | "*")             -- red node  id: Label
              | ["no"] NAME edge NAME             -- red edge; "no" = crossed
    edge      = "-" NAME "->" | "-" NAME "*->"    -- "*->" = dashed path edge
    construct = "construct" "{" citem* "}"
    citem     = NAME ":" NAME ["collect"]         -- green node (collect = triangle)
              | NAME "-" NAME "->" NAME           -- green edge
              | NAME "." NAME "=" (literal | NAME "." NAME)   -- slot assertion
    where     = "where" cond                      -- condition grammar as in XML-GL:
                                                  --   X.slot < 5, name(X) = 'page',
                                                  --   and/or/not, ~ /regex/

Example (GraphLog's sibling rule)::

    rule sibling {
      match {
        d1: Document
        d2: Document
        idx: Document
        idx -index-> d1
        idx -index-> d2
      }
      construct { d1 -sibling-> d2 }
    }
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from ..engine.conditions import (
    And,
    Arith,
    AttributeOf,
    Comparison,
    Condition,
    Const,
    ContentOf,
    NameOf,
    Not,
    Operand,
    Or,
    Regex,
)
from ..errors import QuerySyntaxError
from ..ssd.datatypes import coerce
from .ast import Color, RuleEdge, RuleGraph, RuleNode
from .schema import SlotDecl, WGSchema

__all__ = ["parse_wglog", "parse_rule"]

_CMP_OPS = {"=", "!=", "<", "<=", ">", ">="}

_PUNCT = [
    "*->", "->", "<=", ">=", "!=", "{", "}", "(", ")", ",", ":", ".",
    "=", "~", "<", ">", "+", "-", "*", "/",
]

# No hyphens in WG-Log names: '-' delimits edge syntax (a -label-> b).
_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NUMBER_RE = re.compile(r"\d+(\.\d+)?")


@dataclass
class _Token:
    kind: str
    value: str
    line: int
    column: int


def _tokenize(source: str) -> list[_Token]:
    tokens: list[_Token] = []
    line, column = 1, 1
    pos = 0
    n = len(source)
    while pos < n:
        ch = source[pos]
        if ch == "\n":
            line += 1
            column = 1
            pos += 1
            continue
        if ch in " \t\r":
            pos += 1
            column += 1
            continue
        if ch == "#":
            while pos < n and source[pos] != "\n":
                pos += 1
            continue
        if ch in "'\"":
            end = source.find(ch, pos + 1)
            if end == -1:
                raise QuerySyntaxError("unterminated string", line, column)
            tokens.append(_Token("string", source[pos + 1 : end], line, column))
            column += end - pos + 1
            pos = end + 1
            continue
        if ch == "/" and tokens and tokens[-1].kind == "punct" and tokens[-1].value == "~":
            index = pos + 1
            chunks: list[str] = []
            while index < n and source[index] != "/":
                if source[index] == "\\" and index + 1 < n and source[index + 1] == "/":
                    chunks.append("/")
                    index += 2
                else:
                    chunks.append(source[index])
                    index += 1
            if index >= n:
                raise QuerySyntaxError("unterminated regex", line, column)
            tokens.append(_Token("regex", "".join(chunks), line, column))
            column += index - pos + 1
            pos = index + 1
            continue
        match = _NUMBER_RE.match(source, pos)
        if match:
            tokens.append(_Token("number", match.group(), line, column))
            column += len(match.group())
            pos = match.end()
            continue
        match = _NAME_RE.match(source, pos)
        if match:
            tokens.append(_Token("name", match.group(), line, column))
            column += len(match.group())
            pos = match.end()
            continue
        for punct in _PUNCT:
            if source.startswith(punct, pos):
                tokens.append(_Token("punct", punct, line, column))
                column += len(punct)
                pos += len(punct)
                break
        else:
            raise QuerySyntaxError(f"unexpected character {ch!r}", line, column)
    return tokens


class _Parser:
    def __init__(self, source: str) -> None:
        self._tokens = _tokenize(source)
        self._pos = 0

    # -- plumbing ---------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Optional[_Token]:
        index = self._pos + offset
        return self._tokens[index] if index < len(self._tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise QuerySyntaxError("unexpected end of input")
        self._pos += 1
        return token

    def _error(self, message: str) -> QuerySyntaxError:
        token = self._peek()
        if token is None:
            return QuerySyntaxError(f"{message} (at end of input)")
        return QuerySyntaxError(
            f"{message}, found {token.value!r}", token.line, token.column
        )

    def _at_punct(self, value: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == "punct" and token.value == value

    def _at_name(self, value: Optional[str] = None) -> bool:
        token = self._peek()
        if token is None or token.kind != "name":
            return False
        return value is None or token.value == value

    def _expect_punct(self, value: str) -> None:
        if not self._at_punct(value):
            raise self._error(f"expected {value!r}")
        self._next()

    def _expect_name(self, value: Optional[str] = None) -> str:
        if not self._at_name(value):
            raise self._error(
                f"expected {'a name' if value is None else repr(value)}"
            )
        return self._next().value

    def _eat_name(self, value: str) -> bool:
        if self._at_name(value):
            self._next()
            return True
        return False

    # -- program -------------------------------------------------------------------

    def parse(self) -> tuple[Optional[WGSchema], list[RuleGraph]]:
        schema = None
        if self._at_name("schema"):
            schema = self._parse_schema()
        rules = []
        while self._at_name("rule"):
            rules.append(self._parse_rule())
        if self._peek() is not None:
            raise self._error("trailing input")
        if not rules:
            raise QuerySyntaxError("no rules found")
        return schema, rules

    # -- schema -------------------------------------------------------------------

    def _parse_schema(self) -> WGSchema:
        self._expect_name("schema")
        self._expect_punct("{")
        schema = WGSchema()
        pending_relations: list[tuple[str, str, str]] = []
        while not self._at_punct("}"):
            if self._eat_name("entity"):
                label = self._expect_name()
                slots: list[SlotDecl] = []
                if self._at_punct("{"):
                    self._next()
                    while not self._at_punct("}"):
                        slot_name = self._expect_name()
                        self._expect_punct(":")
                        slot_type = self._expect_name()
                        required = self._eat_name("required")
                        slots.append(SlotDecl(slot_name, slot_type, required))
                        if self._at_punct(","):
                            self._next()
                    self._next()
                schema.entity(label, *slots)
            elif self._eat_name("relation"):
                source = self._expect_name()
                self._expect_punct("-")
                label = self._expect_name()
                self._expect_punct("->")
                target = self._expect_name()
                pending_relations.append((source, label, target))
            else:
                raise self._error("expected 'entity' or 'relation'")
        self._next()
        for source, label, target in pending_relations:
            schema.relation(source, label, target)
        return schema

    # -- rules ---------------------------------------------------------------------

    def _parse_rule(self) -> RuleGraph:
        self._expect_name("rule")
        name = None
        if self._at_name() and not self._at_punct("{"):
            candidate = self._peek()
            if candidate.value != "match":
                name = self._next().value
        self._expect_punct("{")
        rule = RuleGraph(name=name)
        self._expect_name("match")
        self._expect_punct("{")
        while not self._at_punct("}"):
            self._parse_match_item(rule)
        self._next()
        if self._eat_name("construct"):
            self._expect_punct("{")
            while not self._at_punct("}"):
                self._parse_construct_item(rule)
            self._next()
        if self._eat_name("where"):
            rule.add_condition(self._parse_condition())
        self._expect_punct("}")
        rule.validate()
        return rule

    def _parse_match_item(self, rule: RuleGraph) -> None:
        crossed = self._eat_name("no")
        first = self._expect_name()
        if not crossed and self._at_punct(":"):
            self._next()
            if self._at_punct("*"):
                self._next()
                label: Optional[str] = None
            else:
                label = self._expect_name()
            rule.add_node(RuleNode(first, label, Color.RED))
            return
        # an edge: first -label-> target  /  first -label*-> target;
        # the label `_` matches/traverses any edge label (path edges only)
        self._expect_punct("-")
        label = self._expect_name()
        if label == "_":
            label = ""
        path = False
        if self._at_punct("*->"):
            self._next()
            path = True
        else:
            self._expect_punct("->")
        target = self._expect_name()
        if label == "" and not path:
            raise self._error("the any-label '_' needs a path edge (use -_*->)")
        self._implicit_node(rule, first)
        self._implicit_node(rule, target)
        rule.add_edge(
            RuleEdge(first, target, label, Color.RED, crossed=crossed, path=path)
        )

    def _implicit_node(self, rule: RuleGraph, node_id: str) -> None:
        if node_id not in rule.nodes:
            rule.add_node(RuleNode(node_id, None, Color.RED))

    def _parse_construct_item(self, rule: RuleGraph) -> None:
        first = self._expect_name()
        if self._at_punct(":"):
            self._next()
            label = self._expect_name()
            collector = self._eat_name("collect")
            rule.add_node(RuleNode(first, label, Color.GREEN, collector=collector))
            return
        if self._at_punct("."):
            self._next()
            slot_name = self._expect_name()
            self._expect_punct("=")
            token = self._peek()
            if token is None:
                raise self._error("expected a slot value")
            if token.kind in ("string", "number"):
                self._next()
                value = coerce(token.value) if token.kind == "number" else token.value
                rule.assert_slot(first, slot_name, value=value)
                return
            source_node = self._expect_name()
            self._expect_punct(".")
            source_slot = self._expect_name()
            rule.assert_slot(
                first, slot_name, from_node=source_node, from_slot=source_slot
            )
            return
        self._expect_punct("-")
        label = self._expect_name()
        self._expect_punct("->")
        target = self._expect_name()
        for endpoint in (first, target):
            if endpoint not in rule.nodes:
                raise self._error(
                    f"green edge endpoint {endpoint!r} must be declared first"
                )
        rule.add_edge(RuleEdge(first, target, label, Color.GREEN))

    # -- conditions -----------------------------------------------------------------

    def _parse_condition(self) -> Condition:
        parts = [self._parse_conjunction()]
        while self._eat_name("or"):
            parts.append(self._parse_conjunction())
        return parts[0] if len(parts) == 1 else Or(tuple(parts))

    def _parse_conjunction(self) -> Condition:
        parts = [self._parse_condition_unit()]
        while self._eat_name("and"):
            parts.append(self._parse_condition_unit())
        return parts[0] if len(parts) == 1 else And(tuple(parts))

    def _parse_condition_unit(self) -> Condition:
        if self._eat_name("not"):
            return Not(self._parse_condition_unit())
        if self._at_punct("(") and self._paren_holds_condition():
            self._next()
            condition = self._parse_condition()
            self._expect_punct(")")
            return condition
        return self._parse_comparison()

    def _paren_holds_condition(self) -> bool:
        depth = 0
        index = self._pos
        while index < len(self._tokens):
            token = self._tokens[index]
            if token.kind == "punct" and token.value == "(":
                depth += 1
            elif token.kind == "punct" and token.value == ")":
                depth -= 1
                if depth == 0:
                    return False
            elif depth == 1 and (
                (token.kind == "punct" and token.value in _CMP_OPS)
                or (token.kind == "name" and token.value in ("and", "or", "not"))
                or (token.kind == "punct" and token.value == "~")
            ):
                return True
            index += 1
        return False

    def _parse_comparison(self) -> Condition:
        left = self._parse_operand()
        if self._at_punct("~"):
            self._next()
            token = self._next()
            if token.kind != "regex":
                raise self._error("expected /regex/ after '~'")
            return Regex(left, token.value)
        token = self._peek()
        if token is None or token.kind != "punct" or token.value not in _CMP_OPS:
            raise self._error("expected a comparison operator")
        op = self._next().value
        return Comparison(op, left, self._parse_operand())

    def _parse_operand(self) -> Operand:
        left = self._parse_summand()
        while self._at_punct("+") or self._at_punct("-"):
            op = self._next().value
            left = Arith(op, left, self._parse_summand())
        return left

    def _parse_summand(self) -> Operand:
        left = self._parse_factor()
        while self._at_punct("*") or self._at_punct("/"):
            op = self._next().value
            left = Arith(op, left, self._parse_factor())
        return left

    def _parse_factor(self) -> Operand:
        token = self._peek()
        if token is None:
            raise self._error("expected an operand")
        if token.kind == "number":
            self._next()
            return Const(coerce(token.value))
        if token.kind == "string":
            self._next()
            return Const(token.value)
        if self._at_punct("("):
            self._next()
            operand = self._parse_operand()
            self._expect_punct(")")
            return operand
        if token.kind == "name":
            if token.value == "name" and self._peek(1) is not None and (
                self._peek(1).kind == "punct" and self._peek(1).value == "("
            ):
                self._next()
                self._next()
                variable = self._expect_name()
                self._expect_punct(")")
                return NameOf(variable)
            variable = self._next().value
            if self._at_punct("."):
                self._next()
                return AttributeOf(variable, self._expect_name())
            return ContentOf(variable)
        raise self._error("expected an operand")


def parse_wglog(source: str) -> tuple[Optional[WGSchema], list[RuleGraph]]:
    """Parse a WG-Log program: an optional schema block plus rules."""
    return _Parser(source).parse()


def parse_rule(source: str) -> RuleGraph:
    """Parse exactly one rule (convenience for tests and examples)."""
    schema, rules = parse_wglog(source)
    if schema is not None or len(rules) != 1:
        raise QuerySyntaxError("expected exactly one rule and no schema block")
    return rules[0]
