"""G-Log / WG-Log instance graphs.

WG-Log data are directed labelled graphs describing WWW/hypermedia
repositories: *entity* nodes (drawn as labelled rectangles — documents,
pages, monuments, ...) connected by labelled relationship edges, with
atomic *slots* (attribute leaves: strings, numbers) hanging off entities.

:class:`InstanceGraph` wraps the generic
:class:`~repro.graph.labeled_graph.LabeledGraph` with this entity/slot
discipline.  Slot nodes carry their value in the node payload and are
reached by an edge labelled with the attribute name.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Optional

from ..graph.labeled_graph import Edge, LabeledGraph
from ..ssd.datatypes import Atomic

__all__ = ["SLOT_LABEL", "InstanceGraph"]

#: Node label shared by all slot (atomic-value) nodes.
SLOT_LABEL = "#slot"

NodeId = Hashable


class InstanceGraph:
    """A WG-Log database: entities, relationships, slots."""

    def __init__(self) -> None:
        self.graph = LabeledGraph()
        self._fresh = 0

    # -- construction ---------------------------------------------------------

    def _next_id(self, stem: str) -> str:
        self._fresh += 1
        return f"{stem}#{self._fresh}"

    def add_entity(self, label: str, node_id: Optional[NodeId] = None) -> NodeId:
        """Add an entity node of type ``label``; returns its id."""
        node_id = node_id if node_id is not None else self._next_id(label)
        if node_id in self.graph:
            raise KeyError(f"node id {node_id!r} already in use")
        return self.graph.add_node(node_id, label)

    def add_slot(self, entity: NodeId, name: str, value: Atomic) -> NodeId:
        """Attach slot ``name = value`` to ``entity``; returns the slot node id."""
        if entity not in self.graph:
            raise KeyError(f"unknown entity {entity!r}")
        slot_id = self._next_id(f"{entity}.{name}")
        self.graph.add_node(slot_id, SLOT_LABEL, value=value)
        self.graph.add_edge(entity, slot_id, name)
        return slot_id

    def relate(self, source: NodeId, target: NodeId, label: str) -> Edge:
        """Add a relationship edge."""
        if self.is_slot(source):
            raise ValueError("slots cannot have outgoing relationships")
        return self.graph.add_edge(source, target, label)

    # -- inspection -----------------------------------------------------------

    def is_slot(self, node_id: NodeId) -> bool:
        """True when ``node_id`` is a slot (atomic) node."""
        return self.graph.label(node_id) == SLOT_LABEL

    def entities(self, label: Optional[str] = None) -> list[NodeId]:
        """Entity node ids, optionally of one type."""
        return [
            n
            for n in self.graph.nodes()
            if not self.is_slot(n)
            and (label is None or self.graph.label(n) == label)
        ]

    def entity_count(self) -> int:
        """Number of entity nodes."""
        return len(self.entities())

    def label(self, node_id: NodeId) -> str:
        """Entity type of a node (``#slot`` for slots)."""
        return self.graph.label(node_id)

    def slot_value(self, entity: NodeId, name: str) -> Optional[Atomic]:
        """The value of slot ``name`` on ``entity``, or ``None``."""
        for edge in self.graph.out_edges(entity, name):
            if self.is_slot(edge.target):
                return self.graph.value(edge.target)  # type: ignore[return-value]
        return None

    def slots(self, entity: NodeId) -> dict[str, Atomic]:
        """All slots of ``entity`` as a name -> value dict."""
        result: dict[str, Atomic] = {}
        for edge in self.graph.out_edges(entity):
            if self.is_slot(edge.target):
                result[edge.label] = self.graph.value(edge.target)  # type: ignore[assignment]
        return result

    def relationships(self, entity: NodeId, label: Optional[str] = None) -> list[Edge]:
        """Outgoing relationship (non-slot) edges of ``entity``."""
        return [
            e
            for e in self.graph.out_edges(entity, label)
            if not self.is_slot(e.target)
        ]

    def relationship_edges(self) -> Iterator[Edge]:
        """Every entity-to-entity edge in the instance."""
        for edge in self.graph.edges():
            if not self.is_slot(edge.target):
                yield edge

    def has_relationship(self, source: NodeId, target: NodeId, label: str) -> bool:
        """True when the labelled relationship exists."""
        return self.graph.has_edge(source, target, label)

    # -- bulk -----------------------------------------------------------------

    def copy(self) -> "InstanceGraph":
        """Independent copy (fresh-id counter included)."""
        clone = InstanceGraph()
        clone.graph = self.graph.copy()
        clone._fresh = self._fresh
        return clone

    def describe(self) -> str:
        """Compact listing of entities, slots and relationships."""
        lines = []
        for entity in self.entities():
            slots = self.slots(entity)
            slot_text = (
                " {" + ", ".join(f"{k}={v!r}" for k, v in slots.items()) + "}"
                if slots
                else ""
            )
            lines.append(f"{entity}: {self.label(entity)}{slot_text}")
        for edge in self.relationship_edges():
            lines.append(f"{edge.source} -{edge.label}-> {edge.target}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"InstanceGraph(entities={self.entity_count()}, "
            f"edges={sum(1 for _ in self.relationship_edges())})"
        )
