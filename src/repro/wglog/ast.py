"""Rule graphs of WG-Log.

A WG-Log rule is a *single* graph whose parts are distinguished by colour:
the thin/red part is the query pattern, the thick/green part is the
structure to be derived.  Query and construction "share the same nodes,
making variables obsolete" — a green edge drawn between two red nodes
derives a new relationship between matched entities.

Visual vocabulary → AST:

===============================  =========================================
thin (red) rectangle             :class:`RuleNode` with ``color=RED``
thick (green) rectangle          :class:`RuleNode` with ``color=GREEN``
thin labelled arrow              :class:`RuleEdge` (RED)
thick labelled arrow             :class:`RuleEdge` (GREEN)
crossed-out arrow                ``RuleEdge(crossed=True)`` (RED only)
dashed arrow (regular path)      ``RuleEdge(path=True)`` (RED only) —
                                 inherited from GraphLog
green value rectangle            :class:`SlotAssertion`
aggregation triangle             ``RuleNode(collector=True)`` (GREEN)
predicate annotation             conditions on the :class:`RuleGraph`
===============================  =========================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from ..engine.conditions import Condition
from ..errors import QueryStructureError
from ..ssd.datatypes import Atomic

__all__ = ["Color", "RuleNode", "RuleEdge", "SlotAssertion", "RuleGraph"]


class Color(Enum):
    """Rule-part colour: RED queries, GREEN derives."""

    RED = "red"
    GREEN = "green"


@dataclass(frozen=True)
class RuleNode:
    """One rectangle of the rule graph.

    Args:
        id: node id (the "variable" — shared between query and construction).
        label: entity type, or ``None`` for a wildcard (any type).
        color: RED (to be matched) or GREEN (to be created).
        collector: GREEN only — the aggregation triangle; a single node is
            created per rule application, linked to *all* matches of the red
            nodes its green edges point at.
    """

    id: str
    label: Optional[str] = None
    color: Color = Color.RED
    collector: bool = False

    def describe(self) -> str:
        marks = "+" if self.color is Color.GREEN else ""
        marks += "▲" if self.collector else ""
        return f"[{self.label or '*'}]{marks}({self.id})"


@dataclass(frozen=True)
class RuleEdge:
    """One labelled arrow.

    ``crossed`` (RED only) negates: no such edge may exist.  ``path`` (RED
    only) is GraphLog's dashed arrow: matches any non-empty directed path of
    relationship edges.
    """

    source: str
    target: str
    label: str = ""
    color: Color = Color.RED
    crossed: bool = False
    path: bool = False

    def describe(self) -> str:
        arrow = "=*=>" if self.path else ("=/=>" if self.crossed else "-->")
        plus = "+" if self.color is Color.GREEN else ""
        return f"{self.source} {arrow}{plus} {self.target} [{self.label}]"


@dataclass(frozen=True)
class SlotAssertion:
    """A green slot: assert ``node.name = value`` on derivation.

    ``from_node``/``from_slot`` copy a slot of a matched red node instead of
    a literal value.
    """

    node: str
    name: str
    value: Optional[Atomic] = None
    from_node: Optional[str] = None
    from_slot: Optional[str] = None


@dataclass
class RuleGraph:
    """One WG-Log rule: a coloured graph plus predicate annotations."""

    nodes: dict[str, RuleNode] = field(default_factory=dict)
    edges: list[RuleEdge] = field(default_factory=list)
    slot_assertions: list[SlotAssertion] = field(default_factory=list)
    conditions: list[Condition] = field(default_factory=list)
    name: Optional[str] = None

    # -- construction ---------------------------------------------------------

    def add_node(self, node: RuleNode) -> str:
        """Add a rectangle; duplicate ids raise."""
        if node.id in self.nodes:
            raise QueryStructureError(f"duplicate rule node id {node.id!r}")
        if node.collector and node.color is not Color.GREEN:
            raise QueryStructureError("the aggregation triangle must be green")
        self.nodes[node.id] = node
        return node.id

    def red(self, id: str, label: Optional[str] = None) -> str:
        """Shorthand: add a red node."""
        return self.add_node(RuleNode(id, label, Color.RED))

    def green(self, id: str, label: Optional[str] = None, collector: bool = False) -> str:
        """Shorthand: add a green node."""
        return self.add_node(RuleNode(id, label, Color.GREEN, collector=collector))

    def add_edge(self, edge: RuleEdge) -> RuleEdge:
        """Add an arrow; endpoints must exist and colours be coherent."""
        for endpoint in (edge.source, edge.target):
            if endpoint not in self.nodes:
                raise QueryStructureError(f"edge endpoint {endpoint!r} is not a node")
        if edge.crossed and edge.color is not Color.RED:
            raise QueryStructureError("crossed (negated) edges must be red")
        if edge.path and edge.color is not Color.RED:
            raise QueryStructureError("dashed (path) edges must be red")
        if edge.crossed and edge.path:
            # allowed: "no path from a to b" — keep but note both flags work
            pass
        if edge.color is Color.RED:
            for endpoint in (edge.source, edge.target):
                if self.nodes[endpoint].color is Color.GREEN:
                    raise QueryStructureError(
                        f"red edge touches green node {endpoint!r}"
                    )
        self.edges.append(edge)
        return edge

    def match_edge(
        self, source: str, target: str, label: str = "",
        crossed: bool = False, path: bool = False,
    ) -> RuleEdge:
        """Shorthand: add a red edge."""
        return self.add_edge(
            RuleEdge(source, target, label, Color.RED, crossed=crossed, path=path)
        )

    def derive_edge(self, source: str, target: str, label: str = "") -> RuleEdge:
        """Shorthand: add a green edge."""
        return self.add_edge(RuleEdge(source, target, label, Color.GREEN))

    def assert_slot(
        self,
        node: str,
        name: str,
        value: Optional[Atomic] = None,
        from_node: Optional[str] = None,
        from_slot: Optional[str] = None,
    ) -> SlotAssertion:
        """Add a green slot assertion."""
        if node not in self.nodes:
            raise QueryStructureError(f"slot assertion on unknown node {node!r}")
        if (value is None) == (from_node is None):
            raise QueryStructureError(
                "slot assertion needs exactly one of value / from_node"
            )
        if from_node is not None and from_node not in self.nodes:
            raise QueryStructureError(f"slot source {from_node!r} is not a node")
        assertion = SlotAssertion(node, name, value, from_node, from_slot or name)
        self.slot_assertions.append(assertion)
        return assertion

    def add_condition(self, condition: Condition) -> Condition:
        """Attach a predicate annotation (over red node ids)."""
        self.conditions.append(condition)
        return condition

    # -- parts ------------------------------------------------------------------

    def red_nodes(self) -> list[RuleNode]:
        """All red rectangles."""
        return [n for n in self.nodes.values() if n.color is Color.RED]

    def green_nodes(self) -> list[RuleNode]:
        """All green rectangles."""
        return [n for n in self.nodes.values() if n.color is Color.GREEN]

    def red_edges(self) -> list[RuleEdge]:
        """All red arrows (crossed ones included)."""
        return [e for e in self.edges if e.color is Color.RED]

    def green_edges(self) -> list[RuleEdge]:
        """All green arrows."""
        return [e for e in self.edges if e.color is Color.GREEN]

    def is_query(self) -> bool:
        """True when the rule has no green part (a pure query)."""
        return not self.green_nodes() and not self.green_edges() and not self.slot_assertions

    # -- validation ----------------------------------------------------------------

    def validate(self) -> None:
        """Structural checks; raises :class:`QueryStructureError`."""
        if not self.red_nodes():
            raise QueryStructureError("rule has no red (query) part")
        for edge in self.green_edges():
            if (
                self.nodes[edge.source].color is Color.RED
                and self.nodes[edge.target].color is Color.RED
            ):
                continue
            # green-node edges must ultimately anchor in the red part or
            # in a collector; a fully floating green component is illegal.
        for node in self.green_nodes():
            if node.collector:
                outgoing = [
                    e for e in self.green_edges() if e.source == node.id
                ]
                if not outgoing:
                    raise QueryStructureError(
                        f"collector {node.id!r} aggregates nothing"
                    )
                for edge in outgoing:
                    if self.nodes[edge.target].color is not Color.RED:
                        raise QueryStructureError(
                            f"collector {node.id!r} must point at red nodes"
                        )
        for assertion in self.slot_assertions:
            if assertion.from_node is not None:
                if self.nodes[assertion.from_node].color is not Color.RED:
                    raise QueryStructureError(
                        "slot values can only be copied from red nodes"
                    )

    def describe(self) -> str:
        """Compact textual rendering."""
        lines = [n.describe() for n in self.nodes.values()]
        lines += [e.describe() for e in self.edges]
        for assertion in self.slot_assertions:
            if assertion.value is not None:
                lines.append(f"{assertion.node}.{assertion.name} := {assertion.value!r}")
            else:
                lines.append(
                    f"{assertion.node}.{assertion.name} := "
                    f"{assertion.from_node}.{assertion.from_slot}"
                )
        lines += [f"where {c}" for c in self.conditions]
        return "\n".join(lines)
