"""repro — Graphical Query Languages for Semi-Structured Information.

A full reproduction of the system described in the EDBT 2000 paper of the
same title: the two graph-based graphical query languages **XML-GL**
(schema-optional, for XML) and **WG-Log** (schema-based, G-Log-derived, for
WWW-style graph data), together with every substrate they need — an XML data
model and parser, DTD validation, a generic graph-pattern matcher, a shared
condition/binding engine, a headless visual (diagram) layer, and an
executable comparison framework.
"""

__version__ = "1.0.0"

from . import errors
from .session import BatchResult, QueryCycle, QuerySession

__all__ = ["errors", "QuerySession", "QueryCycle", "BatchResult", "__version__"]
