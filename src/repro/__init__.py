"""repro — Graphical Query Languages for Semi-Structured Information.

A full reproduction of the system described in the EDBT 2000 paper of the
same title: the two graph-based graphical query languages **XML-GL**
(schema-optional, for XML) and **WG-Log** (schema-based, G-Log-derived, for
WWW-style graph data), together with every substrate they need — an XML data
model and parser, DTD validation, a generic graph-pattern matcher, a shared
condition/binding engine, a headless visual (diagram) layer, and an
executable comparison framework.

This module is the consolidated public facade.  Everything a library
consumer needs rides on ``repro`` itself::

    from repro import QuerySession, MatchOptions, QueryBudget, explain

    session = QuerySession(document)
    cycle = session.run(
        "query { book as B { title as T } } construct { r { collect T } }",
        budget=QueryBudget(deadline_ms=500, on_limit="partial"),
    )

The facade groups:

* **Sessions** — :class:`QuerySession` / :class:`QueryCycle` /
  :class:`BatchResult`: parse-evaluate-inspect with a shared index cache.
* **Evaluation** — :func:`parse_rule` / :func:`evaluate_rule` /
  :func:`rule_bindings` (XML-GL) and :func:`wglog_query` (WG-Log), all
  speaking the same keyword-only ``options=`` / ``trace=`` / ``budget=``
  contract.
* **Governance** — :class:`QueryBudget` / :class:`CancelToken`
  (:mod:`repro.engine.limits`) plus the typed errors in :mod:`.errors`.
* **Observability** — :func:`explain`, :class:`MatchOptions`,
  :class:`EvalStats`, :class:`MetricsRegistry`.
* **Static analysis** — :class:`Diagnostic`, :func:`analyze_rule`,
  :func:`analyze_program`.
* **Mutation & continuous queries** — :class:`MutationBatch` /
  :class:`MutationResult` (typed incremental edits via
  :meth:`QuerySession.mutate`) and :class:`Subscription` /
  :class:`ResultDelta` (:meth:`QuerySession.subscribe`), with execution
  defaults bundled in :class:`ExecOptions`.

Submodule attributes resolve lazily (PEP 562), so ``import repro`` stays
cheap; ``__all__`` is the supported surface and is snapshot-tested in
``tests/api/test_public_surface.py`` — additions are deliberate, removals
are breaking.
"""

from __future__ import annotations

from typing import Any

__version__ = "1.2.0"

from . import errors
from .session import BatchResult, QueryCycle, QuerySession

# Imported eagerly, function bound *after* the submodule registers itself
# on the package, so ``repro.explain`` is deterministically the function
# (the submodule stays reachable as ``sys.modules["repro.explain"]``,
# which is how every ``from repro.explain import ...`` resolves).
from .explain import Explanation, explain

#: Lazily-resolved facade attribute -> (module, attribute there).
_LAZY: dict[str, tuple[str, str]] = {
    # evaluation (XML-GL)
    "parse_rule": (".xmlgl.dsl", "parse_rule"),
    "parse_program": (".xmlgl.dsl", "parse_program"),
    "evaluate_rule": (".xmlgl.evaluator", "evaluate_rule"),
    "evaluate_program": (".xmlgl.evaluator", "evaluate_program"),
    "rule_bindings": (".xmlgl.evaluator", "rule_bindings"),
    # evaluation (WG-Log)
    "wglog_query": (".wglog.semantics", "query"),
    # engine knobs + governance
    "MatchOptions": (".engine.options", "MatchOptions"),
    "ExecOptions": (".session", "ExecOptions"),
    "EvalStats": (".engine.stats", "EvalStats"),
    "QueryBudget": (".engine.limits", "QueryBudget"),
    "CancelToken": (".engine.limits", "CancelToken"),
    # observability
    "MetricsRegistry": (".engine.metrics", "MetricsRegistry"),
    "global_registry": (".engine.metrics", "global_registry"),
    # static analysis
    "Diagnostic": (".analysis", "Diagnostic"),
    "Severity": (".analysis", "Severity"),
    "analyze_rule": (".analysis", "analyze_rule"),
    "analyze_program": (".analysis", "analyze_program"),
    # mutation + continuous queries
    "MutationBatch": (".engine.mutate", "MutationBatch"),
    "MutationResult": (".engine.mutate", "MutationResult"),
    "Subscription": (".engine.subscribe", "Subscription"),
    "ResultDelta": (".engine.subscribe", "ResultDelta"),
    # static query rewriting (canonicalization, minimization, pruning)
    "rewrite_rule": (".analysis.rewrite", "rewrite_rule"),
    "RewriteReport": (".analysis.rewrite", "RewriteReport"),
    "contains": (".analysis.rewrite", "contains"),
    # the query service (``repro serve``)
    "QueryService": (".server", "QueryService"),
    "ServiceClient": (".server", "ServiceClient"),
    "DocumentStore": (".server", "DocumentStore"),
    "ServerConfig": (".server", "ServerConfig"),
    "TenantConfig": (".server", "TenantConfig"),
}

__all__ = [
    "errors",
    "QuerySession",
    "QueryCycle",
    "BatchResult",
    "explain",
    "Explanation",
    "__version__",
    *_LAZY,
]


def __getattr__(name: str) -> Any:
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    value = getattr(import_module(module_name, __name__), attribute)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))
