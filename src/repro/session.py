"""Interactive query sessions: refine, run, step back, run again.

The systems around the paper (BBQ in particular) frame querying as a
*cycle*: specify, execute, inspect, refine, with browser-style back and
forward between cycles.  :class:`QuerySession` provides that loop over the
XML-GL engine for scripts, notebooks and the CLI:

    session = QuerySession(doc)
    session.run("query { book as B } construct { r { count(B) } }")
    session.run("query { book as B { @year as Y } where Y >= 1995 } ...")
    session.back()          # the previous cycle's result is current again
    session.run(...)        # refining from here truncates the forward tail

Each cycle stores the query text (or Rule), the result document and the
evaluation statistics, so a session transcript doubles as a small
experiment log (:meth:`QuerySession.summary`).
"""

from __future__ import annotations

import threading
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Mapping, Optional, Sequence, Union

from .engine.cache import DocumentIndexCache, shared_cache
from .engine.limits import CancelToken, QueryBudget, arm_budget
from .engine.metrics import MetricsRegistry
from .engine.mutate import MutationBatch, MutationResult, apply_batch
from .engine.options import ENGINES
from .engine.plan_cache import PlanCache, shared_plans
from .engine.stats import EvalStats
from .engine.subscribe import Subscription
from .engine.trace import Tracer
from .errors import ReproError
from .ssd.model import Document
from .xmlgl.dsl import parse_rule
from .xmlgl.evaluator import evaluate_rule, lookup_or_compile
from .xmlgl.matcher import MatchOptions
from .xmlgl.rule import Rule

__all__ = ["BatchResult", "ExecOptions", "QueryCycle", "QuerySession"]

Sources = Union[Document, Mapping[str, Document]]


@dataclass(frozen=True)
class ExecOptions:
    """The execution contract of a :class:`QuerySession` call.

    One immutable bundle of every run-time switch — engine selection,
    rewrite/columnar ablations, tracing and budget — passed as the single
    keyword-only ``options=`` of :meth:`QuerySession.run`,
    :meth:`~QuerySession.execute` and :meth:`~QuerySession.run_batch` (and
    as the session default).  A per-call ``ExecOptions`` replaces the
    session default *wholesale*: derive from :attr:`QuerySession.defaults`
    with :func:`dataclasses.replace` to override one field ("this tenant
    runs unbudgeted" is ``replace(session.defaults, budget=None)``).

    This supersedes the historical trio of ``options=MatchOptions(...)``
    plus ``trace=`` / ``budget=`` overlay keywords; those still work as
    deprecated shims (``DeprecationWarning``) and resolve to the same
    bundle.  Frozen so a bundle can be shared across threads and cached
    plans without defensive copies.
    """

    engine: str = "adaptive"
    rewrite: bool = True
    columnar: bool = True
    use_planner: bool = True
    use_index: bool = True
    trace: bool = False
    budget: Optional[QueryBudget] = None

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}"
            )

    def match_options(self) -> MatchOptions:
        """The equivalent engine-level :class:`MatchOptions`."""
        return MatchOptions(
            use_planner=self.use_planner,
            use_index=self.use_index,
            engine=self.engine,
            rewrite=self.rewrite,
            columnar=self.columnar,
            trace=self.trace,
            budget=self.budget,
        )

    @classmethod
    def from_match_options(cls, options: MatchOptions) -> "ExecOptions":
        """Lift a legacy :class:`MatchOptions` into the new contract."""
        return cls(
            engine=options.engine,
            rewrite=options.rewrite,
            columnar=options.columnar,
            use_planner=options.use_planner,
            use_index=options.use_index,
            trace=options.trace,
            budget=options.budget,
        )

#: Default for the per-call ``trace=`` / ``budget=`` overrides: distinct
#: from an explicit ``None`` so callers can *disable* a session-default
#: budget or tracer for one call (``budget=None`` means "no budget", not
#: "defer to the session options").  The query service relies on this to
#: overlay per-tenant budgets — including "unlimited" — on shared sessions.
_UNSET: Any = object()


@dataclass
class QueryCycle:
    """One specify/execute cycle."""

    index: int
    source_text: Optional[str]
    rule: Rule
    result: Document
    stats: EvalStats
    seconds: float
    #: Recorded span tree when the cycle ran with tracing enabled.
    trace: Optional[Tracer] = None

    def describe(self) -> str:
        root = self.result.root
        size = root.size() if root is not None else 0
        return (
            f"cycle {self.index}: {self.stats.bindings_produced} bindings, "
            f"result <{root.tag if root is not None else '-'}> "
            f"({size} nodes, {self.seconds * 1000:.1f} ms)"
        )


@dataclass
class BatchResult:
    """Outcome of one query in a :meth:`QuerySession.run_batch` run.

    Also returned by :meth:`QuerySession.execute`, where ``rule`` may be
    ``None`` when the query text failed to parse (``run_batch`` parses up
    front, so its rows always carry the rule).
    """

    index: int
    source_text: Optional[str]
    rule: Optional[Rule]
    result: Optional[Document]
    stats: EvalStats
    seconds: float
    error: Optional[ReproError] = None
    #: Recorded span tree when the batch ran with tracing enabled.
    trace: Optional[Tracer] = None

    @property
    def ok(self) -> bool:
        return self.error is None


class QuerySession:
    """A browsing/refinement session over one document collection."""

    def __init__(
        self,
        sources: Sources,
        options: Optional[Union[ExecOptions, MatchOptions]] = None,
        indexes: Optional[DocumentIndexCache] = None,
        metrics: Optional[MetricsRegistry] = None,
        plans: Optional[PlanCache] = None,
    ) -> None:
        self._sources = sources
        # The session default is normalised to ExecOptions; MatchOptions
        # is accepted here (without a warning — it predates ExecOptions
        # and is harmless as a default) and lifted.
        self._options = (
            ExecOptions.from_match_options(options)
            if isinstance(options, MatchOptions)
            else options
        )
        # Indexes come from the process-wide cache by default, so several
        # sessions over one document share a single snapshot; pass a
        # private DocumentIndexCache to isolate (e.g. mutation-heavy use).
        self._indexes = indexes if indexes is not None else shared_cache
        # Metrics default to a private registry so a session's totals stay
        # attributable; pass repro.engine.metrics.global_registry to pool
        # several sessions into the process-wide aggregate.
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        # Compiled plans likewise default to the process-wide cache: the
        # key embeds the query digest and index epochs, so sharing across
        # sessions is safe; pass a private PlanCache to isolate.
        self._plans = plans if plans is not None else shared_plans
        self._cycles: list[QueryCycle] = []
        self._position = -1  # index of the current cycle
        self._subscriptions: list[Subscription] = []
        # Serialises mutation commits and the subscription notifications
        # they trigger, so deltas are delivered in revision order.
        self._mutation_lock = threading.Lock()

    @property
    def defaults(self) -> ExecOptions:
        """The session's effective default :class:`ExecOptions`.

        Always a concrete bundle (never ``None``), so per-call overrides
        are one ``dataclasses.replace`` away.
        """
        return self._options if self._options is not None else ExecOptions()

    # -- running ---------------------------------------------------------------

    def _effective(
        self,
        options: Optional[Union[ExecOptions, MatchOptions]],
        trace: Any,
        budget: Any,
    ) -> tuple[Optional[MatchOptions], bool, Optional[QueryBudget]]:
        """Resolve the per-call options against the session defaults.

        The current contract is one :class:`ExecOptions` bundle that
        replaces the session default wholesale.  Two deprecated shims are
        resolved here, each under a ``DeprecationWarning``:

        * ``options=MatchOptions(...)`` is lifted via
          :meth:`ExecOptions.from_match_options`;
        * ``trace=`` / ``budget=`` overlay keywords, whose :data:`_UNSET`
          sentinel distinguishes "omitted" (defer to the options) from an
          explicit ``None``/``False`` ("off for this call").

        Returns the engine-level :class:`MatchOptions` the matcher layers
        consume, normalised to the *resolved* tracing/budget decisions.
        """
        if isinstance(options, MatchOptions):
            warnings.warn(
                "passing MatchOptions to QuerySession.run/execute/run_batch "
                "is deprecated; pass repro.ExecOptions",
                DeprecationWarning,
                stacklevel=3,
            )
            options = ExecOptions.from_match_options(options)
        opts = options if options is not None else self._options
        if trace is _UNSET:
            tracing = bool(opts.trace) if opts is not None else False
        else:
            warnings.warn(
                "the trace= keyword is deprecated; pass "
                "ExecOptions(trace=...) (derive from session.defaults)",
                DeprecationWarning,
                stacklevel=3,
            )
            tracing = bool(trace)
        if budget is _UNSET:
            effective_budget = opts.budget if opts is not None else None
        else:
            warnings.warn(
                "the budget= keyword is deprecated; pass "
                "ExecOptions(budget=...) (derive from session.defaults)",
                DeprecationWarning,
                stacklevel=3,
            )
            effective_budget = budget
        # Normalise the options to the *resolved* decisions: the matcher
        # layers re-derive tracing/budgets from the options they receive,
        # so a per-call "off" override must not leave the session flags
        # visible downstream.
        if opts is not None and (
            bool(opts.trace) is not tracing or opts.budget is not effective_budget
        ):
            opts = replace(opts, trace=tracing, budget=effective_budget)
        return (
            opts.match_options() if opts is not None else None,
            tracing,
            effective_budget,
        )

    def _execute_one(
        self,
        query: Union[str, Rule],
        *,
        parsed: Optional[Rule] = None,
        position: int = 0,
        opts: Optional[MatchOptions] = None,
        tracing: bool = False,
        effective_budget: Optional[QueryBudget] = None,
        cancel: Optional[CancelToken] = None,
    ) -> BatchResult:
        """Evaluate one query end to end; the shared core of every run path.

        Used by :meth:`run` (which raises the row's error and appends a
        cycle), :meth:`execute` (the thread-safe serving path) and each
        :meth:`run_batch` thread-pool row.  Metrics are recorded in a
        ``finally`` so *failed* runs — budget trips, evaluation errors,
        even parse errors — fold into the registry with ``error=True``
        exactly like successful ones: error rates must never undercount.
        :class:`~repro.errors.ReproError` is captured on the returned
        row; anything else (a genuine bug) is recorded, then re-raised.
        """
        stats = EvalStats()
        if tracing:
            stats.trace = Tracer()
        arm_budget(stats, effective_budget, cancel)
        source_text = query if isinstance(query, str) else None
        rule: Optional[Rule] = parsed if parsed is not None else (
            query if isinstance(query, Rule) else None
        )
        result: Optional[Document] = None
        error: Optional[Exception] = None
        # The clock starts before plan lookup so timings show the
        # plan-cache win (a hit skips parse + analysis entirely).
        started = time.perf_counter()
        try:
            rule, source_text, plan = lookup_or_compile(
                query,
                self._sources,
                parsed=parsed,
                indexes=self._indexes,
                stats=stats,
                plans=self._plans,
                rewrite=opts.rewrite if opts is not None else True,
            )
            result = Document(
                evaluate_rule(
                    rule, self._sources, options=opts, trace=tracing,
                    stats=stats, indexes=self._indexes, plan=plan,
                )
            )
        except Exception as exc:
            error = exc
        finally:
            elapsed = time.perf_counter() - started
            self._metrics.record(
                stats,
                seconds=elapsed,
                query=source_text,
                error=error is not None,
            )
        if error is not None and not isinstance(error, ReproError):
            raise error
        return BatchResult(
            index=position,
            source_text=source_text,
            rule=rule,
            result=result,
            stats=stats,
            seconds=elapsed,
            error=error,
            trace=stats.trace,
        )

    def run(
        self,
        query: Union[str, Rule],
        *,
        options: Optional[Union[ExecOptions, MatchOptions]] = None,
        trace: Optional[bool] = _UNSET,
        budget: Optional[QueryBudget] = _UNSET,
        cancel: Optional[CancelToken] = None,
    ) -> Document:
        """Execute a query; it becomes the current cycle.

        Running while positioned back in history truncates the forward
        cycles (browser semantics).  Returns the result document.

        The keyword-only ``options=`` takes one :class:`ExecOptions`
        bundle — engine, rewrite/columnar switches, tracing, budget — that
        replaces the session defaults for this cycle (derive from
        :attr:`defaults` to override a single field).  The historical
        ``options=MatchOptions(...)`` and the ``trace=`` / ``budget=``
        overlay keywords still resolve identically but are deprecated
        shims (``DeprecationWarning``): omitting ``trace``/``budget``
        defers to the options, passing ``None`` explicitly switches the
        feature *off* for this call.  The budget
        governs the run (its deadline starts here); under
        ``on_limit="raise"`` a tripped limit propagates as
        :class:`~repro.errors.BudgetExceeded` / ``DeadlineExceeded``, under
        ``"partial"`` the truncated result still becomes a cycle, flagged
        ``stats.extra["truncated"]``.  ``cancel`` is a
        :class:`~repro.engine.limits.CancelToken` another thread may
        trigger.  The recorded span tree lands on ``QueryCycle.trace``.
        Every run — *including* one that raises — is folded into the
        session's :meth:`metrics` registry (failures with ``error=True``,
        consistent with ``run_batch`` rows).
        """
        opts, tracing, effective_budget = self._effective(options, trace, budget)
        row = self._execute_one(
            query,
            opts=opts,
            tracing=tracing,
            effective_budget=effective_budget,
            cancel=cancel,
        )
        if row.error is not None:
            raise row.error
        assert row.result is not None and row.rule is not None
        del self._cycles[self._position + 1 :]
        cycle = QueryCycle(
            index=len(self._cycles),
            source_text=row.source_text,
            rule=row.rule,
            result=row.result,
            stats=row.stats,
            seconds=row.seconds,
            trace=row.trace,
        )
        self._cycles.append(cycle)
        self._position = len(self._cycles) - 1
        return row.result

    def execute(
        self,
        query: Union[str, Rule],
        *,
        options: Optional[Union[ExecOptions, MatchOptions]] = None,
        trace: Optional[bool] = _UNSET,
        budget: Optional[QueryBudget] = _UNSET,
        cancel: Optional[CancelToken] = None,
    ) -> BatchResult:
        """Evaluate one query outside the cycle history; the serving path.

        Takes the same keyword-only :class:`ExecOptions` contract as
        :meth:`run` (with the same deprecated shims).
        Same contract as a single :meth:`run_batch` row: every
        :class:`~repro.errors.ReproError` — parse, evaluation, budget —
        is captured on :attr:`BatchResult.error` instead of raising, the
        row is folded into :meth:`metrics` (failures with ``error=True``)
        and the cycle history is untouched.  Thread-safe: the history is
        never read or written, so ``repro.server`` calls this from
        executor worker threads against one shared session per document.
        """
        opts, tracing, effective_budget = self._effective(options, trace, budget)
        return self._execute_one(
            query,
            opts=opts,
            tracing=tracing,
            effective_budget=effective_budget,
            cancel=cancel,
        )

    def run_batch(
        self,
        queries: Sequence[Union[str, Rule]],
        *,
        max_workers: Optional[int] = None,
        options: Optional[Union[ExecOptions, MatchOptions]] = None,
        trace: Optional[bool] = _UNSET,
        budget: Optional[QueryBudget] = _UNSET,
        cancel: Optional[CancelToken] = None,
        executor: str = "thread",
    ) -> list[BatchResult]:
        """Evaluate many queries against the session's sources concurrently.

        With the default ``executor="thread"``, queries run on a thread
        pool over the *same* documents and the same (locked,
        read-only-shared) index cache: the indexes are pre-warmed once on
        the calling thread, so workers only take cache hits.  Each query
        gets its own :class:`~repro.engine.stats.EvalStats` and wall
        clock, returned in input order as :class:`BatchResult` rows.

        ``executor="process"`` hands the batch to a
        :class:`~repro.engine.shard.ShardedExecutor`: one picklable task
        per query (serialized query text + serialized sources — never live
        indexes), evaluated on a process pool so CPU-bound matching
        escapes the GIL.  The contract is the same — rows in input order,
        per-row stats/budget/errors, ``cancel`` fans out cooperatively —
        with one restriction: tracing is unsupported (span trees cannot
        cross the pickle boundary; requesting it raises
        :class:`~repro.errors.ReproError`).  Worker processes use their
        own process-local caches (reset at startup — see the fork-safety
        notes in :mod:`repro.engine.shard`), so per-row cache counters
        reflect worker-side, not session-side, cache state.

        The keyword-only ``options=`` takes the same :class:`ExecOptions`
        bundle as :meth:`run` (with the same deprecated shims).  Its
        budget governs **each row
        separately**: every row arms its own
        :class:`~repro.engine.limits.BudgetState` when its evaluation
        starts, so one slow row exhausts only its own deadline.  Under
        ``on_limit="raise"`` a tripped row is captured in
        :attr:`BatchResult.error` (typed ``BudgetExceeded`` /
        ``DeadlineExceeded``) exactly like any other evaluation error —
        sibling rows and the shared index cache are untouched.  ``cancel``
        is shared across rows: one :class:`CancelToken` aborts the whole
        batch cooperatively (cancelled rows report ``QueryCancelled``).

        Evaluation errors (:class:`~repro.errors.ReproError`) are captured
        per query in :attr:`BatchResult.error` rather than aborting the
        batch; parse errors raise immediately, before any evaluation
        starts.  A batch does not enter the cycle history — it is a bulk
        measurement, not a refinement step.

        With tracing on (``trace=True``, or the session options' flag),
        every row gets its own :class:`~repro.engine.trace.Tracer` on
        ``BatchResult.trace`` — per-query span trees even under
        concurrency, because the tracer rides on the row's private
        ``EvalStats``.  Every row is folded into :meth:`metrics`.
        """
        if executor not in ("thread", "process"):
            raise ValueError(
                f"unknown executor {executor!r}; expected 'thread' or 'process'"
            )
        opts, tracing, effective_budget = self._effective(options, trace, budget)
        prepared: list[tuple[Rule, Optional[str]]] = []
        for query in queries:
            if isinstance(query, str):
                prepared.append((parse_rule(query), query))
            else:
                prepared.append((query, None))
        if executor == "process":
            if tracing:
                raise ReproError(
                    "tracing is not supported with executor='process': span "
                    "trees cannot cross the pickle boundary — use "
                    "executor='thread' or trace a single run()"
                )
            return self._run_batch_process(
                prepared, max_workers, opts, effective_budget, cancel
            )
        for document in self._documents():
            self._indexes.get(document)
        # Prewarm the plan cache on the calling thread (throwaway stats):
        # duplicate queries across rows compile once instead of racing, and
        # every row then takes a deterministic plan-cache hit.
        batch_rewrite = opts.rewrite if opts is not None else True
        for rule, source_text in prepared:
            lookup_or_compile(
                source_text if source_text is not None else rule,
                self._sources,
                parsed=rule,
                indexes=self._indexes,
                stats=EvalStats(),
                plans=self._plans,
                rewrite=batch_rewrite,
            )

        def evaluate_one(item: tuple[int, tuple[Rule, Optional[str]]]) -> BatchResult:
            position, (rule, source_text) = item
            # Each row arms a fresh budget state inside the core: deadlines
            # are per row, measured from the row's own start, never from
            # batch submission.  Metrics (including error rows) fold into
            # the registry from the worker thread.
            return self._execute_one(
                source_text if source_text is not None else rule,
                parsed=rule,
                position=position,
                opts=opts,
                tracing=tracing,
                effective_budget=effective_budget,
                cancel=cancel,
            )

        if not prepared:
            return []
        workers = max_workers if max_workers is not None else min(8, len(prepared))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(evaluate_one, enumerate(prepared)))

    def _run_batch_process(
        self,
        prepared: list[tuple[Rule, Optional[str]]],
        max_workers: Optional[int],
        opts: Optional[MatchOptions],
        budget: Optional[QueryBudget],
        cancel: Optional[CancelToken],
    ) -> list[BatchResult]:
        """The ``executor="process"`` arm of :meth:`run_batch`.

        Rule objects are unparsed back to DSL text for the pickle
        boundary; budgets are armed *inside* each worker so deadlines are
        per row, measured from the row's own start.  Worker outcomes are
        folded into the session metrics on the driver, exactly like
        thread-pool rows.
        """
        from .engine.shard import ShardedExecutor, _revive_error
        from .ssd import parse_document
        from .xmlgl.unparse import unparse_rule

        if not prepared:
            return []
        texts = [
            source_text if source_text is not None else unparse_rule(rule)
            for rule, source_text in prepared
        ]
        sharded = ShardedExecutor(max_workers=max_workers)
        outcomes = sharded.run_batch(
            texts, self._sources, options=opts, budget=budget, cancel=cancel
        )
        # Realign by task position before pairing with ``prepared``: the
        # zip below would otherwise attach stats/errors to the wrong row
        # if an executor returned outcomes out of submission order.
        outcomes = sorted(outcomes, key=lambda outcome: outcome.position)
        if [outcome.position for outcome in outcomes] != list(range(len(prepared))):
            raise ReproError(
                "sharded executor returned misaligned outcomes: positions "
                f"{[outcome.position for outcome in outcomes]} for "
                f"{len(prepared)} queries"
            )
        results: list[BatchResult] = []
        for outcome, (rule, source_text) in zip(outcomes, prepared):
            stats = EvalStats.from_counters(outcome.counters)
            error = (
                _revive_error(outcome.error, stats)
                if outcome.error is not None
                else None
            )
            result = (
                parse_document(outcome.result)
                if outcome.result is not None
                else None
            )
            self._metrics.record(
                stats,
                seconds=outcome.seconds,
                query=source_text,
                error=error is not None,
            )
            results.append(
                BatchResult(
                    index=outcome.position,
                    source_text=source_text,
                    rule=rule,
                    result=result,
                    stats=stats,
                    seconds=outcome.seconds,
                    error=error,
                )
            )
        return results

    def _documents(self) -> list[Document]:
        if isinstance(self._sources, Document):
            return [self._sources]
        return list(self._sources.values())

    # -- mutation & continuous queries ------------------------------------------

    def _resolve_document(self, source: Optional[str]) -> Document:
        if isinstance(self._sources, Document):
            if source is not None:
                raise ReproError(
                    "this session holds a single unnamed document; "
                    "do not name a mutation source"
                )
            return self._sources
        if source is None:
            if len(self._sources) == 1:
                return next(iter(self._sources.values()))
            raise ReproError(
                "this session holds several documents; name the mutation "
                f"source (one of {sorted(self._sources)})"
            )
        try:
            return self._sources[source]
        except KeyError:
            raise ReproError(f"unknown source document {source!r}") from None

    def mutate(
        self, batch: MutationBatch, *, source: Optional[str] = None
    ) -> MutationResult:
        """Apply a :class:`~repro.engine.mutate.MutationBatch` atomically.

        The batch is validated in full first (an invalid batch raises
        :class:`~repro.errors.MutationError` with the document untouched),
        applied to the tree while the session's cached
        :class:`~repro.engine.index.DocumentIndex` is maintained *in
        place* (no invalidation, no rebuild), and committed under a new
        ``doc_revision``.  Every active subscription is then notified —
        those whose footprint intersects the batch re-evaluate and queue a
        :class:`~repro.engine.subscribe.ResultDelta`; the rest skip.

        ``source`` names the document in a multi-document session;
        omit it for single-document sessions.
        """
        document = self._resolve_document(source)
        with self._mutation_lock:
            index = self._indexes.peek(document)
            result = apply_batch(
                document, batch, indexes=[index] if index is not None else []
            )
            for subscription in list(self._subscriptions):
                if not subscription.closed:
                    subscription.notify(result)
        return result

    def subscribe(
        self,
        query: Union[str, Rule],
        *,
        options: Optional[Union[ExecOptions, MatchOptions]] = None,
    ) -> Subscription:
        """Register ``query`` as a continuous query over this session.

        The subscription evaluates eagerly (its
        :meth:`~repro.engine.subscribe.Subscription.rows` are live
        immediately) and is re-run by :meth:`mutate` commits whose touched
        region intersects the query's static footprint; drain changes with
        :meth:`~repro.engine.subscribe.Subscription.poll` or block on
        :meth:`~repro.engine.subscribe.Subscription.wait`.  ``options``
        takes the same :class:`ExecOptions` bundle as :meth:`run` and
        defaults to the session options.
        """
        if isinstance(options, MatchOptions):
            warnings.warn(
                "passing MatchOptions to QuerySession.subscribe is "
                "deprecated; pass repro.ExecOptions",
                DeprecationWarning,
                stacklevel=2,
            )
            options = ExecOptions.from_match_options(options)
        opts = options if options is not None else self._options
        subscription = Subscription(
            query,
            self._sources,
            options=opts.match_options() if opts is not None else None,
            indexes=self._indexes,
            plans=self._plans,
        )
        with self._mutation_lock:
            self._subscriptions.append(subscription)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> bool:
        """Close and detach ``subscription``; True if it was attached."""
        with self._mutation_lock:
            try:
                self._subscriptions.remove(subscription)
            except ValueError:
                return False
        subscription.close()
        return True

    def subscriptions(self) -> list[Subscription]:
        """The attached subscriptions (a snapshot copy)."""
        with self._mutation_lock:
            return list(self._subscriptions)

    # -- analysis ---------------------------------------------------------------

    def analyze(self, query: Union[str, Rule, None] = None) -> list:
        """Static diagnostics for a query without running it.

        With no argument, analyses the current cycle's rule — "why did my
        last refinement return nothing?" is the session-loop question this
        answers (a lurking contradiction shows up here as an
        ``unsatisfiable`` error).  Returns the
        :class:`~repro.analysis.Diagnostic` list, most severe first.
        """
        from .analysis import analyze_rule

        if query is None:
            rule = self.current().rule
        elif isinstance(query, str):
            rule = parse_rule(query)
        else:
            rule = query
        return analyze_rule(rule)

    def explain(self, query: Union[str, Rule, None] = None):
        """EXPLAIN a query against the session's own sources and indexes.

        With no argument, explains the current cycle's rule — "what did my
        last refinement actually do?".  Runs the query with tracing forced
        on (this is EXPLAIN ANALYZE; the run does not enter the cycle
        history) and returns an :class:`~repro.explain.Explanation`.
        """
        from .explain import explain as explain_rule

        if query is None:
            rule: Union[str, Rule] = self.current().rule
        else:
            rule = query
        return explain_rule(
            rule, self._sources,
            options=self._options.match_options() if self._options else None,
            indexes=self._indexes, plans=self._plans,
        )

    def metrics(self) -> MetricsRegistry:
        """The session's metrics registry (every run/run_batch is folded in)."""
        return self._metrics

    # -- navigation -------------------------------------------------------------

    def current(self) -> QueryCycle:
        """The cycle the session is positioned on."""
        if self._position < 0:
            raise ReproError("the session has no cycles yet")
        return self._cycles[self._position]

    def back(self) -> Optional[QueryCycle]:
        """Step to the previous cycle; ``None`` at the beginning."""
        if self._position <= 0:
            return None
        self._position -= 1
        return self.current()

    def forward(self) -> Optional[QueryCycle]:
        """Step to the next cycle; ``None`` at the end."""
        if self._position >= len(self._cycles) - 1:
            return None
        self._position += 1
        return self.current()

    # -- inspection ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._cycles)

    def history(self) -> list[QueryCycle]:
        """All cycles, oldest first (the forward tail included)."""
        return list(self._cycles)

    def summary(self) -> str:
        """The session transcript, one line per cycle."""
        lines = []
        for cycle in self._cycles:
            marker = "->" if cycle.index == self._position else "  "
            lines.append(f"{marker} {cycle.describe()}")
        return "\n".join(lines)
