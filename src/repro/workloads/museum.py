"""Museum workload: the classic WG-Log/G-Log schema-rich domain.

The WG-Log literature illustrates schema-based querying with cultural
heritage sites (monuments, artists, towns).  This generator emits a graph
of ``Museum``, ``Room``, ``Work`` and ``Artist`` entities:

* each museum contains rooms (``has_room``),
* each room exhibits works (``exhibits``),
* each work was created by one artist (``by``) and some works
  ``depicts``-reference other works,
* slots: museum city, artist name/century, work title/year.

Used by the comparison framework and the WG-Log examples.
"""

from __future__ import annotations

from ..wglog.data import InstanceGraph
from ..wglog.schema import SlotDecl, WGSchema
from .generator import Rng

__all__ = ["museum_schema", "museum_graph"]


def museum_schema() -> WGSchema:
    """Schema of the museum domain."""
    schema = WGSchema()
    schema.entity("Museum", SlotDecl("city", "string", required=True))
    schema.entity("Room", SlotDecl("floor", "int"))
    schema.entity(
        "Work",
        SlotDecl("title", "string", required=True),
        SlotDecl("year", "int"),
    )
    schema.entity(
        "Artist",
        SlotDecl("name", "string", required=True),
        SlotDecl("century", "int"),
    )
    schema.relation("Museum", "has_room", "Room")
    schema.relation("Room", "exhibits", "Work")
    schema.relation("Work", "by", "Artist")
    schema.relation("Work", "depicts", "Work")
    schema.relation("Artist", "influenced", "Artist")
    return schema


def museum_graph(works: int, seed: int = 0) -> InstanceGraph:
    """A museum collection with ``works`` works.

    Sizes scale together: ~works/8 rooms across ~works/40 museums and
    ~works/4 artists; 20% of works depict an earlier work; a sparse
    ``influenced`` chain links artists.
    """
    rng = Rng(seed)
    instance = InstanceGraph()
    museum_count = max(1, works // 40)
    room_count = max(1, works // 8)
    artist_count = max(1, works // 4)

    museums = []
    for number in range(museum_count):
        node = instance.add_entity("Museum", f"m{number}")
        instance.add_slot(node, "city", rng.name())
        museums.append(node)
    rooms = []
    for number in range(room_count):
        node = instance.add_entity("Room", f"r{number}")
        instance.add_slot(node, "floor", rng.integer(0, 4))
        instance.relate(rng.pick(museums), node, "has_room")
        rooms.append(node)
    artists = []
    for number in range(artist_count):
        node = instance.add_entity("Artist", f"a{number}")
        instance.add_slot(node, "name", f"{rng.name()} {rng.name()}")
        instance.add_slot(node, "century", rng.integer(14, 20))
        artists.append(node)
    for left, right in zip(artists, artists[1:]):
        if rng.chance(0.3):
            instance.relate(left, right, "influenced")

    work_nodes = []
    for number in range(works):
        node = instance.add_entity("Work", f"w{number}")
        instance.add_slot(node, "title", rng.words(3))
        instance.add_slot(node, "year", rng.integer(1400, 1999))
        instance.relate(rng.pick(rooms), node, "exhibits")
        instance.relate(node, rng.pick(artists), "by")
        if work_nodes and rng.chance(0.2):
            instance.relate(node, rng.pick(work_nodes), "depicts")
        work_nodes.append(node)
    return instance
