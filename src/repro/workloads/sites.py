"""Web-site graph workload: WG-Log's running domain.

WG-Log queries WWW repositories modelled as labelled graphs.  The
generator produces a site of ``pages`` document nodes: a few index pages
pointing at content pages (``index`` edges), a random ``link`` mesh, and
per-page slots (title, size).  The schema matches what the generator
emits, so schema-checked query experiments work out of the box.
"""

from __future__ import annotations

from ..wglog.data import InstanceGraph
from ..wglog.schema import SlotDecl, WGSchema
from .generator import Rng

__all__ = ["site_schema", "site_graph"]


def site_schema() -> WGSchema:
    """The schema of generated site graphs."""
    schema = WGSchema()
    schema.entity(
        "Page",
        SlotDecl("title", "string", required=True),
        SlotDecl("size", "int"),
    )
    schema.entity("Index", SlotDecl("title", "string"))
    schema.relation("Index", "index", "Page")
    schema.relation("Index", "index", "Index")
    schema.relation("Page", "link", "Page")
    schema.relation("Page", "link", "Index")
    return schema


def site_graph(pages: int, seed: int = 0, link_factor: float = 1.5) -> InstanceGraph:
    """A site with ``pages`` content pages and ~pages/10 index pages.

    Every content page is indexed by one index page; ``link_factor *
    pages`` random links connect content pages (possibly back to
    indexes).  Deterministic in ``seed``.
    """
    rng = Rng(seed)
    instance = InstanceGraph()
    index_count = max(1, pages // 10)
    indexes = []
    for number in range(index_count):
        node = instance.add_entity("Index", f"idx{number}")
        instance.add_slot(node, "title", f"Index {number}")
        indexes.append(node)
    content = []
    for number in range(pages):
        node = instance.add_entity("Page", f"p{number}")
        instance.add_slot(node, "title", rng.words(3))
        instance.add_slot(node, "size", rng.integer(1, 500))
        content.append(node)
        instance.relate(rng.pick(indexes), node, "index")
    for _ in range(int(pages * link_factor)):
        source = rng.pick(content)
        target = rng.pick(content + indexes)
        if source != target:
            instance.relate(source, target, "link")
    return instance
