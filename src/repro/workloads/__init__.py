"""Synthetic workload generators (seeded, reproducible)."""

from .bibliography import BIB_DTD, bibliography, nested_sections
from .generator import Rng
from .museum import museum_graph, museum_schema
from .sites import site_graph, site_schema

__all__ = [
    "Rng",
    "bibliography", "nested_sections", "BIB_DTD",
    "site_graph", "site_schema",
    "museum_graph", "museum_schema",
]
