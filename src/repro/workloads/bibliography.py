"""Bibliography workload: the XML-GL running domain.

Generates ``<bib>`` documents of controllable size, shaped like the
book/author/publisher examples the XML-GL literature queries: books and
articles with years, prices, titles, nested authors, optional publishers,
and ``cites`` IDREF cross-references that give the data its graph aspect.
Deeply nested ``<section>`` documents exercise arbitrary-depth queries.
"""

from __future__ import annotations

from ..ssd.builder import E, document
from ..ssd.model import Document, Element
from .generator import Rng

__all__ = ["bibliography", "nested_sections", "BIB_DTD"]

#: DTD describing the generated documents (used by the schema experiments).
BIB_DTD = """
<!ELEMENT bib ((book | article)*)>
<!ELEMENT book (title, author*, publisher?, price)>
<!ATTLIST book year CDATA #REQUIRED
               id ID #IMPLIED
               cites IDREF #IMPLIED>
<!ELEMENT article (title, author*)>
<!ATTLIST article year CDATA #REQUIRED
                  id ID #IMPLIED
                  cites IDREF #IMPLIED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (last, first)>
<!ELEMENT last (#PCDATA)>
<!ELEMENT first (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT price (#PCDATA)>
"""


def bibliography(entries: int, seed: int = 0) -> Document:
    """A ``<bib>`` document with ``entries`` books/articles.

    Roughly 75% books and 25% articles; books carry 1-3 authors, an
    optional publisher and a price; ~30% of entries cite one earlier
    entry through the ``cites`` IDREF attribute (the join/graph hook).
    """
    rng = Rng(seed)
    bib = E("bib")
    identifiers: list[str] = []
    for index in range(entries):
        identifier = f"e{index}"
        is_book = rng.chance(0.75)
        entry = Element("book" if is_book else "article")
        entry.set("year", rng.year())
        entry.set("id", identifier)
        if identifiers and rng.chance(0.3):
            entry.set("cites", rng.pick(identifiers))
        entry.append(E("title", rng.words(rng.integer(2, 5))))
        for _ in range(rng.integer(1, 3)):
            entry.append(E("author", E("last", rng.name()), E("first", rng.name())))
        if is_book:
            if rng.chance(0.6):
                entry.append(E("publisher", rng.name() + " Press"))
            entry.append(E("price", rng.price()))
        bib.append(entry)
        identifiers.append(identifier)
    return document(bib)


def nested_sections(depth: int, fanout: int = 2, seed: int = 0) -> Document:
    """A ``<report>`` of sections nested ``depth`` levels (deep queries).

    Every section has a ``<heading>``; leaves carry a paragraph.  The
    document has ``fanout**depth`` leaf sections.
    """
    rng = Rng(seed)

    def section(level: int) -> Element:
        node = E("section", {"level": str(level)}, E("heading", rng.words(2)))
        if level >= depth:
            node.append(E("para", rng.words(6)))
        else:
            for _ in range(fanout):
                node.append(section(level + 1))
        return node

    return document(E("report", E("heading", "Synthetic Report"), section(1)))
