"""Seeded randomness for workload generators.

All generators take an explicit seed so every experiment is reproducible;
``Rng`` is a thin façade over :class:`random.Random` exposing only the
operations the generators need (keeping their distributional assumptions
in one reviewable place).
"""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

__all__ = ["Rng", "WORDS"]

T = TypeVar("T")

#: A small deterministic vocabulary for titles/names.
WORDS = (
    "data web query graph semi structured visual language schema pattern "
    "match index node edge tree document element attribute value logic "
    "rule engine paper system model view link page site museum monument"
).split()


class Rng:
    """Seeded random source for generators."""

    def __init__(self, seed: int = 0) -> None:
        self._random = random.Random(seed)

    def integer(self, low: int, high: int) -> int:
        """Uniform integer in [low, high]."""
        return self._random.randint(low, high)

    def chance(self, probability: float) -> bool:
        """True with the given probability."""
        return self._random.random() < probability

    def pick(self, items: Sequence[T]) -> T:
        """Uniform choice."""
        return self._random.choice(items)

    def sample(self, items: Sequence[T], count: int) -> list[T]:
        """Sample without replacement (count capped at len(items))."""
        return self._random.sample(items, min(count, len(items)))

    def words(self, count: int) -> str:
        """A title-ish string of ``count`` vocabulary words."""
        return " ".join(self.pick(WORDS) for _ in range(count)).title()

    def name(self) -> str:
        """A surname-ish capitalised word."""
        return self.pick(WORDS).title()

    def price(self) -> str:
        """A price with two decimals between 5 and 150."""
        return f"{self._random.uniform(5, 150):.2f}"

    def year(self) -> str:
        """A publication year between 1985 and 2000."""
        return str(self.integer(1985, 2000))
