"""WG-Log over the museum domain: schema-first querying end to end.

The WG-Log literature motivates schema-based graphical querying with
cultural-heritage data.  This example walks the full workflow the paper
describes: inspect the schema, write rules *against* it (with the schema
catching a typo'd relation before any data is touched), query, derive a
curated tour, and export part of the graph back to XML.

Run with::

    python examples/museum_tour.py
"""

from repro.errors import SchemaError
from repro.wglog import (
    apply_rule,
    check_against_schema,
    instance_to_document,
    parse_rule,
    query,
)
from repro.workloads import museum_graph, museum_schema
from repro.ssd import pretty


def main() -> None:
    schema = museum_schema()
    collection = museum_graph(works=60, seed=11)
    print("== the schema the queries are written against ==")
    print(schema.describe())
    print("\nconformance violations:", schema.conform(collection) or "none")

    # -- the schema catches mistakes before evaluation ------------------------
    typo = parse_rule(
        "rule typo { match { w: Work  a: Artist  w -painted_by-> a } }"
    )
    try:
        check_against_schema(typo, schema)
    except SchemaError as error:
        print(f"\nschema rejected a misdrawn rule: {error}")

    # -- query: renaissance works and their artists ----------------------------
    renaissance = parse_rule(
        """
        rule renaissance {
          match { w: Work  a: Artist  w -by-> a }
          where w.year < 1600
        }
        """
    )
    matches = query(renaissance, collection, schema=schema)
    print(f"\nrenaissance works: {len(matches)}")
    for binding in list(matches)[:5]:
        work, artist = binding["w"], binding["a"]
        print(
            f"  {collection.slot_value(work, 'title')!r} "
            f"({collection.slot_value(work, 'year')}) by "
            f"{collection.slot_value(artist, 'name')}"
        )

    # -- derive: a Tour entity collecting ground-floor works --------------------
    tour = parse_rule(
        """
        rule ground_floor_tour {
          match { r: Room  w: Work  r -exhibits-> w }
          construct { t: Tour collect  t -stop-> w }
          where r.floor = 0
        }
        """
    )
    apply_rule(collection, tour)
    for entity in collection.entities("Tour"):
        stops = collection.relationships(entity, "stop")
        print(f"\nderived tour with {len(stops)} stops")

    # -- derive: influence chains (regular path + slot copy) --------------------
    lineage = parse_rule(
        """
        rule lineage {
          match { a: Artist  b: Artist  a -influenced*-> b }
          construct { b -descends_from-> a }
        }
        """
    )
    added = apply_rule(collection, lineage)
    print(f"influence closure: {added} derived edges")

    # -- export one museum's room tree back to XML -------------------------------
    museum = collection.entities("Museum")[0]
    export = collection.copy()
    # relabel has_room/exhibits as generic child edges for the XML tree view
    for edge in list(export.graph.edges()):
        if edge.label in ("has_room", "exhibits"):
            export.graph.remove_edge(edge)
            export.graph.add_edge(edge.source, edge.target, "child")
    doc = instance_to_document(export, museum)
    text = pretty(doc)
    lines = text.split("\n")
    print("\n== museum as XML (first 12 lines) ==")
    print("\n".join(lines[:12]))


if __name__ == "__main__":
    main()
