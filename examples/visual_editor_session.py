"""A scripted editing session: drawing a query gesture by gesture.

The paper's systems are *editors*; this example replays what a user would
do with the mouse — drop boxes, draw arcs, cross one out, annotate a
predicate, build the construct part — then compiles the drawing into a
runnable rule, runs it, and saves the figure as SVG.

Run with::

    python examples/visual_editor_session.py
"""

from repro.ssd import parse_document, pretty
from repro.visual import XmlglEditor
from repro.xmlgl import attr, cmp, evaluate_rule

DOC = parse_document(
    """
<bib>
  <book year="2000"><title>Data on the Web</title><author>Abiteboul</author></book>
  <book year="1994"><title>TCP/IP Illustrated</title><author>Stevens</author>
      <cdrom/></book>
  <book year="1999"><title>Economics of Technology</title></book>
</bib>
"""
)


def main() -> None:
    editor = XmlglEditor("books-without-cdrom")

    # gesture 1-3: drop the extract boxes
    bib = editor.add_element_box("bib", node_id="R", anchored=True)
    book = editor.add_element_box("book", node_id="B")
    title = editor.add_element_box("title", node_id="T")

    # gesture 4-5: connect them
    editor.draw_arc(bib, book)
    editor.draw_arc(book, title)

    # gesture 6: an attribute circle for the year
    editor.add_attribute_circle(book, "year", node_id="Y")

    # gesture 7-8: a cdrom box, crossed out (negation)
    cdrom = editor.add_element_box("cdrom", node_id="C")
    arc = editor.draw_arc(book, cdrom)
    editor.cross_out(arc)

    # gesture 9: the predicate annotation
    editor.annotate_condition(cmp(">=", attr("B", "year"), 1999))

    # oops — undo the predicate, then bring it back
    editor.undo()
    editor.redo()

    # gesture 10-12: the construct part
    result = editor.add_construct_box("modern-books")
    entry = editor.add_construct_box("entry", parent_shape=result, for_each=["B"])
    editor.add_copy(entry, "T")
    editor.add_value_node(entry, "Y")

    # compile the drawing and run it
    rule = editor.compile()
    print("== compiled and evaluated ==")
    print(pretty(evaluate_rule(rule, DOC)))

    # lay the figure out and save it
    editor.arrange()
    print("\n== the drawing ==")
    print(editor.to_ascii())
    with open("editor_session.svg", "w") as handle:
        handle.write(editor.to_svg())
    print("\nSVG written to editor_session.svg")


if __name__ == "__main__":
    main()
