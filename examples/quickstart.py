"""Quickstart: parse XML, draw an XML-GL query, run it, render the diagram.

Run with::

    python examples/quickstart.py
"""

from repro.ssd import parse_document, pretty
from repro.visual import render_ascii, render_svg, xmlgl_rule_diagram
from repro.xmlgl import evaluate_rule
from repro.xmlgl.dsl import parse_rule

SOURCE = """
<bib>
  <book year="1994"><title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <price>65.95</price></book>
  <book year="2000"><title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <author><last>Buneman</last><first>Peter</first></author>
    <price>39.95</price></book>
  <book year="1999"><title>The Economics of Technology</title>
    <publisher>Kluwer Academic</publisher>
    <price>129.95</price></book>
</bib>
"""

# The textual DSL is a 1:1 encoding of the drawn query: boxes become
# `tag as Var`, the starred arc becomes `deep`, the crossed arc `not`,
# predicate annotations go in `where`, and the construct part sits right
# of `construct` — exactly the extract ∥ construct layout of the figures.
QUERY = """
query {
  root bib {
    book as B {
      @year as Y
      title as T
      not publisher as P     # crossed arc: books WITHOUT a publisher
    }
  }
  where Y >= 1995
}
construct {
  recent-unpublished {
    entry for B sortby Y { value Y  copy T }
  }
}
"""


def main() -> None:
    doc = parse_document(SOURCE)
    rule = parse_rule(QUERY)

    print("== result ==")
    result = evaluate_rule(rule, doc)
    print(pretty(result))

    print("\n== the query as the paper would draw it ==")
    diagram = xmlgl_rule_diagram(rule)
    print(render_ascii(diagram))

    svg_path = "quickstart_query.svg"
    with open(svg_path, "w") as handle:
        handle.write(render_svg(diagram))
    print(f"\nSVG written to {svg_path}")


if __name__ == "__main__":
    main()
