"""The paper's worked XML-GL examples over a generated bibliography.

Walks through the query classes of the evaluation (selection, predicates,
joins, deep queries, negation, aggregation, grouping, restructuring,
multi-document joins) on a seeded synthetic ``<bib>`` document.

Run with::

    python examples/bibliography_queries.py
"""

from repro.ssd import parse_document, pretty, serialize
from repro.workloads import bibliography
from repro.xmlgl import evaluate_rule
from repro.xmlgl.dsl import parse_rule


def show(title: str, query: str, sources) -> None:
    print(f"\n=== {title} ===")
    result = evaluate_rule(parse_rule(query), sources)
    text = pretty(result)
    if text.count("\n") > 14:
        lines = text.split("\n")
        text = "\n".join(lines[:14] + [f"  ... ({len(lines) - 14} more lines)"])
    print(text)


def main() -> None:
    doc = bibliography(25, seed=42)
    print(f"dataset: {len(doc.root.child_elements())} entries, "
          f"{doc.size()} nodes")

    show("Q1 selection: all titles", """
        query { book as B { title as T } }
        construct { titles { collect T } }
    """, doc)

    show("Q2 predicates: cheap recent books", """
        query {
          book as B { @year as Y  title as T  price as P { text as PT } }
          where Y >= 1995 and PT < 60
        }
        construct { cheap { entry for B { value Y  copy T } } }
    """, doc)

    show("Q3 join: citation pairs (IDREF join)", """
        query {
          book as B { title as TB }
          * as C { title as TC }
          where B.cites = C.id
        }
        construct {
          citations { cite for B, C { from { copy TB } to { copy TC } } }
        }
    """, doc)

    show("Q4 deep: every last name at any depth", """
        query { root bib as R { deep last as L } }
        construct { people { collect L } }
    """, doc)

    show("Q5 negation: books without a publisher", """
        query { book as B { title as T  not publisher as P } }
        construct { unpublished { collect T } }
    """, doc)

    show("Q6 aggregation: count / min / max / avg price", """
        query { book as B { price as P { text as PT } } }
        construct {
          stats { n { count(B) } min { min(PT) } max { max(PT) } avg { avg(PT) } }
        }
    """, doc)

    show("Q7 restructuring: regroup by year (the nest operation)", """
        query { book as B { @year as Y  title as T } }
        construct {
          by-year { year for Y sortby Y { value Y  books { collect T } } }
        }
    """, doc)

    # multi-document join: split the bibliography into two sources
    books_only = parse_document(serialize(doc))
    for article in list(books_only.root.find_all("article")):
        books_only.root.remove(article)
    articles_only = parse_document(serialize(doc))
    for book in list(articles_only.root.find_all("book")):
        articles_only.root.remove(book)
    show("Q8 multi-document: books and articles from the same year", """
        query books { book as B { @year as YB } }
        query articles { article as A { @year as YA } }
        where YB = YA
        construct { same-year { pair for B, A } }
    """, {"books": books_only, "articles": articles_only})


if __name__ == "__main__":
    main()
