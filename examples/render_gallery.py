"""Render every catalog figure to SVG (the paper's figure set).

Writes one SVG per paired query and per language into ``figures/`` and
prints an index.  The gallery is regenerated deterministically — running
twice produces byte-identical files.

Run with::

    python examples/render_gallery.py [output-dir]
"""

import os
import sys

from repro.compare import CATALOG
from repro.visual import render_svg, wglog_rule_diagram, xmlgl_rule_diagram
from repro.wglog import parse_rule as parse_wg
from repro.xmlgl.dsl import parse_rule as parse_xg


def main(target: str = "figures") -> None:
    os.makedirs(target, exist_ok=True)
    written = []
    for pair in CATALOG:
        if pair.xmlgl_source:
            diagram = xmlgl_rule_diagram(parse_xg(pair.xmlgl_source))
            path = os.path.join(target, f"{pair.id}-xmlgl.svg")
            with open(path, "w") as handle:
                handle.write(render_svg(diagram))
            written.append((pair.figure, "XML-GL", path))
        if pair.wglog_source:
            diagram = wglog_rule_diagram(parse_wg(pair.wglog_source))
            path = os.path.join(target, f"{pair.id}-wglog.svg")
            with open(path, "w") as handle:
                handle.write(render_svg(diagram))
            written.append((pair.figure, "WG-Log", path))
    print(f"{len(written)} figures written:")
    for figure, language, path in written:
        print(f"  {figure:<8} {language:<7} {path}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "figures")
