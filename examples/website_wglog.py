"""WG-Log over a synthetic web site: queries, derivation, recursion.

Reproduces the GraphLog/WG-Log worked examples on generated data:
schema-checked querying, the sibling-link and root-link derivation rules,
transitive closure via a two-rule fixpoint, and the aggregation triangle.

Run with::

    python examples/website_wglog.py
"""

from repro.wglog import apply_program, apply_rule, parse_wglog, query
from repro.wglog import parse_rule as parse_wg_rule
from repro.workloads import site_graph, site_schema
from repro.visual import render_ascii, wglog_rule_diagram


def main() -> None:
    schema = site_schema()
    site = site_graph(pages=20, seed=7)
    print(f"site: {site.entity_count()} entities, "
          f"{sum(1 for _ in site.relationship_edges())} edges")
    print("schema conformance violations:", schema.conform(site))

    # -- query: big pages reachable from index 0 --------------------------------
    big = parse_wg_rule("""
        rule big_pages {
          match { i: Index  p: Page  i -index-> p }
          where p.size > 250
        }
    """)
    matches = query(big, site, schema=schema)
    print(f"\nbig indexed pages: {sorted(b['p'] for b in matches)}")

    # -- derivation: sibling links (GraphLog's classic) ---------------------------
    sibling = parse_wg_rule("""
        rule sibling {
          match { i: Index  p1: Page  p2: Page  i -index-> p1  i -index-> p2 }
          construct { p1 -sibling-> p2 }
        }
    """)
    print("\nthe sibling rule, as drawn:")
    print(render_ascii(wglog_rule_diagram(sibling)))
    added = apply_rule(site, sibling, injective=True)
    print(f"sibling edges derived: {added}")

    # -- forall-negation: leaves (pages linking nowhere) ---------------------------
    leaf = parse_wg_rule("""
        rule leaf {
          match { p: Page  t: Page  no p -link-> t }
          construct { p.leaf = 'yes' }
        }
    """)
    apply_rule(site, leaf)
    leaves = [p for p in site.entities("Page") if site.slot_value(p, "leaf")]
    print(f"leaf pages: {len(leaves)} of {len(site.entities('Page'))}")

    # -- recursion: reachability closure over link edges ----------------------------
    _, closure_rules = parse_wglog("""
        rule base {
          match { a: Page  b: Page  a -link-> b }
          construct { a -reach-> b }
        }
        rule step {
          match { a: Page  b: Page  c: Page  a -reach-> b  b -link-> c }
          construct { a -reach-> c }
        }
    """)
    added = apply_program(site, closure_rules)
    reach = sum(1 for e in site.relationship_edges() if e.label == "reach")
    print(f"\ntransitive closure: {added} additions, {reach} reach edges")

    # -- the aggregation triangle: collect all big pages ----------------------------
    collect = parse_wg_rule("""
        rule hotlist {
          match { p: Page }
          construct { h: HotList collect  h -member-> p }
          where p.size > 400
        }
    """)
    apply_rule(site, collect)
    for hotlist in site.entities("HotList"):
        members = site.relationships(hotlist, "member")
        print(f"\nhotlist {hotlist}: {len(members)} members")


if __name__ == "__main__":
    main()
