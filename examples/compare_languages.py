"""The paper's comparison, regenerated: TAB-1 and the paired-query run.

Prints the computed expressiveness matrix (every cell backed by a running
demo) and executes the paired-query catalog over one dataset through both
engines, reporting agreement.

Run with::

    python examples/compare_languages.py
"""

from repro.compare import compare_catalog, render_matrix, report
from repro.workloads import bibliography


def main() -> None:
    print("TAB-1 — expressiveness comparison (computed, not transcribed)")
    print(render_matrix())

    print("\n\nFIG-Q* — paired queries over one bibliography (30 entries)")
    results = compare_catalog(bibliography(30, seed=3))
    print(report(results))

    agreeing = sum(1 for r in results if r.agree)
    comparable = sum(1 for r in results if r.comparable)
    print(
        f"\n{agreeing}/{comparable} comparable pairs agree; "
        f"{len(results) - comparable} pairs are single-language "
        "(the expressiveness gaps in TAB-1)"
    )


if __name__ == "__main__":
    main()
