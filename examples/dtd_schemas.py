"""XML-GL as a schema language: the BOOK DTD figure, both directions.

Reproduces the paper's schema discussion: translate the BOOK DTD into an
XML-GL schema graph, validate instances against it, express something a
DTD cannot (unordered content), and translate back.

Run with::

    python examples/dtd_schemas.py
"""

from repro.ssd import parse_document, parse_dtd
from repro.ssd import validate as dtd_validate
from repro.xmlgl.schema import SchemaGraph, dtd_to_schema, schema_to_dtd

BOOK_DTD = """
<!ELEMENT BOOK (title?, price, AUTHOR*)>
<!ATTLIST BOOK isbn CDATA #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT AUTHOR (first-name, last-name)>
<!ELEMENT first-name (#PCDATA)>
<!ELEMENT last-name (#PCDATA)>
"""


def main() -> None:
    dtd = parse_dtd(BOOK_DTD)
    schema, notes = dtd_to_schema(dtd, "BOOK")
    print("== the BOOK DTD as an XML-GL schema graph ==")
    print(schema.describe())
    print("translation notes:", notes or "none (exact)")

    good = parse_document(
        '<BOOK isbn="1"><title>T</title><price>9</price>'
        "<AUTHOR><first-name>A</first-name><last-name>B</last-name></AUTHOR></BOOK>"
    )
    bad = parse_document('<BOOK><price>9</price><price>again</price></BOOK>')
    print("\nvalid instance    ->", schema.validate(good) or "OK")
    print("invalid instance  ->")
    for violation in schema.validate(bad):
        print("   ", violation)
    print("DTD validator agrees:", bool(dtd_validate(bad, dtd)))

    print("\n== back to DTD text ==")
    text, notes = schema_to_dtd(schema)
    print(text)
    print("round-trip notes:", notes or "none (exact)")

    print("\n== beyond DTDs: unordered content ==")
    pair = SchemaGraph(root="address")
    for tag in ("address", "street", "city"):
        pair.add_element(tag)
    pair.contain("address", "street")   # unordered by default in XML-GL
    pair.contain("address", "city")
    pair.add_text("street")
    pair.add_text("city")
    for order in ("<street>s</street><city>c</city>",
                  "<city>c</city><street>s</street>"):
        doc = parse_document(f"<address>{order}</address>")
        print(f"  {order[:30]:<34} ->", pair.validate(doc) or "OK")
    print("  (a DTD must fix one order; XML-GL multiplicity edges need not)")


if __name__ == "__main__":
    main()
