"""Schema-last exploration: infer, check, query, refine.

Semi-structured data arrives without a schema.  This example shows the
exploration loop the libraries support: infer a DataGuide-style schema
from raw XML, use it to check queries *before* running them, then refine
queries over a session with back/forward — inference, static checking and
BBQ-style cycles working together.

Run with::

    python examples/explore.py
"""

from repro.analysis.xmlgl_schema import schema_diagnostics
from repro.session import QuerySession
from repro.ssd import infer_schema
from repro.workloads import bibliography
from repro.xmlgl.dsl import parse_rule


def main() -> None:
    doc = bibliography(50, seed=21)

    print("== 1. infer the structure of the unknown data ==")
    schema = infer_schema(doc)
    print(schema.describe())

    print("\n== 2. static checking catches a bad query before it runs ==")
    bad = parse_rule(
        "query { book as B { isbn as I } } construct { r { collect I } }"
    )
    for diagnostic in schema_diagnostics(bad.queries[0], schema):
        print(f"  warning [{diagnostic.code}]:", diagnostic.message)

    good = parse_rule(
        "query { book as B { @year as Y  price as P } where Y >= 1995 }"
        " construct { r { count(B) } }"
    )
    print(
        "  good query warnings:",
        [d.message for d in schema_diagnostics(good.queries[0], schema)]
        or "none",
    )

    print("\n== 3. refine over a session ==")
    session = QuerySession(doc)
    session.run("query { book as B } construct { r { count(B) } }")
    session.run(
        "query { book as B { @year as Y } where Y >= 1995 }"
        " construct { r { count(B) } }"
    )
    session.run(
        "query { book as B { @year as Y  price as P { text as PT } } "
        "where Y >= 1995 and PT < 60 } construct { r { count(B) } }"
    )
    print(session.summary())
    print("\ncounts along the refinement:")
    for cycle in session.history():
        print(f"  cycle {cycle.index}: {cycle.result.root.text_content()} books")

    session.back()
    session.back()
    print(f"\nafter two backs, current cycle: {session.current().index}")


if __name__ == "__main__":
    main()
